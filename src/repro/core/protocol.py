"""The PeerHood wire protocol.

Frames are modelled as dataclasses (the real stack writes length-prefixed
byte strings over RFCOMM/TCP).  Every frame reports an approximate
serialised size so the metrics layer can account for traffic — the paper's
Gnutella comparison (§3.2) is about exactly this byte volume.

Connection-opening commands follow §4.1: the engine inspects the first
frame on a new link "to discover if they are new connection, bridge
connection or connection re-establish".
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.core.device import DeviceIdentity, MobilityClass
from repro.core.service import ServiceRecord


class Command(enum.Enum):
    """Connection-intention commands exchanged on a fresh link (§4.1)."""

    PH_CONNECT = "PH_CONNECT"
    PH_BRIDGE = "PH_BRIDGE"
    PH_RECONNECT = "PH_RECONNECT"
    PH_OK = "PH_OK"
    PH_ERROR = "PH_ERROR"
    PH_DISCONNECT = "PH_DISCONNECT"


@dataclasses.dataclass(frozen=True)
class ClientParams:
    """Caller identity sent at connection start (§5.3 method 2).

    The thesis found that after a break "the server has not enough
    information to reconnect to the client" and proposed sending
    "prototype, Pid number, service name, checksum, device name and port
    number ... in the beginning of the connection".  Carrying these lets
    the picture-analysis server route the result back without the extra
    'client' service of method 1.
    """

    address: str
    name: str
    prototype: str
    reply_service: str
    mobility: MobilityClass
    pid: int = 0

    def wire_size(self) -> int:
        return (17 + len(self.name) + len(self.prototype)
                + len(self.reply_service) + 4 + 4)


class Frame:
    """Base class for everything sent over a link."""

    def wire_size(self) -> int:
        """Approximate serialised size in bytes."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class ConnectRequest(Frame):
    """PH_CONNECT: open a direct connection to a named service."""

    service_name: str
    connection_id: int
    client_params: ClientParams

    command: typing.ClassVar[Command] = Command.PH_CONNECT

    def wire_size(self) -> int:
        return 4 + len(self.service_name) + 4 + self.client_params.wire_size()


@dataclasses.dataclass(frozen=True)
class BridgeRequest(Frame):
    """PH_BRIDGE: ask the receiving node to relay to ``destination``.

    ``hop_budget`` bounds chain length so a routing loop cannot recurse
    forever when storages are momentarily inconsistent.  ``reconnect``
    makes the terminal hop issue :class:`ReconnectRequest` instead of
    :class:`ConnectRequest` — a routing handover arriving over a bridge
    must substitute the server's existing connection, not open a new one
    (§5.2.1).
    """

    destination: str
    service_name: str
    connection_id: int
    client_params: ClientParams
    hop_budget: int = 8
    reconnect: bool = False

    command: typing.ClassVar[Command] = Command.PH_BRIDGE

    def wire_size(self) -> int:
        return (4 + 17 + len(self.service_name) + 4 + 1
                + self.client_params.wire_size())


@dataclasses.dataclass(frozen=True)
class ReconnectRequest(Frame):
    """PH_RECONNECT: substitute the transport under an existing connection.

    §2.3: "Connection ID is used to identify the connection to substitute
    from the connection list."
    """

    connection_id: int
    client_params: ClientParams

    command: typing.ClassVar[Command] = Command.PH_RECONNECT

    def wire_size(self) -> int:
        return 4 + 4 + self.client_params.wire_size()


@dataclasses.dataclass(frozen=True)
class Ack(Frame):
    """PH_OK / PH_ERROR answer to a connection-opening command (§4.1).

    For bridged chains this is the end-to-end acknowledgement: "if one of
    them fails all the connection chain would fail and it should be
    notified to the connection request device".
    """

    ok: bool
    port: int = 0
    reason: str = ""

    @property
    def command(self) -> Command:
        return Command.PH_OK if self.ok else Command.PH_ERROR

    def wire_size(self) -> int:
        return 4 + 4 + len(self.reason)


@dataclasses.dataclass(frozen=True)
class DataFrame(Frame):
    """Application payload in flight.

    ``declared_size`` is what the transmit-time model charges; the actual
    ``payload`` object is carried opaquely (bridges re-transmit it without
    interpretation, §4.2).
    """

    payload: object
    declared_size: int
    sequence: int = 0

    def wire_size(self) -> int:
        if self.declared_size < 0:
            raise ValueError(f"negative size: {self.declared_size}")
        return 8 + self.declared_size


@dataclasses.dataclass(frozen=True)
class DisconnectFrame(Frame):
    """Orderly teardown marker, forwarded along bridge chains (§4.2)."""

    reason: str = ""

    command: typing.ClassVar[Command] = Command.PH_DISCONNECT

    def wire_size(self) -> int:
        return 4 + len(self.reason)


# ----------------------------------------------------------------------
# discovery payloads (Fig. 3.7: device / prototype / service /
# neighbourhood information fetched during the inquiry)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class NeighbourEntry(Frame):
    """One row of a DeviceStorage snapshot sent as neighbourhood info.

    Carries everything the receiver's ``AnalyzeNeighbourhoodDevices``
    needs: identity, route cost (jump), route quality (sum and per-link
    minimum, §3.4.1), the device's own mobility class, and its services.
    """

    address: str
    name: str
    prototype: str
    mobility: MobilityClass
    jump: int
    route_quality_sum: int
    route_min_quality: int
    services: tuple[ServiceRecord, ...] = ()

    def wire_size(self) -> int:
        base = 17 + len(self.name) + len(self.prototype) + 4 + 1 + 4 + 4
        return base + sum(s.wire_size() for s in self.services)


@dataclasses.dataclass(frozen=True)
class DiscoveryResponse(Frame):
    """The bundle a daemon returns to one discovery inquiry.

    The thesis fetches device, prototype, service and neighbourhood
    information over four short connections (Fig. 3.7) or optionally one
    unified connection; the bundle content is identical either way.
    """

    identity: DeviceIdentity
    prototype: str
    services: tuple[ServiceRecord, ...]
    neighbourhood: tuple[NeighbourEntry, ...]
    #: §4.0's bottleneck hint: fraction of remaining bridge capacity; the
    #: inquirer scales the measured link quality by it when the responder
    #: has ``advertise_load_in_quality`` enabled.
    load_factor: float = 1.0

    def wire_size(self) -> int:
        return (self.identity.wire_size() + len(self.prototype) + 4
                + sum(s.wire_size() for s in self.services)
                + sum(n.wire_size() for n in self.neighbourhood))
