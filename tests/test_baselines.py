"""Tests for the Gnutella and previous-PeerHood baselines."""

import pytest

from repro.baselines.gnutella import GnutellaNetwork
from repro.baselines.previous_peerhood import (
    DirectOnlyDiscovery,
    FullMeshDiscovery,
    TwoJumpDiscovery,
)
from repro.radio.technologies import BLUETOOTH
from repro.scenarios import fig_3_3_coverage_exclusion, line_topology


def build_overlay(scenario):
    network = GnutellaNetwork(scenario.world, BLUETOOTH)
    for name in scenario.nodes:
        network.add_node(name)
    return network


def test_gnutella_search_finds_resource_along_a_chain():
    scenario = line_topology(5, seed=51)
    network = build_overlay(scenario)
    network.nodes["n4"].add_resource("song.mp3")
    result = network.search("n0", "song.mp3")
    assert result.found_at == ["n4"]
    assert result.nodes_reached == 5
    assert result.query_messages > 0
    assert result.hit_messages >= 4  # four hops back


def test_gnutella_ttl_limits_reach():
    scenario = line_topology(6, seed=52)
    network = build_overlay(scenario)
    network.nodes["n5"].add_resource("far.file")
    result = network.search("n0", "far.file", ttl=2)
    assert result.found_at == []
    assert result.nodes_reached == 3  # origin + 2 hops


def test_gnutella_traffic_grows_superlinearly_with_density():
    """§3.2: 'huge network traffic generated due to the high number of
    query messages'."""
    from repro.scenarios import random_disc

    per_node_cost = {}
    for count in (6, 18):
        scenario = random_disc(count, area=25.0, seed=53)
        network = build_overlay(scenario)
        result = network.search("n0", "anything")
        per_node_cost[count] = result.query_messages / count
    assert per_node_cost[18] > per_node_cost[6]


def test_gnutella_meters_traffic():
    scenario = line_topology(3, seed=54)
    network = build_overlay(scenario)
    network.search("n0", "x")
    assert network.meter.messages(category="query") > 0


def test_gnutella_validation():
    scenario = line_topology(2, seed=55)
    network = build_overlay(scenario)
    with pytest.raises(KeyError):
        network.search("ghost", "x")
    with pytest.raises(ValueError):
        network.search("n0", "x", ttl=0)
    with pytest.raises(ValueError):
        network.add_node("n0")
    with pytest.raises(KeyError):
        network.add_node("not-in-world")


def test_direct_only_oracle_matches_fig_3_3():
    """A sees B,C,D,E; B sees only A; F/G invisible to B,C,D."""
    scenario = fig_3_3_coverage_exclusion(seed=56)
    oracle = DirectOnlyDiscovery(scenario.world, BLUETOOTH)
    assert oracle.aware_of("A") == {"B", "C", "D", "E"}
    assert "F" not in oracle.aware_of("B")
    assert "G" not in oracle.aware_of("D")


def test_two_jump_oracle_extends_but_does_not_solve():
    """§3.1: B,C,D still never learn of F and G with one-level fetching."""
    scenario = fig_3_3_coverage_exclusion(seed=57)
    oracle = TwoJumpDiscovery(scenario.world, BLUETOOTH)
    b_view = oracle.aware_of("B")
    assert {"C", "D", "E"} <= b_view  # the extra jump helps...
    assert "F" not in b_view          # ...but exclusion remains
    assert "G" not in b_view
    # E *does* see F and G two-jump (directly, in fact).
    assert {"F", "G"} <= oracle.aware_of("E")


def test_full_mesh_oracle_reaches_whole_component():
    scenario = fig_3_3_coverage_exclusion(seed=58)
    oracle = FullMeshDiscovery(scenario.world, BLUETOOTH)
    everyone = set("ABCDEFG")
    for name in everyone:
        assert oracle.aware_of(name) == everyone - {name}


def test_awareness_ordering_direct_subset_two_jump_subset_full():
    scenario = line_topology(6, seed=59)
    direct = DirectOnlyDiscovery(scenario.world, BLUETOOTH)
    two_jump = TwoJumpDiscovery(scenario.world, BLUETOOTH)
    full = FullMeshDiscovery(scenario.world, BLUETOOTH)
    for name in scenario.nodes:
        d = direct.aware_of(name)
        t = two_jump.aware_of(name)
        f = full.aware_of(name)
        assert d <= t <= f
