"""The experiments CLI: ``python -m repro.experiments list|run|report``.

* ``list`` — bundled specs, registered scenarios (with schemas) and
  workloads;
* ``run SPEC`` — expand the grid, execute it (``--workers N``), write
  ``runs.jsonl`` + aggregated ``summary.csv`` under ``--out`` (default
  ``results/<spec>/``) and print the aggregate table;
* ``report SPEC`` — re-aggregate an existing ``runs.jsonl`` without
  re-running anything.

Output files are byte-identical for any ``--workers`` value — see
:mod:`repro.experiments.runner` for the determinism contract.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments import report as report_mod
from repro.experiments import runner as runner_mod
from repro.experiments.registry import get_scenario, scenario_names
from repro.experiments.specs import get_spec, spec_names
from repro.experiments.workloads import workload_names
from repro.metrics.tables import print_table


def _out_dir(args) -> pathlib.Path:
    if args.out is not None:
        return pathlib.Path(args.out)
    return pathlib.Path("results") / args.spec


def cmd_list(_args) -> int:
    rows = []
    for name in spec_names():
        spec = get_spec(name)
        rows.append([name, spec.workload, spec.size(), spec.description])
    print_table("Bundled experiment specs",
                ["spec", "workload", "runs", "description"], rows)
    rows = []
    for name in scenario_names():
        entry = get_scenario(name)
        schema = ", ".join(
            f"{p.name}:{p.kind.__name__}={p.default!r}"
            for p in entry.params) or "-"
        rows.append([name, schema, entry.summary])
    print_table("Registered scenarios",
                ["scenario", "parameters", "summary"], rows)
    print_table("Registered workloads", ["workload"],
                [[name] for name in workload_names()])
    return 0


def _progress_printer(total: int, verbose: bool, show_eta: bool):
    """Build the runner's ``progress`` callback.

    Progress is *presentation only*: it prints to stderr from the
    collecting (parent) process in grid order, driven by wall-clock —
    none of it can reach ``runs.jsonl``/``telemetry.jsonl``, so the
    byte-identical-at-any-worker-count contract is untouched.
    """
    import time
    started = time.perf_counter()
    done = [0]
    width = len(str(total))

    def progress(record):
        done[0] += 1
        parts = [f"[{done[0]:>{width}}/{total}]"]
        if show_eta:
            elapsed = time.perf_counter() - started
            rate = elapsed / done[0]
            remaining = rate * (total - done[0])
            parts.append(f"eta {remaining:5.1f}s"
                         if done[0] < total else f"done {elapsed:5.1f}s")
        if verbose:
            parts.append(f"{record['scenario']} {record['params']} "
                         f"rep{record['repeat']}")
        print("  " + " ".join(parts), file=sys.stderr)

    return progress


def cmd_run(args) -> int:
    spec = get_spec(args.spec)
    if args.seed is not None:
        import dataclasses
        spec = dataclasses.replace(spec, master_seed=args.seed)
    out_dir = _out_dir(args)
    total = spec.size()
    print(f"spec {spec.name!r}: {total} runs, workload "
          f"{spec.workload!r}, {args.workers} worker(s) -> {out_dir}")

    progress = None
    if args.verbose or args.progress:
        progress = _progress_printer(total, verbose=args.verbose,
                                     show_eta=args.progress)

    results = runner_mod.run_spec(spec, workers=args.workers,
                                  progress=progress,
                                  telemetry=args.telemetry)
    records = [result.record for result in results]
    jsonl_path = runner_mod.write_jsonl(records, out_dir / "runs.jsonl")
    rows = report_mod.aggregate(records)
    csv_path = report_mod.write_csv(rows, out_dir / "summary.csv")
    wall = sum(result.timings["wall_s"] for result in results)
    print(report_mod.aggregate_table(
        f"{spec.name}: {len(records)} runs "
        f"(total simulated work {wall:.1f}s of wall-clock)", rows))
    print(f"\nwrote {jsonl_path} and {csv_path}")
    if args.telemetry:
        telemetry_path, timeline_path = runner_mod.write_telemetry(
            results, out_dir)
        print(f"wrote {telemetry_path} and {timeline_path}")
    return 0


def cmd_report(args) -> int:
    out_dir = _out_dir(args)
    jsonl_path = out_dir / "runs.jsonl"
    if not jsonl_path.exists():
        print(f"no results at {jsonl_path}; run the spec first:\n"
              f"  python -m repro.experiments run {args.spec}",
              file=sys.stderr)
        return 1
    records = runner_mod.read_jsonl(jsonl_path)
    rows = report_mod.aggregate(records)
    csv_path = report_mod.write_csv(rows, out_dir / "summary.csv")
    print(report_mod.aggregate_table(
        f"{args.spec}: {len(records)} recorded runs", rows))
    print(f"\nwrote {csv_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Declarative simulation sweeps: list, run, report.")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "list", help="show bundled specs, scenarios and workloads")

    run_parser = commands.add_parser(
        "run", help="execute a bundled spec and write JSONL + CSV")
    run_parser.add_argument("spec", help="bundled spec name")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes (default 1; output is "
                                 "identical at any value)")
    run_parser.add_argument("--out", default=None,
                            help="output directory "
                                 "(default results/<spec>/)")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the spec's master seed")
    run_parser.add_argument("--verbose", action="store_true",
                            help="print per-run progress to stderr")
    run_parser.add_argument("--progress", action="store_true",
                            help="print completed/total with ETA to "
                                 "stderr (never into recorded output)")
    run_parser.add_argument("--telemetry", action="store_true",
                            help="attach passive recorders and write "
                                 "telemetry.jsonl + timeline.csv next "
                                 "to runs.jsonl (recorded metrics are "
                                 "unchanged)")

    report_parser = commands.add_parser(
        "report", help="re-aggregate an existing runs.jsonl")
    report_parser.add_argument("spec", help="bundled spec name")
    report_parser.add_argument("--out", default=None,
                               help="results directory "
                                    "(default results/<spec>/)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"list": cmd_list, "run": cmd_run,
               "report": cmd_report}[args.command]
    return handler(args)
