"""Shared helpers for the paper-reproduction benchmarks.

Each ``bench_e*.py`` file regenerates one evaluation artifact of the
thesis (see DESIGN.md's experiment index).  The pattern: a pure
``run_*`` function produces the figures, ``benchmark.pedantic`` times one
full run, the test asserts the paper's *shape*, and the reproduced rows
are printed (visible with ``pytest benchmarks/ --benchmark-only -s``) and
attached to ``benchmark.extra_info``.
"""

from __future__ import annotations

# Table rendering lives in the metrics layer (shared with the experiment
# report command); re-exported here so every bench keeps its import.
from repro.metrics.tables import print_table

__all__ = ["fraction", "print_table"]


def fraction(numerator: int, denominator: int) -> float:
    """Safe ratio."""
    if denominator == 0:
        return 0.0
    return numerator / denominator
