"""Shared ``BENCH_*.json`` envelope + the cross-PR trajectory log.

Before this module each benchmark invented its own snapshot shape; the
only common key was ``"benchmark"``.  Every writer now goes through
:func:`write_bench_snapshot`, which stamps one shared ``envelope``:

``benchmark``
    Stable snapshot name (``"dtn_delivery"``, ``"event_handover"``, …).
``git_sha``
    Short SHA of ``HEAD`` (``"unknown"`` outside a git checkout).
``generated_at``
    UTC timestamp, ISO-8601.  Wall-clock is allowed *here* because a
    snapshot file is a build artifact, not recorded simulation output —
    the determinism contract covers metrics, and the regression gate
    (:mod:`repro.analysis.gates`) skips the envelope entirely.
``n`` / ``repeats``
    The farm size and repeat count the figures were measured at, so a
    small-N CI smoke snapshot is never mistaken for the committed
    full-size one.
``schema``
    Envelope version (bump on incompatible changes).
``campaign`` *(optional)*
    Cell accounting when the figures came from a memoized campaign
    (:class:`repro.experiments.campaign.CampaignStats.as_dict`):
    ``total`` / ``executed`` / ``cache_hits`` / ``journal_hits`` /
    ``failures``.  Deterministic counts, not timings — they record how
    much of the sweep was actually recomputed for this snapshot.

Each write also appends one line to ``BENCH_trajectory.jsonl`` next to
the snapshot: the envelope plus every non-wall numeric leaf of the
payload (flattened to dotted paths).  Appending on *every* bench run is
the point — the log accumulates the perf trajectory across PRs, and the
report's trajectory section reads it back per benchmark.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import subprocess
import typing

ENVELOPE_SCHEMA = 1


def git_sha(cwd: str | pathlib.Path | None = None) -> str:
    """Short SHA of ``HEAD``, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def bench_envelope(benchmark: str, n: int | None = None,
                   repeats: int | None = None,
                   cwd: str | pathlib.Path | None = None,
                   campaign: typing.Mapping[str, int] | None = None
                   ) -> dict[str, object]:
    """The shared snapshot header; see the module docstring for fields.

    ``campaign`` attaches the memoized-campaign cell accounting
    (``CampaignStats.as_dict()``) when the benchmark ran its sweep
    through :func:`repro.experiments.campaign.run_campaign`.
    """
    envelope: dict[str, object] = {
        "schema": ENVELOPE_SCHEMA,
        "benchmark": benchmark,
        "git_sha": git_sha(cwd),
        "generated_at": datetime.datetime.now(
            datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "n": n,
        "repeats": repeats,
    }
    if campaign is not None:
        envelope["campaign"] = dict(campaign)
    return envelope


def write_bench_snapshot(benchmark: str, payload: dict[str, object],
                         path: str | pathlib.Path, *,
                         n: int | None = None, repeats: int | None = None,
                         trajectory_path: str | pathlib.Path | None = None,
                         campaign: typing.Mapping[str, int] | None = None,
                         ) -> dict[str, object]:
    """Write one ``BENCH_*.json`` and append its trajectory line.

    ``payload`` carries the benchmark's figures (tables, gate ratios);
    the shared envelope is added under ``"envelope"`` plus a top-level
    ``"benchmark"`` key for backwards-compatible readers.  ``campaign``
    forwards cache-hit stats into the envelope (see
    :func:`bench_envelope`).  The trajectory line lands in
    ``BENCH_trajectory.jsonl`` beside the snapshot unless
    ``trajectory_path`` overrides it.  Returns the full snapshot dict.
    """
    from repro.analysis.gates import numeric_leaves

    path = pathlib.Path(path)
    snapshot: dict[str, object] = {
        "benchmark": benchmark,
        "envelope": bench_envelope(benchmark, n=n, repeats=repeats,
                                   cwd=path.parent, campaign=campaign),
    }
    snapshot.update(payload)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    if trajectory_path is None:
        trajectory_path = path.parent / "BENCH_trajectory.jsonl"
    line = dict(snapshot["envelope"])
    line["metrics"] = numeric_leaves(payload)
    with open(trajectory_path, "a", encoding="utf-8", newline="\n") as log:
        log.write(json.dumps(line, sort_keys=True,
                             separators=(",", ":")) + "\n")
    return snapshot


# ----------------------------------------------------------------------
# read side
# ----------------------------------------------------------------------
def load_snapshots(root: str | pathlib.Path,
                   pattern: str = "BENCH_*.json"
                   ) -> dict[str, dict[str, object]]:
    """Every snapshot under ``root`` keyed by benchmark name, sorted.

    Files that fail to parse are skipped (a half-written snapshot must
    not take the whole report down); the trajectory log is excluded by
    the ``.json`` pattern.
    """
    snapshots: dict[str, dict[str, object]] = {}
    for path in sorted(pathlib.Path(root).glob(pattern)):
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(data, dict):
            name = str(data.get("benchmark", path.stem))
            snapshots[name] = data
    return snapshots


def trajectory_entries(path: str | pathlib.Path
                       ) -> list[dict[str, object]]:
    """Parse ``BENCH_trajectory.jsonl`` (missing file → empty list)."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    entries: list[dict[str, object]] = []
    with open(path, encoding="utf-8") as log:
        for line in log:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
    return entries


def trajectory_by_benchmark(entries: typing.Iterable[dict[str, object]]
                            ) -> dict[str, list[dict[str, object]]]:
    """Group trajectory lines by benchmark, preserving append order."""
    grouped: dict[str, list[dict[str, object]]] = {}
    for entry in entries:
        grouped.setdefault(str(entry.get("benchmark", "?")), []).append(entry)
    return grouped
