"""The sweep runner: execute an expanded grid through a dispatch backend.

Each :class:`~repro.experiments.spec.RunPoint` is executed by
:func:`execute_point` — a module-level function taking and returning
plain dicts, so it crosses process boundaries untouched.  *Where* cells
run is the :mod:`~repro.experiments.dispatch` backend's business:
``workers=1`` maps to the inline :class:`~repro.experiments.dispatch.
SerialBackend`, anything above to a ``ProcessPoolExecutor`` fan-out
(simulations are CPU-bound pure Python; processes sidestep the GIL).
:func:`run_spec` is a thin loop over ``backend.dispatch``; the
journaled, memoized superset lives in
:mod:`~repro.experiments.campaign`.

Determinism: a run's result depends only on its :class:`RunPoint` (the
seed is derived from the run's label, not its schedule), results are
collected in grid order (backends preserve input order), and records
are serialised with sorted keys — so JSONL and aggregate output are
byte-identical for 1 and N workers.  Wall-clock measurements never
enter records; they ride the :attr:`RunResult.timings` side channel.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import pathlib
import time
import typing

from repro.experiments.dispatch import DispatchBackend, make_backend
from repro.experiments.spec import ExperimentSpec, RunPoint
from repro.experiments.workloads import get_workload
from repro.obs import runtime as obs_runtime


@dataclasses.dataclass(frozen=True)
class RunResult:
    """One finished run: the deterministic record + side channels."""

    record: dict[str, object]    #: JSON-safe, deterministic result row
    timings: dict[str, float]    #: wall-clock info (never serialised)
    #: Telemetry rows recorded during the run (empty unless the spec ran
    #: with ``telemetry=True``).  Deterministic — rows carry sim times
    #: and event counts only; the profiler's wall-clock attribution is
    #: folded into :attr:`timings` instead.
    telemetry: list[dict[str, object]] = dataclasses.field(
        default_factory=list)


def execute_point(point_dict: dict,
                  telemetry: bool = False) -> tuple[dict, dict, list]:
    """Execute one run; the unit of work shipped to worker processes.

    Returns ``(record, timings, telemetry_rows)``.  A workload's
    reserved ``"timings"`` metric is stripped into the timing side
    channel along with the measured ``wall_s``, keeping the record
    deterministic.

    With ``telemetry=True`` a :class:`~repro.obs.runtime.TelemetryContext`
    is active around the workload call, so every scenario the workload
    builds adopts a passive recorder.  The collected rows come back
    tagged with the run's grid index; recorded metrics are unchanged by
    construction (recorders only observe — asserted in
    ``tests/test_obs.py``).
    """
    point = RunPoint.from_dict(point_dict)
    workload = get_workload(point.workload)
    context = (obs_runtime.activate(obs_runtime.TelemetryContext())
               if telemetry else None)
    started = time.perf_counter()
    try:
        metrics = dict(workload(point))
    finally:
        if context is not None:
            obs_runtime.deactivate()
    timings = {"wall_s": time.perf_counter() - started}
    extra = metrics.pop("timings", None)
    if extra:
        timings.update(extra)
    telemetry_rows: list[dict[str, object]] = []
    if context is not None:
        rows, profile_timings = context.collect()
        telemetry_rows = [{"run": point.index, **row} for row in rows]
        timings.update(profile_timings)
    record = {
        "spec": point.spec,
        "workload": point.workload,
        "run": point.index,
        "scenario": point.scenario,
        "params": point.params,
        "repeat": point.repeat,
        "seed": point.seed,
        "metrics": metrics,
    }
    return record, timings, telemetry_rows


def execute_point_outcome(point_dict: dict,
                          telemetry: bool = False) -> dict:
    """Run :func:`execute_point`, folding failure into the return value.

    The campaign layer's unit of work: a raised workload exception must
    cost *one cell*, not the sweep, and its wall-clock must still reach
    the timing side channel (a poisoned cell that burned ten minutes
    should say so).  Returns ``{"ok": True, "record", "timings",
    "telemetry"}`` on success, ``{"ok": False, "error": repr(exc),
    "error_type", "timings"}`` on workload failure.  ``BaseException``
    (KeyboardInterrupt, SystemExit) propagates — interruption is crash
    semantics, handled by the journal, not a per-cell failure.
    """
    started = time.perf_counter()
    try:
        record, timings, rows = execute_point(point_dict,
                                              telemetry=telemetry)
    except Exception as exc:
        return {"ok": False, "error": repr(exc),
                "error_type": type(exc).__name__,
                "timings": {"wall_s": time.perf_counter() - started}}
    return {"ok": True, "record": record, "timings": timings,
            "telemetry": rows}


def run_spec(spec: ExperimentSpec, workers: int = 1,
             progress: typing.Callable[[dict], None] | None = None,
             telemetry: bool = False,
             backend: DispatchBackend | None = None) -> list[RunResult]:
    """Execute every run of ``spec``; results come back in grid order.

    ``progress``, if given, is called with each finished record (in grid
    order).  ``workers=1`` runs inline — no pool, easiest to debug —
    unless ``backend`` overrides the choice (see
    :func:`repro.experiments.dispatch.make_backend`).  ``telemetry=True``
    attaches a passive recorder to every scenario built by every run
    (see :mod:`repro.obs`); rows collect per run and stay
    byte-identical at any worker count because they contain only
    sim-time-deterministic data and travel back in grid order.

    This is the one-shot path: no cache, no journal, workload
    exceptions propagate.  :func:`repro.experiments.campaign.
    run_campaign` wraps the same backends with memoization and
    crash-resume.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if backend is None:
        backend = make_backend(workers=workers)
    point_dicts = [point.as_dict() for point in spec.expand()]
    execute = functools.partial(execute_point, telemetry=telemetry)
    results: list[RunResult] = []
    for record, timings, rows in backend.dispatch(execute, point_dicts):
        if progress is not None:
            progress(record)
        results.append(RunResult(record, timings, rows))
    return results


# ----------------------------------------------------------------------
# JSONL sink
# ----------------------------------------------------------------------
def jsonl_line(record: dict) -> str:
    """Canonical single-line rendering of one record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_jsonl(records: typing.Iterable[dict],
                path: str | pathlib.Path) -> pathlib.Path:
    """Write records (one JSON object per line) deterministically."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as sink:
        for record in records:
            sink.write(jsonl_line(record) + "\n")
    return path


def read_jsonl(path: str | pathlib.Path) -> list[dict]:
    """Read a JSONL result file back into records."""
    records = []
    with open(path, encoding="utf-8") as source:
        for line in source:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# telemetry sinks
# ----------------------------------------------------------------------
def write_telemetry(results: typing.Sequence[RunResult],
                    out_dir: str | pathlib.Path
                    ) -> tuple[pathlib.Path, pathlib.Path]:
    """Write ``telemetry.jsonl`` + ``timeline.csv`` for a finished sweep.

    ``telemetry.jsonl`` holds every recorded row (samples, spans,
    profile counts) in grid order, each tagged with its run index —
    byte-identical at any worker count, same argument as ``runs.jsonl``.
    ``timeline.csv`` is the sample rows only, flattened onto the fixed
    :data:`repro.obs.TIMELINE_FIELDS` column set for spreadsheet/pandas
    consumption.
    """
    from repro.metrics.tables import render_csv
    from repro.obs import TIMELINE_FIELDS

    out_dir = pathlib.Path(out_dir)
    rows = [row for result in results for row in result.telemetry]
    jsonl_path = write_jsonl(rows, out_dir / "telemetry.jsonl")
    headers = ("run", "leg") + TIMELINE_FIELDS
    csv_rows = [[row.get(header) for header in headers]
                for row in rows if row.get("type") == "sample"]
    csv_path = out_dir / "timeline.csv"
    csv_path.write_text(render_csv(headers, csv_rows), encoding="utf-8")
    return jsonl_path, csv_path
