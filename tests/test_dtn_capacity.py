"""Tests for the bandwidth-limited contact plane and PRoPHET routing.

The central invariant — **no contact ever moves more bytes than its
window × data rate** — is property-tested across every technology with
hypothesis-drawn crossing speeds, bundle sizes and rate overrides.
Around it: partial-transfer resume across repeated passes, churn
(in-flight transfers to the dead are cancelled and counted), the
settled-world wakeup discipline inherited from the event-driven
forwarder, PRoPHET's predictability algebra, and determinism of the
``dtn_bandwidth`` workload through the experiment runner.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.dtn import (
    BandwidthDtnOverlay,
    Bundle,
    DtnOverlay,
    MessageStore,
    Prophet,
    make_router,
)
from repro.dtn.traffic import generate_traffic, schedule_traffic
from repro.experiments import (
    ExperimentSpec,
    aggregate,
    run_spec,
    write_csv,
    write_jsonl,
)
from repro.mobility.linear import LinearMovement, PathMovement
from repro.radio.technologies import TECHNOLOGIES, get_technology
from repro.scenarios import Scenario, island_hopping_ferry, rural_bus_dtn


# ----------------------------------------------------------------------
# the byte-budget property
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    tech_name=st.sampled_from(sorted(TECHNOLOGIES)),
    speed=st.floats(min_value=0.5, max_value=40.0),
    size_bytes=st.integers(min_value=200, max_value=300_000),
    bundles=st.integers(min_value=1, max_value=6),
    rate_scale=st.floats(min_value=1e-4, max_value=1.0),
)
def test_contact_bytes_never_exceed_window_times_rate(
        tech_name, speed, size_bytes, bundles, rate_scale):
    """One straight-line pass: total data bytes ≤ window × rate."""
    tech = get_technology(tech_name)
    rate = tech.data_rate_Bps * rate_scale
    window_s = 2.0 * tech.range_m / speed
    scenario = Scenario(seed=3)
    scenario.add_node("a", position=(0.0, 0.0),
                      technologies=(tech_name,), mobility_class="static")
    scenario.add_node("b",
                      mobility=LinearMovement(
                          (-(tech.range_m + 20.0), 0.0), (speed, 0.0)),
                      technologies=(tech_name,))
    plane = BandwidthDtnOverlay(scenario.world, make_router("epidemic"),
                                tech=tech_name, data_rate_Bps=rate)
    for _ in range(bundles):
        plane.send("a", "b", size_bytes=size_bytes, ttl_s=1e6)
    # Run well past the contact (plus slack for slow crossings).
    scenario.run(until=window_s + 2.0 * (tech.range_m + 40.0) / speed)
    plane.detach()
    budget = int(window_s * rate)
    assert plane.counters.bytes_transferred <= budget + 1, (
        f"moved {plane.counters.bytes_transferred} bytes over a "
        f"{window_s:.3f}s window at {rate:.1f} B/s (budget {budget})")


def test_technology_capacity_math():
    tech = get_technology("bluetooth")
    assert tech.data_rate_Bps == tech.bitrate_bps / 8.0
    assert tech.contact_capacity_bytes(10.0) == int(
        10.0 * tech.data_rate_Bps)
    assert tech.contact_capacity_bytes(0.0) == 0
    assert tech.contact_capacity_bytes(-5.0) == 0


def test_plane_rejects_nonpositive_rate():
    scenario = Scenario(seed=1)
    scenario.add_node("a", position=(0, 0))
    scenario.add_node("b", position=(5, 0))
    with pytest.raises(ValueError, match="rate"):
        BandwidthDtnOverlay(scenario.world, make_router("epidemic"),
                            data_rate_Bps=0.0)


# ----------------------------------------------------------------------
# transfer scheduling: wakeups, resume, truncation
# ----------------------------------------------------------------------
def test_settled_world_delivers_with_zero_wakeups():
    """Transfer completions are self-scheduled, not contact wakeups."""
    scenario = Scenario(seed=1)
    for index in range(4):
        scenario.add_node(f"s{index}", position=(index * 6.0, 0.0),
                          mobility_class="static")
    plane = BandwidthDtnOverlay(scenario.world, make_router("epidemic"))
    plane.send("s0", "s3", ttl_s=100.0, size_bytes=5000)
    scenario.run(until=300.0)
    assert plane.delivered            # hop-by-hop over seeded adjacency
    assert plane.wakeups == 0
    assert scenario.world.stats.bus.fired == 0


def test_wakeups_bounded_by_bus_events():
    scenario = Scenario(seed=4)
    scenario.add_node("src", position=(0, 0), mobility_class="static")
    scenario.add_node("dst", position=(60, 0), mobility_class="static")
    scenario.add_node("mule",
                      mobility=LinearMovement((0.0, 5.0), (1.0, 0.0)))
    plane = BandwidthDtnOverlay(scenario.world, make_router("epidemic"))
    plane.send("src", "dst", ttl_s=500.0, size_bytes=2000)
    scenario.run(until=200.0)
    assert 0 < plane.wakeups <= scenario.world.stats.bus.fired
    assert plane.delivered


def _shuttle_world(seed=4):
    """src/dst 60 m apart; a mule shuttling between them twice."""
    scenario = Scenario(seed=seed)
    scenario.add_node("src", position=(0, 0), mobility_class="static")
    scenario.add_node("dst", position=(60, 0), mobility_class="static")
    path = PathMovement([(0.0, (0.0, 5.0)), (60.0, (60.0, 5.0)),
                         (120.0, (0.0, 5.0)), (180.0, (60.0, 5.0)),
                         (240.0, (0.0, 5.0))])
    scenario.add_node("mule", mobility=path)
    return scenario


def test_partial_transfer_resumes_across_passes():
    """A bundle bigger than one window crosses over several contacts."""
    scenario = _shuttle_world()
    plane = BandwidthDtnOverlay(scenario.world, make_router("epidemic"),
                                data_rate_Bps=500.0)
    bundle = plane.send("src", "dst", ttl_s=1000.0, size_bytes=30000)
    scenario.run(until=400.0)
    counters = plane.counters
    # Each src pass is worth far less than 30 kB, so the transfer was
    # truncated at least once and resumed from the fragment ledger.
    assert counters.transfers_truncated >= 1
    assert counters.transmissions == 1          # custody settled once
    assert counters.bytes_transferred == 30000  # no re-sent prefix
    assert plane.stores["mule"].get(bundle.bundle_id) is not None
    assert plane.stores["mule"].partial_received(bundle.bundle_id) == 0


def test_store_partial_ledger():
    store = MessageStore("n")
    assert store.partial_received("x") == 0
    assert store.record_partial("x", 100) == 100
    assert store.record_partial("x", 50) == 150
    with pytest.raises(ValueError, match="negative"):
        store.record_partial("x", -1)
    store.clear_partial("x")
    assert store.partial_received("x") == 0
    store.record_partial("y", 10)
    store.drop_all()
    assert store.partial_received("y") == 0     # fragments die with it


def test_control_traffic_consumes_budget():
    """A budget smaller than the control exchange moves zero data."""
    scenario = Scenario(seed=2)
    scenario.add_node("a", position=(0, 0), mobility_class="static")
    scenario.add_node("b",
                      mobility=LinearMovement((-30.0, 0.0), (10.0, 0.0)))
    plane = BandwidthDtnOverlay(scenario.world, make_router("epidemic"),
                                meter=scenario.meter, data_rate_Bps=4.0)
    # Window = 2 s → budget 8 bytes; one 8-byte summary-vector id on
    # each side already saturates it.
    plane.send("a", "b", size_bytes=4000, ttl_s=1e6)
    scenario.run(until=30.0)
    assert plane.counters.bytes_transferred == 0
    assert plane.delivered == {}


# ----------------------------------------------------------------------
# churn: in-flight transfers to the dead
# ----------------------------------------------------------------------
def test_inflight_transfer_to_removed_node_is_cancelled_and_counted():
    scenario = Scenario(seed=5)
    scenario.add_node("src", position=(0, 0), mobility_class="static")
    scenario.add_node("rcv", position=(5, 0), mobility_class="static")
    plane = BandwidthDtnOverlay(scenario.world, make_router("epidemic"),
                                data_rate_Bps=100.0)
    bundle = plane.send("src", "rcv", size_bytes=10000, ttl_s=1e6)
    scenario.run(until=10.0)                    # leg needs ~100 s
    assert plane.counters.transfers_cancelled == 0
    scenario.remove_node("rcv")                 # battery-out mid-flight
    assert plane.counters.transfers_cancelled == 1
    scenario.run(until=300.0)
    assert plane.delivered == {}
    assert plane.counters.bytes_transferred == 0
    # The sender never lost custody: after_transmit never ran.
    assert plane.stores["src"].get(bundle.bundle_id) is not None


def test_inflight_transfer_from_removed_sender_is_cancelled():
    scenario = Scenario(seed=6)
    scenario.add_node("src", position=(0, 0), mobility_class="static")
    scenario.add_node("rcv", position=(5, 0), mobility_class="static")
    plane = BandwidthDtnOverlay(scenario.world, make_router("epidemic"),
                                data_rate_Bps=100.0)
    plane.send("src", "rcv", size_bytes=10000, ttl_s=1e6)
    scenario.run(until=10.0)
    scenario.remove_node("src")                 # the custodian dies
    assert plane.counters.transfers_cancelled == 1
    assert plane.counters.dropped_dead == 1
    scenario.run(until=300.0)
    assert plane.delivered == {}


def test_detach_cancels_sessions_silently():
    scenario = Scenario(seed=7)
    scenario.add_node("a", position=(0, 0), mobility_class="static")
    scenario.add_node("b", position=(5, 0), mobility_class="static")
    plane = BandwidthDtnOverlay(scenario.world, make_router("epidemic"),
                                data_rate_Bps=10.0)
    plane.send("a", "b", size_bytes=50000, ttl_s=1e6)
    plane.detach()
    scenario.run(until=100.0)
    assert plane.delivered == {}
    assert plane.counters.transfers_cancelled == 0
    assert plane.counters.transfers_truncated == 0


def test_spray_tokens_conserved_across_concurrent_sessions():
    """Custody settles from the sender's *current* copy, not the leg's
    start-time snapshot — two overlapping legs of one bundle to
    different receivers must not mint spray tokens."""
    scenario = Scenario(seed=9)
    scenario.add_node("s", position=(0, 0), mobility_class="static")
    scenario.add_node("r1", position=(5, 0), mobility_class="static")
    scenario.add_node("r2", position=(0, 5), mobility_class="static")
    scenario.add_node("far", position=(1000, 0), mobility_class="static")
    plane = BandwidthDtnOverlay(scenario.world,
                                make_router("spray", spray_copies=6),
                                data_rate_Bps=1000.0)
    bundle = plane.send("s", "far", size_bytes=8000, ttl_s=1e6)
    scenario.run(until=200.0)
    copies = [store.get(bundle.bundle_id).copies
              for store in plane.stores.values()
              if store.get(bundle.bundle_id) is not None]
    assert sum(copies) == 6, f"token conservation violated: {copies}"


def test_complete_fragment_settles_at_zero_cost_instead_of_stalling():
    """A fully received fragment whose custody could not settle is
    handed over at the next contact without consuming budget — it must
    not wedge the session's transfer queue."""
    scenario = Scenario(seed=10)
    scenario.add_node("a", position=(0.0, 0.0), mobility_class="static")
    scenario.add_node("b",
                      mobility=LinearMovement((30.0, 0.0), (-1.0, 0.0)))
    # Rate so low the 10 kB bundle could never cross this window.
    plane = BandwidthDtnOverlay(scenario.world, make_router("epidemic"),
                                data_rate_Bps=4.0)
    bundle = Bundle("b#1", "b", "a", created_at=0.0, ttl_s=1e6,
                    size_bytes=10_000)
    plane.stores["b"].add(bundle, now=0.0)
    # ...but a already holds the full fragment from an earlier, settled
    # nowhere contact (custodian died before the handoff).
    plane.stores["a"].record_partial("b#1", 10_000)
    scenario.run(until=30.0)
    assert bundle.bundle_id in plane.delivered
    assert plane.counters.transmissions == 1
    assert plane.counters.bytes_transferred == 0   # zero-cost handoff
    assert plane.stores["a"].partial_received("b#1") == 0


# ----------------------------------------------------------------------
# equivalence with the instantaneous plane at effectively infinite rate
# ----------------------------------------------------------------------
def test_matches_instantaneous_plane_at_huge_rate():
    results = {}
    for mode in ("instant", "capacity"):
        scenario = island_hopping_ferry(count=6, seed=11)
        router = make_router("epidemic")
        if mode == "instant":
            plane = DtnOverlay(scenario.world, router)
        else:
            plane = BandwidthDtnOverlay(scenario.world, router,
                                        data_rate_Bps=1e12)
        injections = generate_traffic(
            scenario.sim.rng("dtn/traffic"), plane.live_nodes(),
            "uniform", 8, window=(5.0, 120.0), ttl_s=300.0)
        schedule_traffic(plane, injections)
        scenario.run(until=400.0)
        plane.detach()
        results[mode] = plane
    assert sorted(results["instant"].delivered) == \
        sorted(results["capacity"].delivered)
    assert results["capacity"].delivered


# ----------------------------------------------------------------------
# PRoPHET predictability algebra
# ----------------------------------------------------------------------
def test_prophet_encounter_and_aging():
    router = Prophet(p_encounter=0.75, gamma=0.98)
    router.on_contact("a", "b", 0.0)
    assert router.predictability("a", "b") == pytest.approx(0.75)
    assert router.predictability("b", "a") == pytest.approx(0.75)
    router.on_contact("a", "b", 10.0)
    aged = 0.75 * 0.98 ** 10
    assert router.predictability("a", "b") == pytest.approx(
        aged + (1 - aged) * 0.75)
    # An untouched pair only ever decays.
    router.on_contact("a", "c", 50.0)
    assert router.predictability("a", "b") < 0.95
    assert router.predictability("c", "a") == pytest.approx(0.75)


def test_prophet_transitivity():
    router = Prophet(beta=0.25)
    router.on_contact("b", "c", 0.0)
    router.on_contact("a", "b", 0.0)
    # a learned of c through b: P(a,c) = P(a,b)·P(b,c)·β > 0.
    expected = 0.75 * 0.75 * 0.25
    assert router.predictability("a", "c") == pytest.approx(expected)
    assert router.predictability("c", "a") == 0.0   # c never met a side


def test_prophet_control_bytes_scale_with_tables():
    router = Prophet()
    assert router.control_bytes("a", "b") == 0
    router.on_contact("a", "b", 0.0)
    router.on_contact("a", "c", 0.0)
    # a knows b and c (2 entries), b knows a and (transitively) c.
    assert router.control_bytes("a", "x") == 2 * Prophet.CONTROL_ENTRY_BYTES
    assert router.control_bytes("b", "x") == \
        router.table_size("b") * Prophet.CONTROL_ENTRY_BYTES


def test_prophet_offers_rank_by_peer_predictability():
    router = Prophet()
    # peer has met d1 often and d2 once, long ago.
    router.on_contact("peer", "d1", 0.0)
    router.on_contact("peer", "d1", 10.0)
    router.on_contact("peer", "d2", 10.0)
    store = MessageStore("carrier")
    to_d1 = Bundle("x1", "s", "d1", created_at=0.0, ttl_s=1e6)
    to_d2 = Bundle("x2", "s", "d2", created_at=0.0, ttl_s=1e6)
    to_peer = Bundle("x3", "s", "peer", created_at=5.0, ttl_s=1e6)
    unknown = Bundle("x4", "s", "ghost", created_at=0.0, ttl_s=1e6)
    for bundle in (to_d1, to_d2, to_peer, unknown):
        store.add(bundle, now=20.0)
    offers = router.offers(store, "peer", frozenset())
    # Destined first; relays by descending P(peer, dest); the bundle
    # whose destination the peer cannot beat the carrier on (both 0)
    # is not offered at all.
    assert [b.bundle_id for b in offers] == ["x3", "x1", "x2"]


def test_prophet_validation_and_registry():
    with pytest.raises(ValueError, match="p_encounter"):
        Prophet(p_encounter=1.0)
    with pytest.raises(ValueError, match="gamma"):
        Prophet(gamma=0.0)
    with pytest.raises(NotImplementedError):
        Prophet().eligible(Bundle("x", "a", "b", created_at=0.0), "b")
    assert make_router("prophet").name == "prophet"
    with pytest.raises(KeyError, match="prophet"):
        make_router("flooding")


def test_prophet_beats_epidemic_under_tight_bandwidth():
    """The bench gate's structural core, at test scale: on the rural
    bus world with constrained contacts, PRoPHET's delivery ratio is
    at least epidemic's (it skips the relays that waste window bytes).
    """
    ratios = {}
    for name in ("epidemic", "prophet"):
        scenario = rural_bus_dtn(count=9, seed=29)
        plane = BandwidthDtnOverlay(scenario.world, make_router(name),
                                    data_rate_Bps=24_000.0)
        injections = generate_traffic(
            scenario.sim.rng("dtn/traffic"), plane.live_nodes(),
            "uniform", 20, window=(120.0, 300.0), size_bytes=200_000,
            ttl_s=480.0)
        schedule_traffic(plane, injections)
        scenario.run(until=600.0)
        plane.detach()
        ratios[name] = plane.delivery_ratio()
    assert ratios["prophet"] >= ratios["epidemic"]
    assert ratios["prophet"] > 0.0


# ----------------------------------------------------------------------
# the dtn_bandwidth workload through the experiment runner
# ----------------------------------------------------------------------
def _bandwidth_tiny_spec():
    return ExperimentSpec(
        name="bw_tiny", workload="dtn_bandwidth",
        scenarios=("rural_bus_dtn",),
        axes={"count": (6,)}, repeats=2, master_seed=19,
        settings={"duration_s": 480.0, "messages": 8,
                  "size_bytes": 120_000, "rate_Bps": 24_000.0,
                  "routers": ("epidemic", "prophet")})


def test_bandwidth_workload_deterministic_across_workers(tmp_path):
    spec = _bandwidth_tiny_spec()
    outputs = {}
    for workers in (1, 2):
        records = [r.record for r in run_spec(spec, workers=workers)]
        out = tmp_path / f"w{workers}"
        jsonl = write_jsonl(records, out / "runs.jsonl")
        csv = write_csv(aggregate(records), out / "summary.csv")
        outputs[workers] = (jsonl.read_bytes(), csv.read_bytes())
    assert outputs[1] == outputs[2]


def test_bandwidth_workload_emits_byte_metrics():
    point = _bandwidth_tiny_spec().expand()[0]
    from repro.experiments.workloads import get_workload
    metrics = get_workload("dtn_bandwidth")(point)
    assert metrics["rate_Bps"] == 24_000.0
    for router in ("epidemic", "prophet"):
        assert 0.0 <= metrics[f"{router}_delivery_ratio"] <= 1.0
        assert metrics[f"{router}_bytes_transferred"] > 0
        assert metrics[f"{router}_bytes_offered"] > 0
        assert metrics[f"{router}_transfers_truncated"] >= 0
    assert metrics["prophet_control_bytes"] > 0
