"""Tests for the store-carry-forward data plane (repro.dtn).

Covers bundles and stores (TTL, capacity, summary vectors), the three
routing baselines (direct-delivery, epidemic dedup, spray-and-wait
token conservation), the event-driven forwarder's wakeup invariant (no
wakeup without a scheduled contact event), equivalence against the 1 s
polling oracle, and the ``dtn`` workload's determinism through the
experiment runner.
"""

import pytest

from repro.dtn import (
    Bundle,
    DtnOverlay,
    MessageStore,
    PollingDtnOverlay,
    SprayAndWait,
    make_router,
    transmission_order,
)
from repro.dtn.traffic import generate_traffic, schedule_traffic
from repro.experiments import (
    ExperimentSpec,
    aggregate,
    run_spec,
    write_csv,
    write_jsonl,
)
from repro.mobility.linear import LinearMovement
from repro.scenarios import Scenario, island_hopping_ferry


# ----------------------------------------------------------------------
# bundles
# ----------------------------------------------------------------------
def test_bundle_validation_and_expiry():
    with pytest.raises(ValueError, match="ttl"):
        Bundle("x", "a", "b", created_at=0.0, ttl_s=0.0)
    with pytest.raises(ValueError, match="copies"):
        Bundle("x", "a", "b", created_at=0.0, copies=0)
    with pytest.raises(ValueError, match="own source"):
        Bundle("x", "a", "a", created_at=0.0)
    bundle = Bundle("x", "a", "b", created_at=10.0, ttl_s=5.0)
    assert bundle.expires_at == 15.0
    assert not bundle.expired(14.9)
    assert bundle.expired(15.0)
    assert bundle.with_copies(4).copies == 4
    assert bundle.age(12.0) == 2.0


# ----------------------------------------------------------------------
# the message store
# ----------------------------------------------------------------------
def test_store_refuses_expired_and_sweeps_lazily():
    store = MessageStore("n")
    live = Bundle("live", "a", "b", created_at=0.0, ttl_s=100.0)
    dead = Bundle("dead", "a", "b", created_at=0.0, ttl_s=10.0)
    assert store.add(live, now=5.0)
    assert not store.add(dead, now=10.0)     # already expired on arrival
    assert store.counters.expired == 1
    assert [b.bundle_id for b in store.bundles()] == ["live"]
    assert store.expire(99.9) == []
    assert [b.bundle_id for b in store.expire(100.0)] == ["live"]
    assert store.counters.expired == 2
    assert len(store) == 0


def test_store_capacity_eviction_counts():
    store = MessageStore("n", capacity_bytes=1024)
    first = Bundle("one", "a", "b", created_at=0.0, size_bytes=600)
    second = Bundle("two", "a", "b", created_at=1.0, size_bytes=600)
    assert store.add(first, now=0.0)
    assert store.add(second, now=1.0)        # evicts "one" (oldest)
    assert store.counters.evicted == 1
    assert [b.bundle_id for b in store.bundles()] == ["two"]


def test_summary_vector_remembers_released_custody():
    store = MessageStore("n")
    bundle = Bundle("x", "a", "b", created_at=0.0)
    store.add(bundle, now=0.0)
    store.remove("x")
    assert "x" not in store
    assert store.has_seen("x")               # dedup survives custody
    store.mark_seen("y")
    assert store.summary_vector() == frozenset({"x", "y"})


# ----------------------------------------------------------------------
# routers
# ----------------------------------------------------------------------
def test_transmission_order_is_destined_first_then_oldest():
    young = Bundle("young", "s", "peer", created_at=9.0)
    old_relay = Bundle("old", "s", "other", created_at=1.0)
    older_relay = Bundle("older", "s", "other2", created_at=0.5)
    ordered = transmission_order([old_relay, young, older_relay], "peer")
    assert [b.bundle_id for b in ordered] == ["young", "older", "old"]


def test_make_router_names():
    assert make_router("direct").name == "direct"
    assert make_router("epidemic").name == "epidemic"
    assert make_router("spray", spray_copies=4).initial_copies == 4
    with pytest.raises(KeyError, match="unknown DTN router"):
        make_router("flooding")
    with pytest.raises(ValueError, match="copies"):
        SprayAndWait(copies=0)


def _relay_world(seed=4):
    """Static src and dst 60 m apart; a mule drives past both."""
    scenario = Scenario(seed=seed)
    scenario.add_node("src", position=(0, 0), mobility_class="static")
    scenario.add_node("dst", position=(60, 0), mobility_class="static")
    scenario.add_node("mule",
                      mobility=LinearMovement((0.0, 5.0), (1.0, 0.0)))
    return scenario


def test_direct_delivery_never_relays():
    scenario = _relay_world()
    plane = DtnOverlay(scenario.world, make_router("direct"))
    plane.send("src", "dst", ttl_s=500.0)
    scenario.run(until=200.0)
    # src and dst never meet; direct-delivery cannot use the mule.
    assert plane.delivered == {}
    assert plane.counters.transmissions == 0
    assert len(plane.stores["src"]) == 1     # still under custody


def test_epidemic_relays_across_the_partition():
    scenario = _relay_world()
    plane = DtnOverlay(scenario.world, make_router("epidemic"),
                       meter=scenario.meter)
    bundle = plane.send("src", "dst", ttl_s=500.0)
    scenario.run(until=200.0)
    record = plane.delivered[bundle.bundle_id]
    assert record.custodian == "mule"
    assert record.latency_s > 0.0
    assert plane.counters.transmissions == 2     # src→mule, mule→dst
    assert plane.counters.duplicates == 0        # summary-vector dedup
    assert scenario.meter.messages(category="dtn-data") == 2
    assert scenario.meter.messages(category="dtn-control") > 0


def test_spray_and_wait_conserves_tokens_and_waits():
    scenario = Scenario(seed=8)
    scenario.add_node("src", position=(0, 0))
    scenario.add_node("n1", position=(5, 0))
    scenario.add_node("n2", position=(0, 5))
    scenario.add_node("far", position=(500, 0))
    plane = DtnOverlay(scenario.world, make_router("spray",
                                                   spray_copies=4))
    bundle = plane.send("src", "far", ttl_s=500.0)
    scenario.run(until=50.0)
    copies = [store.get(bundle.bundle_id).copies
              for store in plane.stores.values()
              if store.get(bundle.bundle_id) is not None]
    assert sum(copies) == 4                  # token conservation
    # Everyone reachable holds >= 1 token; one-token custodians wait,
    # so no further spraying can occur between the three.
    assert sorted(copies, reverse=True)[0] >= 2
    assert plane.delivered == {}             # "far" is unreachable


def test_spray_single_copy_behaves_like_direct():
    scenario = _relay_world()
    plane = DtnOverlay(scenario.world, make_router("spray",
                                                   spray_copies=1))
    plane.send("src", "dst", ttl_s=500.0)
    scenario.run(until=200.0)
    assert plane.delivered == {}             # wait phase from birth


# ----------------------------------------------------------------------
# the wakeup invariant and the polling oracle
# ----------------------------------------------------------------------
def test_no_wakeups_in_a_settled_world():
    """No forwarder wakeup without a scheduled contact event."""
    scenario = Scenario(seed=1)
    for index in range(4):
        scenario.add_node(f"s{index}", position=(index * 6.0, 0.0),
                          mobility_class="static")
    plane = DtnOverlay(scenario.world, make_router("epidemic"))
    plane.send("s0", "s3", ttl_s=100.0)
    scenario.run(until=300.0)
    # Delivery happened over the seeded adjacency cascade (s0..s3 form
    # a connected chain), yet the settled world scheduled no contact
    # events — and the forwarder therefore never woke.
    assert plane.delivered
    assert plane.wakeups == 0
    assert scenario.world.stats.bus.fired == 0


def test_wakeups_bounded_by_bus_events():
    scenario = _relay_world()
    plane = DtnOverlay(scenario.world, make_router("epidemic"))
    plane.send("src", "dst", ttl_s=500.0)
    scenario.run(until=200.0)
    assert 0 < plane.wakeups <= scenario.world.stats.bus.fired


def test_event_driven_matches_polling_oracle_on_long_contacts():
    """Contacts dwarf the 1 s poll period: both modes deliver the same
    bundles; the event-driven forwarder spends far fewer wakeups."""
    results = {}
    for mode in ("event", "polling"):
        scenario = island_hopping_ferry(count=6, seed=11)
        router = make_router("epidemic")
        if mode == "event":
            plane = DtnOverlay(scenario.world, router)
        else:
            plane = PollingDtnOverlay(scenario.world, router,
                                      poll_interval_s=1.0)
        injections = generate_traffic(
            scenario.sim.rng("dtn/traffic"), plane.live_nodes(),
            "uniform", 8, window=(5.0, 120.0), ttl_s=300.0)
        schedule_traffic(plane, injections)
        scenario.run(until=400.0)
        results[mode] = plane
    event, polling = results["event"], results["polling"]
    assert sorted(event.delivered) == sorted(polling.delivered)
    assert event.delivered                   # the run exercised delivery
    assert event.wakeups * 5 < polling.wakeups


def test_overlay_detach_stops_future_exchanges():
    scenario = _relay_world()
    plane = DtnOverlay(scenario.world, make_router("epidemic"))
    plane.send("src", "dst", ttl_s=500.0)
    plane.detach()
    scenario.run(until=200.0)
    assert plane.delivered == {}             # no watches, no contacts
    assert plane.wakeups == 0


# ----------------------------------------------------------------------
# traffic generation
# ----------------------------------------------------------------------
def test_generate_traffic_is_deterministic_and_validated():
    scenario = Scenario(seed=3)
    rng_a = scenario.sim.rng("traffic/a")
    scenario_b = Scenario(seed=3)
    rng_b = scenario_b.sim.rng("traffic/a")
    nodes = ["n1", "n2", "n3"]
    first = generate_traffic(rng_a, nodes, "uniform", 10, (0.0, 50.0))
    second = generate_traffic(rng_b, nodes, "uniform", 10, (0.0, 50.0))
    assert first == second
    assert all(row.source != row.destination for row in first)
    with pytest.raises(ValueError, match="pattern"):
        generate_traffic(rng_a, nodes, "storm", 1, (0.0, 1.0))
    with pytest.raises(ValueError, match="two nodes"):
        generate_traffic(rng_a, ["solo"], "uniform", 1, (0.0, 1.0))
    with pytest.raises(ValueError, match="endpoints"):
        generate_traffic(rng_a, nodes, "endpoints", 1, (0.0, 1.0))
    with pytest.raises(KeyError, match="not a plane node"):
        generate_traffic(rng_a, nodes, "broadcast", 1, (0.0, 1.0),
                         source="ghost")


def test_broadcast_pattern_fans_out_per_round():
    scenario = Scenario(seed=3)
    rows = generate_traffic(scenario.sim.rng("t"), ["a", "b", "c"],
                            "broadcast", 2, (0.0, 10.0), source="a")
    assert len(rows) == 4                    # 2 rounds × 2 receivers
    assert {row.destination for row in rows} == {"b", "c"}
    assert all(row.source == "a" for row in rows)


def test_endpoints_pattern_alternates_directions():
    scenario = Scenario(seed=3)
    rows = generate_traffic(scenario.sim.rng("t"), ["home", "work", "m"],
                            "endpoints", 4, (0.0, 10.0),
                            endpoints=("home", "work"))
    assert sorted((row.source, row.destination) for row in rows) == [
        ("home", "work"), ("home", "work"),
        ("work", "home"), ("work", "home")]


def test_schedule_traffic_skips_dead_endpoints_but_fails_loudly_on_bad_rows():
    """Only churn is forgiven; malformed injections must raise."""
    scenario = Scenario(seed=2)
    scenario.add_node("a", position=(0, 0))
    scenario.add_node("b", position=(5, 0))
    plane = DtnOverlay(scenario.world, make_router("epidemic"))
    from repro.dtn import Injection
    schedule_traffic(plane, [Injection(10.0, "a", "b", ttl_s=0.0)])
    with pytest.raises(ValueError, match="ttl"):
        scenario.run(until=20.0)             # bad TTL surfaces, loudly
    scenario.remove_node("b")
    schedule_traffic(plane, [Injection(30.0, "a", "b")])
    scenario.run(until=40.0)                 # dead endpoint: skipped
    assert plane.counters.created == 0


# ----------------------------------------------------------------------
# the dtn workload through the experiment runner
# ----------------------------------------------------------------------
def _dtn_tiny_spec():
    return ExperimentSpec(
        name="dtn_tiny", workload="dtn",
        scenarios=("island_hopping_ferry",),
        axes={"count": (6,)}, repeats=2, master_seed=9,
        settings={"duration_s": 240.0, "messages": 6,
                  "routers": ("direct", "epidemic")})


def test_dtn_workload_deterministic_across_workers(tmp_path):
    spec = _dtn_tiny_spec()
    outputs = {}
    for workers in (1, 2):
        records = [r.record for r in run_spec(spec, workers=workers)]
        out = tmp_path / f"w{workers}"
        jsonl = write_jsonl(records, out / "runs.jsonl")
        csv = write_csv(aggregate(records), out / "summary.csv")
        outputs[workers] = (jsonl.read_bytes(), csv.read_bytes())
    assert outputs[1] == outputs[2]


def test_dtn_workload_emits_paired_router_metrics():
    point = _dtn_tiny_spec().expand()[0]
    from repro.experiments.workloads import get_workload
    metrics = get_workload("dtn")(point)
    for router in ("direct", "epidemic"):
        assert 0.0 <= metrics[f"{router}_delivery_ratio"] <= 1.0
        assert metrics[f"{router}_duplicates"] == 0
    assert metrics["epidemic_delivery_ratio"] \
        >= metrics["direct_delivery_ratio"]
    assert metrics["created"] == 6
