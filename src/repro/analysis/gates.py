"""Tolerance-band regression gates over ``BENCH_*.json`` snapshots.

The benches themselves assert *absolute* floors (wakeup reduction ≥ 5×,
PRoPHET ≥ epidemic).  Those catch collapses, not erosion: a wakeup
reduction sliding from 48× to 6× passes every absolute gate while giving
up an order of magnitude.  This module adds the relative gate: compare a
freshly measured snapshot against the committed baseline and fail when
any shared numeric metric drifts beyond a tolerance band.

Semantics
---------
* Comparison is *symmetric*: drift in either direction fails.  The
  simulations are deterministic per seed, so at equal N every recorded
  metric should match the baseline **exactly** — any drift means this
  change altered behaviour, and the author must either fix it or
  regenerate the baseline to document the new figures.  The tolerance
  band exists for metrics that aggregate over float arithmetic whose
  rounding may shift across Python/platform versions, not for noise.
* Wall-clock leaves (keys containing ``wall``, ``_ms``/``ms_``) are
  skipped — they are machine noise and ride the timings side channel by
  contract.  The ``envelope`` subtree is skipped too (SHA and timestamp
  legitimately differ).
* Metrics present only in the fresh snapshot are fine (new gates land
  with the PR that adds them); metrics that *vanish* fail — a silently
  dropped gate is itself a regression.

Baselines at CI sizes live under ``results/bench_baseline/`` so the
bench-smoke job compares like with like (same N, same seeds); the
committed repo-root snapshots remain the full-size showcase figures.
"""

from __future__ import annotations

import dataclasses
import pathlib
import typing

from repro.analysis.snapshots import load_snapshots

#: Key substrings whose subtrees/leaves are excluded from comparison.
SKIP_KEY_SUBSTRINGS = ("wall", "_ms", "ms_")
SKIP_KEYS = ("envelope", "generated_at", "git_sha", "timestamp")

#: Default relative tolerance band (fraction of the baseline value).
DEFAULT_TOLERANCE = 0.1


def _skipped(key: str) -> bool:
    if key in SKIP_KEYS:
        return True
    return any(mark in key for mark in SKIP_KEY_SUBSTRINGS)


def numeric_leaves(obj: object, prefix: str = "") -> dict[str, float]:
    """Flatten every numeric leaf to a dotted path → value mapping.

    Booleans count as 0/1 (gate flags like
    ``prophet_beats_epidemic_in_every_run`` must not silently flip);
    strings and ``None`` are ignored; wall-clock and envelope keys are
    skipped per the module contract.
    """
    leaves: dict[str, float] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            key = str(key)
            if _skipped(key):
                continue
            path = f"{prefix}.{key}" if prefix else key
            leaves.update(numeric_leaves(value, path))
    elif isinstance(obj, (list, tuple)):
        for index, value in enumerate(obj):
            path = f"{prefix}.{index}" if prefix else str(index)
            leaves.update(numeric_leaves(value, path))
    elif isinstance(obj, bool):
        leaves[prefix] = float(obj)
    elif isinstance(obj, (int, float)):
        leaves[prefix] = float(obj)
    return leaves


@dataclasses.dataclass(frozen=True)
class GateFailure:
    """One metric outside its tolerance band (or missing)."""

    benchmark: str
    metric: str
    baseline: float | None
    fresh: float | None
    rel_delta: float | None          #: None when the metric vanished

    def describe(self) -> str:
        if self.fresh is None:
            return (f"{self.benchmark}: {self.metric} vanished "
                    f"(baseline {self.baseline:g})")
        return (f"{self.benchmark}: {self.metric} drifted "
                f"{self.rel_delta:+.1%} ({self.baseline:g} -> "
                f"{self.fresh:g})")


def compare_snapshots(benchmark: str, baseline: dict, fresh: dict,
                      tolerance: float = DEFAULT_TOLERANCE
                      ) -> list[GateFailure]:
    """Gate one fresh snapshot against its baseline.

    Relative delta is ``|fresh - baseline| / max(|baseline|, 1e-9)``;
    a zero baseline therefore tolerates only an (almost) exactly zero
    fresh value — correct for counters like ``duplicates`` whose whole
    point is staying at 0.
    """
    base_leaves = numeric_leaves(baseline)
    fresh_leaves = numeric_leaves(fresh)
    failures: list[GateFailure] = []
    for metric in sorted(base_leaves):
        base_value = base_leaves[metric]
        if metric not in fresh_leaves:
            failures.append(GateFailure(benchmark, metric, base_value,
                                        None, None))
            continue
        fresh_value = fresh_leaves[metric]
        rel = abs(fresh_value - base_value) / max(abs(base_value), 1e-9)
        if rel > tolerance:
            signed = (fresh_value - base_value) / max(abs(base_value), 1e-9)
            failures.append(GateFailure(benchmark, metric, base_value,
                                        fresh_value, signed))
    return failures


def gate_directories(baseline_dir: str | pathlib.Path,
                     fresh_dir: str | pathlib.Path,
                     tolerance: float = DEFAULT_TOLERANCE
                     ) -> tuple[list[GateFailure], list[str]]:
    """Gate every benchmark present in *both* directories.

    Returns ``(failures, compared_benchmark_names)``.  A baseline with
    no fresh counterpart is skipped (the smoke job may not run every
    bench); an empty intersection returns ``([], [])`` and the CLI
    treats that as an error — a gate that compared nothing gates
    nothing.
    """
    baselines = load_snapshots(baseline_dir)
    fresh = load_snapshots(fresh_dir)
    failures: list[GateFailure] = []
    compared: list[str] = []
    for name in sorted(set(baselines) & set(fresh)):
        compared.append(name)
        failures.extend(compare_snapshots(name, baselines[name],
                                          fresh[name], tolerance))
    return failures, compared


def format_failures(failures: typing.Sequence[GateFailure]) -> str:
    """Human-readable failure list, one line per metric."""
    return "\n".join(failure.describe() for failure in failures)
