"""E7 — §4.3 / Fig. 4.5: the bridge service performance test.

Paper artifact: "In these ten connection attempts, three of them couldn't
be done due to the normal Bluetooth connection fault ... the time needed
for the connection was between 3-18 seconds.  The sending and receiving
of data packages were carried out perfectly with an almost negligible
time delay."
"""

from repro.apps.message_test import MessageTestClient, MessageTestServer
from repro.core.config import DaemonConfig
from repro.metrics.stats import summarize
from repro.scenarios import fig_4_5_bridge_test
from paperbench import print_table

ATTEMPTS = 20
SETTLE_S = 200.0


def run_campaign():
    outcomes = []
    for seed in range(ATTEMPTS):
        # The paper made single attempts: no establishment retries
        # anywhere on the chain (its 3/10 failures come from exactly
        # that), so the bridge must not retry its onward hop either.
        config = DaemonConfig(connect_retries=0)
        scenario = fig_4_5_bridge_test(seed=seed, config=config)
        server = MessageTestServer(scenario.node("server"))
        client = MessageTestClient(scenario.node("client"), count=20,
                                   interval_s=1.0)
        scenario.start_all()
        scenario.run(until=SETTLE_S)
        if not scenario.wait_for_route("client", "server"):
            continue
        # The paper did not retry: a single chain attempt per run.
        outcome = scenario.run_process(client.run(server, retries=0))
        outcomes.append(outcome)
    return outcomes


def test_e7_bridge_performance(benchmark):
    outcomes = benchmark.pedantic(run_campaign, rounds=1, iterations=1,
                                  warmup_rounds=0)
    assert len(outcomes) >= 10
    successes = [o for o in outcomes if o.connected]
    failures = [o for o in outcomes if not o.connected]
    connect_times = [o.connect_time_s for o in successes]
    delays = [o.first_delivery_delay_s for o in successes
              if o.first_delivery_delay_s is not None]
    stats = summarize(connect_times)
    rows = [
        ["attempts", "10", len(outcomes)],
        ["failed (BT fault)", "3 (30%)",
         f"{len(failures)} ({100 * len(failures) / len(outcomes):.0f}%)"],
        ["connect time", "3-18 s",
         f"{stats.minimum:.1f}-{stats.maximum:.1f} s "
         f"(mean {stats.mean:.1f})"],
        ["messages delivered", "20/20, in order",
         f"{successes[0].messages_delivered}/20 (first run)"],
        ["per-message relay delay", "almost negligible",
         f"{max(delays):.3f} s worst case"],
    ]
    print_table("E7: §4.3 bridge performance (paper vs measured)",
                ["metric", "paper", "measured"], rows)
    # Shape assertions.
    failure_rate = len(failures) / len(outcomes)
    assert 0.10 <= failure_rate <= 0.50, (
        f"paper saw ~30% chain failures, measured {failure_rate:.0%}")
    assert stats.minimum >= 3.0 - 0.5, "two BT links: at least ~3 s"
    assert stats.maximum <= 18.0 + 0.5, "two BT links: at most ~18 s"
    for outcome in successes:
        assert outcome.messages_delivered == 20
    assert max(delays) < 0.5, "relay latency must be negligible (§4.3)"
    benchmark.extra_info["failure_rate"] = round(failure_rate, 3)
    benchmark.extra_info["connect_time_mean_s"] = round(stats.mean, 2)
    benchmark.extra_info["connect_time_range_s"] = [
        round(stats.minimum, 2), round(stats.maximum, 2)]
