"""E2 — Fig. 3.6: the dynamic device discovery table for device A.

Paper artifact: after propagation, A's DeviceStorage reads
{B: 0 jumps, no bridge; C: 0, no bridge; D: 1 via C; E: 1 via B}.
"""

from repro.scenarios import fig_3_6_dynamic_discovery
from paperbench import print_table

PAPER_TABLE = {
    "B": (0, None),
    "C": (0, None),
    "D": (1, "C"),
    "E": (1, "B"),
}


def run_discovery(seed=4, settle_s=240.0):
    scenario = fig_3_6_dynamic_discovery(seed=seed)
    scenario.start_all()
    scenario.run(until=settle_s)
    node_a = scenario.node("A")
    table = {}
    for device in node_a.daemon.storage.devices():
        peer = scenario.fabric.node_by_address(device.address)
        if peer is None:
            continue
        bridge_peer = (scenario.fabric.node_by_address(device.bridge)
                       if device.bridge else None)
        table[peer.node_id] = (
            device.jump, bridge_peer.node_id if bridge_peer else None)
    return table


def test_e2_fig_3_6_device_storage_of_a(benchmark):
    table = benchmark.pedantic(run_discovery, rounds=1, iterations=1,
                               warmup_rounds=0)
    rows = []
    for name, (jump, bridge) in sorted(PAPER_TABLE.items()):
        got = table.get(name)
        rows.append([name, f"jump {jump} via {bridge or '-'}",
                     f"jump {got[0]} via {got[1] or '-'}" if got else
                     "missing",
                     "ok" if got == (jump, bridge) else "MISMATCH"])
    print_table("E2: Fig. 3.6 DeviceStorage of A (paper vs measured)",
                ["device", "paper", "measured", "match"], rows)
    for name, expected in PAPER_TABLE.items():
        assert table.get(name) == expected, (
            f"A's entry for {name}: paper {expected}, "
            f"measured {table.get(name)}")
    benchmark.extra_info["devices_known"] = len(table)
