"""Failure-injection tests: daemons dying, nodes vanishing, load limits."""

import pytest

from repro.core.config import DaemonConfig
from repro.core.errors import ConnectionClosedError
from repro.mobility import StaticPosition
from repro.radio.technologies import BLUETOOTH
from repro.scenarios import Scenario

SETTLE_S = 180.0


def sink_service(node, received):
    def handler(connection):
        def serve(connection=connection):
            while True:
                try:
                    payload = yield from connection.read()
                except ConnectionClosedError:
                    return
                received.append(payload)
        return serve()
    node.library.register_service("sink", handler)


def test_daemon_stop_closes_server_connections():
    scenario = Scenario(seed=81)
    client = scenario.add_node("client", position=(0, 0))
    server = scenario.add_node("server", position=(5, 0),
                               mobility_class="static")
    received = []
    sink_service(server, received)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "sink", retries=6)
        connection.write("before", 64)
        yield sim.timeout(2.0)
        server.stop()
        yield sim.timeout(5.0)
        return connection

    connection = scenario.run_process(run(scenario.sim))
    assert received == ["before"]
    # The server's engine closed its side; the client sees the teardown.
    assert not connection.is_open


def test_restarted_daemon_is_rediscovered():
    scenario = Scenario(seed=82)
    observer = scenario.add_node("observer", position=(0, 0))
    flaky = scenario.add_node("flaky", position=(5, 0))
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert flaky.address in observer.daemon.storage
    flaky.stop()
    scenario.run(until=scenario.sim.now + 150.0)
    assert flaky.address not in observer.daemon.storage
    flaky.start()
    scenario.run(until=scenario.sim.now + 150.0)
    assert flaky.address in observer.daemon.storage


def test_crash_rebooted_node_is_rediscovered_and_can_receive():
    """The fault-plane variant of the restart test: a crash suspends the
    node in the *world* (daemon untouched), so discovery must lose it
    mid-outage, re-find it after the reboot, and deliver to it again."""
    from repro.faults import FaultPlane
    scenario = Scenario(seed=82)
    observer = scenario.add_node("observer", position=(0, 0))
    flaky = scenario.add_node("flaky", position=(5, 0))
    received = []
    sink_service(flaky, received)
    fault_plane = FaultPlane(scenario.world)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert flaky.address in observer.daemon.storage
    fault_plane.crash_now("flaky")
    scenario.run(until=scenario.sim.now + 150.0)
    assert flaky.address not in observer.daemon.storage
    fault_plane.reboot_now("flaky")
    scenario.run(until=scenario.sim.now + 150.0)
    assert flaky.address in observer.daemon.storage

    def run(sim):
        connection = yield from observer.library.connect(
            flaky.address, "sink", retries=6)
        connection.write("post-reboot", 64)
        yield sim.timeout(2.0)
        return connection

    scenario.run_process(run(scenario.sim))
    assert received == ["post-reboot"]
    assert fault_plane.counters.crashes == 1
    assert fault_plane.counters.reboots == 1


def test_bridge_node_death_tears_down_relayed_connection():
    scenario = Scenario(seed=83)
    client = scenario.add_node("client", position=(0, 0))
    bridge = scenario.add_node("bridge", position=(8, 0),
                               mobility_class="static")
    server = scenario.add_node("server", position=(16, 0),
                               mobility_class="static")
    received = []
    sink_service(server, received)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "sink", retries=8)
        connection.write("one", 64)
        yield sim.timeout(2.0)
        bridge.stop()  # the relay dies mid-connection
        yield sim.timeout(5.0)
        connection.write("two", 64)  # silently lost (§6.1)
        yield sim.timeout(5.0)
        return connection

    connection = scenario.run_process(run(scenario.sim))
    assert received == ["one"]


def test_world_remove_node_mid_stream_breaks_link():
    """Physically yanking a node (battery out) downs its links."""
    scenario = Scenario(seed=84)
    client = scenario.add_node("client", position=(0, 0))
    server = scenario.add_node("server", position=(5, 0),
                               mobility_class="static")
    received = []
    sink_service(server, received)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "sink", retries=6)
        connection.write("first", 64)
        yield sim.timeout(2.0)
        scenario.fabric.unregister("server")
        scenario.world.remove_node("server")
        connection.write("void", 64)  # in-range check now fails
        yield sim.timeout(2.0)
        return connection

    connection = scenario.run_process(run(scenario.sim))
    assert received == ["first"]
    assert not connection.link.is_open  # frame loss broke the link


def test_load_factor_scales_advertised_quality():
    """§4.0: a loaded bridge advertises reduced quality."""
    config = DaemonConfig(advertise_load_in_quality=True,
                          bridge_max_connections=4)
    scenario = Scenario(seed=85)
    node = scenario.add_node("advertiser", position=(0, 0), config=config)
    node.start()
    response = node.daemon.handle_discovery_fetch(BLUETOOTH)
    assert response.load_factor == 1.0  # idle bridge
    # Simulate occupancy: two of four slots taken.
    from repro.core.bridge import _RelayPair
    from repro.radio.channel import Link
    link_a = Link(scenario.world, "advertiser", "advertiser", BLUETOOTH)
    node.daemon.bridge_service._pairs.extend(
        [_RelayPair(link_a, link_a), _RelayPair(link_a, link_a)])
    response = node.daemon.handle_discovery_fetch(BLUETOOTH)
    assert response.load_factor == pytest.approx(0.5)


def test_load_factor_not_advertised_by_default():
    scenario = Scenario(seed=86)
    node = scenario.add_node("plain", position=(0, 0))
    node.start()
    response = node.daemon.handle_discovery_fetch(BLUETOOTH)
    assert response.load_factor == 1.0


def test_inquirer_scales_measured_quality_by_load_factor():
    """The §4.0 bottleneck hint flows into the stored route quality."""
    config = DaemonConfig(advertise_load_in_quality=True,
                          bridge_max_connections=2)
    scenario = Scenario(seed=87)
    observer = scenario.add_node("observer", position=(0, 0))
    busy = scenario.add_node("busy", position=(2, 0), config=config)
    # Fill the busy node's bridge completely before discovery begins.
    from repro.core.bridge import _RelayPair
    from repro.radio.channel import Link
    link = Link(scenario.world, "busy", "busy", BLUETOOTH)
    busy.daemon.bridge_service._pairs.extend(
        [_RelayPair(link, link), _RelayPair(link, link)])
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    entry = observer.daemon.storage.get(busy.address)
    assert entry is not None
    # Physical quality at 2 m would be 255; the full bridge zeroes it.
    assert entry.route.quality_sum == 0


def test_daemon_start_stop_idempotent():
    scenario = Scenario(seed=88)
    node = scenario.add_node("n", position=(0, 0))
    node.start()
    node.start()  # no-op
    assert node.daemon.running
    node.stop()
    node.stop()  # no-op
    assert not node.daemon.running


def test_stopped_daemon_returns_no_discovery_response():
    scenario = Scenario(seed=89)
    node = scenario.add_node("n", position=(0, 0))
    node.start()
    assert node.daemon.handle_discovery_fetch(BLUETOOTH) is not None
    node.stop()
    assert node.daemon.handle_discovery_fetch(BLUETOOTH) is None


def test_unregistered_world_node_fails_sdp_check():
    scenario = Scenario(seed=90)
    node = scenario.add_node("n", position=(0, 0))
    node.start()
    assert scenario.fabric.is_peerhood("n")
    scenario.fabric.unregister("n")
    assert not scenario.fabric.is_peerhood("n")
