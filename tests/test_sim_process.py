"""Unit tests for processes: lifecycle, interrupts, inter-process waits."""

import pytest

from repro.sim import Interrupt, Process, SimulationError, Simulator


def test_process_requires_generator():
    sim = Simulator()

    def not_a_generator():
        return 42

    with pytest.raises(TypeError):
        sim.spawn(not_a_generator)  # forgot to call / not a generator


def test_process_return_value_becomes_event_value():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)
        return 99

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == 99


def test_process_is_alive_until_done():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(5.0)

    proc = sim.spawn(worker(sim))
    assert proc.is_alive
    sim.run(until=2.0)
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_process_exception_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def failing(sim):
        yield sim.timeout(1.0)
        raise ValueError("inner failure")

    def waiter(sim, proc):
        try:
            yield proc
        except ValueError as error:
            caught.append(str(error))

    proc = sim.spawn(failing(sim))
    sim.spawn(waiter(sim, proc))
    sim.run()
    assert caught == ["inner failure"]


def test_unwaited_process_failure_is_recorded():
    sim = Simulator()

    def failing(sim):
        yield sim.timeout(1.0)
        raise ValueError("lost")

    proc = sim.spawn(failing(sim))
    sim.run()
    assert isinstance(proc.exception, ValueError)


def test_process_waits_on_another_process():
    sim = Simulator()
    log = []

    def child(sim):
        yield sim.timeout(2.0)
        log.append(("child-done", sim.now))
        return "child-value"

    def parent(sim):
        value = yield sim.spawn(child(sim))
        log.append(("parent-got", value, sim.now))

    sim.spawn(parent(sim))
    sim.run()
    assert log == [("child-done", 2.0), ("parent-got", "child-value", 2.0)]


def test_interrupt_wakes_blocked_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            log.append("slept-through")
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, sim.now))

    def interrupter(sim, target):
        yield sim.timeout(3.0)
        target.interrupt("wake-up")

    target = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, target))
    sim.run()
    assert log == [("interrupted", "wake-up", 3.0)]


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.0)

    proc = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_self_interrupt_raises():
    sim = Simulator()
    errors = []

    def selfish(sim):
        yield sim.timeout(0.0)
        me = sim.active_process
        try:
            me.interrupt()
        except SimulationError as error:
            errors.append(str(error))

    sim.spawn(selfish(sim))
    sim.run()
    assert len(errors) == 1


def test_interrupted_process_can_rewait_original_event():
    sim = Simulator()
    log = []

    def patient(sim):
        nap = sim.timeout(10.0)
        try:
            yield nap
        except Interrupt:
            log.append(("poked", sim.now))
            yield nap  # resume waiting for the same timeout
        log.append(("woke", sim.now))

    def poker(sim, target):
        yield sim.timeout(4.0)
        target.interrupt()

    target = sim.spawn(patient(sim))
    sim.spawn(poker(sim, target))
    sim.run()
    assert log == [("poked", 4.0), ("woke", 10.0)]


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 42

    proc = sim.spawn(bad(sim))
    sim.run()
    assert isinstance(proc.exception, SimulationError)


def test_yielding_foreign_event_fails_process():
    sim = Simulator()
    other = Simulator()

    def bad(sim, foreign):
        yield foreign

    proc = sim.spawn(bad(sim, other.event()))
    sim.run()
    assert isinstance(proc.exception, SimulationError)


def test_process_repr_contains_name():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)

    proc = sim.spawn(worker(sim), name="inquiry-loop")
    assert "inquiry-loop" in repr(proc)
    sim.run()


def test_process_bootstrap_runs_at_spawn_time_not_creation_order():
    """Two processes spawned at t=0 both start at t=0, in spawn order."""
    sim = Simulator()
    starts = []

    def worker(sim, tag):
        starts.append((tag, sim.now))
        yield sim.timeout(1.0)

    sim.spawn(worker(sim, "a"))
    sim.spawn(worker(sim, "b"))
    sim.run()
    assert starts == [("a", 0.0), ("b", 0.0)]


def test_interrupt_delivered_in_fifo_order_with_timeouts():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(5.0)
            log.append("timeout-won")
        except Interrupt:
            log.append("interrupt-won")

    def interrupter(sim, target):
        yield sim.timeout(5.0)
        if target.is_alive:
            target.interrupt()

    target = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, target))
    sim.run()
    # The sleeper's timeout is scheduled before the interrupter's, so the
    # timeout wins deterministically.
    assert log == ["timeout-won"]


def test_process_is_event_usable_in_conditions():
    sim = Simulator()
    results = []

    def quick(sim):
        yield sim.timeout(1.0)
        return "quick"

    def slow(sim):
        yield sim.timeout(9.0)
        return "slow"

    def watcher(sim, a, b):
        value = yield sim.any_of([a, b])
        results.append(list(value.values()))

    a: Process = sim.spawn(quick(sim))
    b: Process = sim.spawn(slow(sim))
    sim.spawn(watcher(sim, a, b))
    sim.run()
    assert results == [["quick"]]
