"""The fabric: simulation-wide rendezvous between PeerHood nodes.

The real stack relies on the OS for two things the simulator must provide
explicitly: *finding the peer's daemon* (Bluetooth SDP answers "is this a
PeerHood device?", §2.3) and *delivering an incoming RFCOMM/TCP connection
to the peer's listening engine*.  The fabric is that substrate: a registry
of running nodes plus the physical :class:`~repro.radio.channel.
LinkEstablisher`, with traffic metering on every frame.
"""

from __future__ import annotations

import typing

from repro.core.errors import TargetNotAvailableError
from repro.metrics.counters import TrafficMeter
from repro.metrics.trace import EventTrace
from repro.radio.channel import Link, LinkEstablisher
from repro.radio.technologies import Technology
from repro.radio.world import World

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import PeerHoodNode
    from repro.core.protocol import Frame


class Fabric:
    """Registry of PeerHood nodes + metered physical connectivity."""

    def __init__(self, world: World):
        self.world = world
        self.sim = world.sim
        self.establisher = LinkEstablisher(world)
        self.meter = TrafficMeter()
        self.trace = EventTrace()
        self._nodes: dict[str, "PeerHoodNode"] = {}
        self._by_address: dict[str, "PeerHoodNode"] = {}

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def register(self, node: "PeerHoodNode") -> None:
        """Add a node; one per world node id (and per device address)."""
        if node.node_id in self._nodes:
            raise ValueError(f"node already registered: {node.node_id!r}")
        if node.address in self._by_address:
            raise ValueError(
                f"address already registered: {node.address!r}")
        self._nodes[node.node_id] = node
        self._by_address[node.address] = node

    def unregister(self, node_id: str) -> None:
        """Remove a node (power-off)."""
        node = self._nodes.pop(node_id, None)
        if node is not None:
            self._by_address.pop(node.address, None)

    def node(self, node_id: str) -> "PeerHoodNode | None":
        """Look up a registered node."""
        return self._nodes.get(node_id)

    def nodes(self) -> list["PeerHoodNode"]:
        """All registered nodes, sorted by id."""
        return [self._nodes[node_id] for node_id in sorted(self._nodes)]

    def node_by_address(self, address: str) -> "PeerHoodNode | None":
        """Resolve a device address back to the node, if registered.

        O(1) via the address index (the seed scanned all nodes; discovery
        resolves addresses for every fetched neighbourhood entry, so this
        is on the per-round hot path at large N).
        """
        return self._by_address.get(address)

    def is_peerhood(self, node_id: str) -> bool:
        """The SDP check: does the node run a PeerHood daemon? (§2.3)."""
        node = self._nodes.get(node_id)
        return node is not None and node.daemon.running

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def connect(self, initiator_id: str, target_id: str, tech: Technology,
                retries: int = 0) -> typing.Generator:
        """Process generator: physical link + engine accept, or raise.

        Raises the radio errors (:class:`ConnectFault`, :class:`OutOfRange`)
        on establishment failure and :class:`TargetNotAvailableError` when
        no listening engine answers at the target.
        """
        link = yield from self.establisher.connect(
            initiator_id, target_id, tech, retries=retries)
        target = self._nodes.get(target_id)
        if target is None or not target.daemon.running:
            link.close()
            raise TargetNotAvailableError(
                f"no PeerHood daemon listening on {target_id!r}")
        target.library.engine.accept(link)
        self.trace.record(self.sim.now, initiator_id, "link-established",
                          peer=target_id, tech=tech.name,
                          link_id=link.link_id)
        return link

    def transmit(self, link: Link, sender_id: str, frame: "Frame",
                 category: str) -> float:
        """Send one protocol frame on a link, metering the traffic."""
        size = frame.wire_size()
        self.meter.count(sender_id, category, size)
        return link.send(sender_id, frame, size)
