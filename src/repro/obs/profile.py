"""Per-subsystem kernel-event and wall-clock attribution.

The kernel names every event it schedules ("bus#12:link-up",
"dtn-contact#3", "timeout(5.0)", "call-at", ...).  When a
:class:`SubsystemProfiler` is attached to ``Simulator.profiler``,
``step()`` wraps each event's callbacks in :meth:`measure`, which buckets
the work under a *subsystem label* — the event name stripped of its
per-instance suffixes (everything after the first ``#``, ``:`` or
``(``).

Two outputs with different determinism grades:

* **event counts** per subsystem are a pure function of the simulated
  schedule — deterministic per seed, safe to put in recorded telemetry;
* **wall seconds** per subsystem are machine noise — they ride the
  experiments runner's timings side channel (``profile_<label>_wall_s``)
  and must never enter recorded output, preserving the byte-identical
  at-any-worker-count contract.
"""

from __future__ import annotations

import contextlib
import time
import typing


def subsystem_label(event_name: str) -> str:
    """Collapse a per-instance event name to its subsystem bucket."""
    if not event_name:
        return "anonymous"
    for separator in ("#", ":", "("):
        head, _, _ = event_name.partition(separator)
        event_name = head
    return event_name or "anonymous"


class SubsystemProfiler:
    """Accumulates per-subsystem event counts and wall-clock."""

    def __init__(self) -> None:
        self.event_counts: dict[str, int] = {}
        self.wall_seconds: dict[str, float] = {}

    @contextlib.contextmanager
    def measure(self, event_name: str,
                observer: bool = False) -> typing.Iterator[None]:
        """Attribute the work done inside the block to the event's bucket.

        Observer (telemetry) events are bucketed under ``"telemetry"``
        regardless of name, so the recorder's own overhead is visible —
        and visibly separate from the workload's subsystems.
        """
        label = "telemetry" if observer else subsystem_label(event_name)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.event_counts[label] = self.event_counts.get(label, 0) + 1
            self.wall_seconds[label] = (
                self.wall_seconds.get(label, 0.0) + elapsed)

    def count_rows(self) -> dict[str, int]:
        """Deterministic per-subsystem event counts (sorted by label)."""
        return {label: self.event_counts[label]
                for label in sorted(self.event_counts)}

    def timing_entries(self, prefix: str = "profile_") -> dict[str, float]:
        """Wall-clock attribution for the timings side channel."""
        return {f"{prefix}{label}_wall_s": self.wall_seconds[label]
                for label in sorted(self.wall_seconds)}
