"""Unit tests for Resource / Lock / Store primitives."""

import pytest

from repro.sim import Lock, Resource, SimulationError, Simulator, Store


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    pool = Resource(sim, capacity=2)
    a = pool.acquire()
    b = pool.acquire()
    assert a.triggered and b.triggered
    assert pool.in_use == 2
    assert pool.available == 0


def test_resource_queues_beyond_capacity():
    sim = Simulator()
    pool = Resource(sim, capacity=1)
    pool.acquire()
    waiting = pool.acquire()
    assert not waiting.triggered
    assert pool.queue_length == 1
    pool.release()
    assert waiting.triggered
    assert pool.queue_length == 0


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    pool = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        pool.release()


def test_resource_invalid_capacity_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_fifo_grant_order():
    sim = Simulator()
    pool = Resource(sim, capacity=1)
    grants = []

    def user(sim, pool, tag, hold):
        yield pool.acquire()
        grants.append((tag, sim.now))
        yield sim.timeout(hold)
        pool.release()

    sim.spawn(user(sim, pool, "a", 2.0))
    sim.spawn(user(sim, pool, "b", 2.0))
    sim.spawn(user(sim, pool, "c", 2.0))
    sim.run()
    assert grants == [("a", 0.0), ("b", 2.0), ("c", 4.0)]


def test_resource_cancel_pending_request():
    sim = Simulator()
    pool = Resource(sim, capacity=1)
    pool.acquire()
    pending = pool.acquire()
    assert pool.cancel(pending)
    assert not pool.cancel(pending)  # already removed
    pool.release()
    assert pool.available == 1  # nobody waiting, slot freed


def test_lock_reports_locked_state():
    sim = Simulator()
    lock = Lock(sim)
    assert not lock.locked
    lock.acquire()
    assert lock.locked
    lock.release()
    assert not lock.locked


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    request = store.get()
    assert request.triggered
    sim.run()
    assert request.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer(sim, store):
        item = yield store.get()
        received.append((item, sim.now))

    def producer(sim, store):
        yield sim.timeout(3.0)
        store.put("late-item")

    sim.spawn(consumer(sim, store))
    sim.spawn(producer(sim, store))
    sim.run()
    assert received == [("late-item", 3.0)]


def test_store_fifo_ordering():
    sim = Simulator()
    store = Store(sim)
    for item in (1, 2, 3):
        store.put(item)
    out = []

    def consumer(sim, store):
        for _ in range(3):
            item = yield store.get()
            out.append(item)

    sim.spawn(consumer(sim, store))
    sim.run()
    assert out == [1, 2, 3]


def test_store_multiple_getters_served_fifo():
    sim = Simulator()
    store = Store(sim)
    out = []

    def consumer(sim, store, tag):
        item = yield store.get()
        out.append((tag, item))

    sim.spawn(consumer(sim, store, "first"))
    sim.spawn(consumer(sim, store, "second"))
    sim.run(until=1.0)
    assert store.pending_getters == 2
    store.put("a")
    store.put("b")
    sim.run()
    assert out == [("first", "a"), ("second", "b")]


def test_store_get_nowait():
    sim = Simulator()
    store = Store(sim)
    store.put(7)
    assert store.get_nowait() == 7
    with pytest.raises(SimulationError):
        store.get_nowait()


def test_store_len_and_clear():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    store.clear()
    assert len(store) == 0


def test_store_cancel_pending_get():
    sim = Simulator()
    store = Store(sim)
    request = store.get()
    assert store.cancel(request)
    store.put("orphan")
    assert len(store) == 1  # cancelled getter did not consume it
