"""Experiment orchestration: declarative sweeps over the simulation.

The paper's evaluation is a *campaign* — discovery latency, handover
success and routing overhead measured across topologies, radio mixes and
node counts.  This package turns such campaigns into data:

* :mod:`~repro.experiments.registry` — scenario names → factories with
  typed parameter schemas;
* :mod:`~repro.experiments.spec` — :class:`ExperimentSpec`, a parameter
  grid (scenario × params × repeats) with per-run seeds derived from
  ``(master_seed, run label)``, independent of execution order;
* :mod:`~repro.experiments.workloads` — what a single run measures
  (discovery convergence, handover decay, scale rounds, …);
* :mod:`~repro.experiments.dispatch` — *where* cells execute:
  :class:`DispatchBackend` (inline serial, local process pool; the
  seam for SSH/cluster fan-out);
* :mod:`~repro.experiments.runner` — one-shot execution through a
  backend, byte-identical JSONL output at any worker count;
* :mod:`~repro.experiments.cache` — the content-addressed run cache
  (cell identity → finished record, cross-campaign);
* :mod:`~repro.experiments.campaign` — journaled, memoized, resumable
  execution (``run_campaign``: the durable superset of ``run_spec``);
* :mod:`~repro.experiments.report` — fold repeats into
  :class:`~repro.metrics.stats.Summary` rows, render tables and CSV;
* :mod:`~repro.experiments.specs` — the bundled campaigns
  (``demo_sweep`` and the benchmark-backing sweeps);
* :mod:`~repro.experiments.cli` — ``python -m repro.experiments
  list|run|report``.

Dataflow: spec → expand (grid of seeded run points) → campaign
(journal/cache lookup per cell) → dispatch backend (workload per
pending cell) → journal commit → JSONL sink → aggregate → CSV/tables.
"""

from repro.experiments.cache import CampaignCache, cache_key, point_key
from repro.experiments.campaign import (
    CampaignError,
    CampaignResult,
    CampaignStats,
    Journal,
    run_campaign,
)
from repro.experiments.dispatch import (
    DispatchBackend,
    ProcessPoolBackend,
    SerialBackend,
    backend_names,
    make_backend,
)
from repro.experiments.registry import (
    Param,
    ScenarioEntry,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.experiments.report import (
    AggregateRow,
    aggregate,
    aggregate_csv,
    aggregate_table,
    write_csv,
)
from repro.experiments.runner import (
    RunResult,
    execute_point,
    execute_point_outcome,
    read_jsonl,
    run_spec,
    write_jsonl,
)
from repro.experiments.spec import ExperimentSpec, RunPoint, run_label
from repro.experiments.specs import get_spec, register_spec, spec_names
from repro.experiments.workloads import (
    get_workload,
    register_workload,
    workload_fingerprint,
    workload_names,
)

__all__ = [
    "AggregateRow",
    "CampaignCache",
    "CampaignError",
    "CampaignResult",
    "CampaignStats",
    "DispatchBackend",
    "ExperimentSpec",
    "Journal",
    "Param",
    "ProcessPoolBackend",
    "RunPoint",
    "RunResult",
    "ScenarioEntry",
    "SerialBackend",
    "aggregate",
    "aggregate_csv",
    "aggregate_table",
    "backend_names",
    "build_scenario",
    "cache_key",
    "execute_point",
    "execute_point_outcome",
    "get_scenario",
    "get_spec",
    "get_workload",
    "make_backend",
    "point_key",
    "read_jsonl",
    "register_scenario",
    "register_spec",
    "register_workload",
    "run_campaign",
    "run_label",
    "run_spec",
    "scenario_names",
    "spec_names",
    "workload_fingerprint",
    "workload_names",
    "write_csv",
    "write_jsonl",
]
