"""Data buffering: the §6.1 reliability extension and the shared buffer.

"So far there exists the possibility to lose data due to Write function
not being aware of the connection loss.  Additionally, the implementation
of Data Transferring Acknowledge is too costly due to the small size of
packet.  Thus an efficient Data Buffering is necessary to guarantee the
data integrity."

Two layers live here:

* :class:`BoundedBuffer` — the *shared* byte-bounded, TTL-aware buffer
  with pluggable eviction policies.  It is the single buffering
  implementation of the repo: the PeerHood service plane uses it as the
  :class:`ReliableChannel` retransmission window (unbounded, no TTL),
  and the DTN data plane (:mod:`repro.dtn`) builds its per-node
  :class:`~repro.dtn.store.MessageStore` on it (capacity- and
  TTL-evicting).  Keeping one implementation means one set of eviction
  semantics, counters and tests for both planes.
* :class:`ReliableChannel` — the §6.1 trade-off: application payloads
  carry sequence numbers and are buffered until *cumulatively*
  acknowledged — one ack per ``ack_every`` payloads instead of per
  packet (the paper's cost concern) — and everything unacknowledged is
  retransmitted when a handover substitutes the transport (the
  ChangeConnection callback) or when the periodic resend timer finds the
  transport alive again.  The receiver delivers in order and drops the
  duplicates retransmission creates.

Both endpoints wrap their own side::

    channel = ReliableChannel(connection)
    channel.send("payload", 64)
    payload = yield from channel.receive()
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.connection import PeerHoodConnection
from repro.core.errors import ConnectionClosedError
from repro.sim.resources import Store

# ----------------------------------------------------------------------
# the shared bounded buffer
# ----------------------------------------------------------------------
#: Eviction policies of :class:`BoundedBuffer`.  ``EVICT_OLDEST`` drops
#: the longest-stored entry first (FIFO — the DTN default and what the
#: reliable channel's cumulative trim approximates); ``EVICT_LARGEST``
#: frees the most bytes per drop; ``EVICT_SOONEST_EXPIRY`` sacrifices the
#: entry that would die of TTL first anyway.
EVICT_OLDEST = "oldest"
EVICT_LARGEST = "largest"
EVICT_SOONEST_EXPIRY = "soonest-expiry"

EVICTION_POLICIES = (EVICT_OLDEST, EVICT_LARGEST, EVICT_SOONEST_EXPIRY)


@dataclasses.dataclass(frozen=True)
class BufferEntry:
    """One buffered item with the facts eviction decisions need.

    ``size_bytes`` is the declared payload size; ``stored_at`` and
    ``expires_at`` are sim-seconds (``expires_at`` ``None`` = never).
    """

    key: object
    item: object
    size_bytes: int
    stored_at: float
    expires_at: float | None = None

    def expired(self, now: float) -> bool:
        """True once ``now`` has passed the entry's expiry instant."""
        return self.expires_at is not None and now >= self.expires_at


class BoundedBuffer:
    """An ordered, keyed, byte-bounded buffer with eviction policies.

    Entries keep insertion order (the retransmission window iterates in
    sequence order; DTN stores offer oldest bundles first).  All
    operations are O(1) amortised except eviction sweeps and the
    ``EVICT_LARGEST`` / ``EVICT_SOONEST_EXPIRY`` victim scans, which are
    O(n) in the number of buffered entries.  ``capacity_bytes=None``
    means unbounded (the reliable-channel window).  The buffer never
    advances a clock of its own: callers pass ``now`` explicitly, so
    expiry needs no timer wakeups (the DTN plane sweeps lazily at
    contact events — zero polling).
    """

    def __init__(self, capacity_bytes: int | None = None,
                 policy: str = EVICT_OLDEST):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(
                f"capacity must be positive or None: {capacity_bytes}")
        if policy not in EVICTION_POLICIES:
            raise ValueError(f"unknown eviction policy {policy!r}; "
                             f"choose from {EVICTION_POLICIES}")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self._entries: dict[object, BufferEntry] = {}
        self.used_bytes = 0
        #: Entries dropped to make room (never incremented by remove()).
        self.evicted = 0
        #: Entries dropped because their TTL ran out.
        self.expired = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def get(self, key: object) -> BufferEntry | None:
        """The entry stored under ``key``, or None.  O(1)."""
        return self._entries.get(key)

    def keys(self) -> list:
        """Keys in insertion order."""
        return list(self._entries)

    def entries(self) -> list[BufferEntry]:
        """Entries in insertion order."""
        return list(self._entries.values())

    # ------------------------------------------------------------------
    def add(self, key: object, item: object, size_bytes: int,
            now: float, ttl_s: float | None = None,
            ) -> list[BufferEntry]:
        """Store ``item`` under ``key``; returns the entries evicted.

        Storing an already-present key replaces the entry's item, size
        and expiry *in place*: it keeps its queue position and its
        original ``stored_at``, so updating a carried bundle (the
        spray-and-wait token bookkeeping) never rejuvenates it under
        ``EVICT_OLDEST`` — custody age is when the key first entered,
        not when it was last touched.  A replacement is not an
        eviction.  When the buffer is over capacity after the insert,
        victims are chosen by the policy *excluding the new entry* —
        unless even an empty buffer could not hold it, in which case the
        new entry itself is rejected (returned in the evicted list and
        not stored).  ``ttl_s`` ``None`` means no expiry.
        """
        if size_bytes < 0:
            raise ValueError(f"negative size: {size_bytes}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl must be positive or None: {ttl_s}")
        expires = None if ttl_s is None else now + ttl_s
        old = self._entries.get(key)
        stored_at = now if old is None else old.stored_at
        entry = BufferEntry(key, item, size_bytes, stored_at, expires)
        if (self.capacity_bytes is not None
                and size_bytes > self.capacity_bytes):
            self.evicted += 1
            return [entry]   # can never fit: rejected outright
        if old is not None:
            self.used_bytes -= old.size_bytes
        self._entries[key] = entry   # existing keys keep dict position
        self.used_bytes += size_bytes
        evicted: list[BufferEntry] = []
        while (self.capacity_bytes is not None
               and self.used_bytes > self.capacity_bytes):
            victim = self._victim(exclude=key)
            if victim is None:   # only the new entry left: fits by check
                break
            self._drop(victim)
            self.evicted += 1
            evicted.append(victim)
        return evicted

    def _victim(self, exclude: object) -> BufferEntry | None:
        """The policy's next eviction victim, never the excluded key.

        One pass over the entries (insertion-rank tie-breaks fall out
        of the enumeration, keeping the scan O(n)).
        """
        candidates = ((i, e) for i, (k, e) in
                      enumerate(self._entries.items()) if k != exclude)
        if self.policy == EVICT_OLDEST:
            pair = next(candidates, None)   # dict preserves insertion
            return None if pair is None else pair[1]
        best: BufferEntry | None = None
        best_rank: tuple | None = None
        for index, entry in candidates:
            if self.policy == EVICT_LARGEST:
                # Biggest wins; among equals the oldest (lowest index).
                rank = (-entry.size_bytes, index)
            else:
                # EVICT_SOONEST_EXPIRY: immortal entries lose to any
                # expiring one only when nothing expires; among
                # expiring, soonest dies first.
                rank = _expiry_rank(entry)
            if best_rank is None or rank < best_rank:
                best, best_rank = entry, rank
        return best

    def _drop(self, entry: BufferEntry) -> None:
        del self._entries[entry.key]
        self.used_bytes -= entry.size_bytes

    def remove(self, key: object) -> BufferEntry | None:
        """Remove and return the entry under ``key`` (None if absent).

        A deliberate removal — acked, delivered, superseded — so it
        counts in neither ``evicted`` nor ``expired``.  O(1).
        """
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.used_bytes -= entry.size_bytes
        return entry

    def drop_matching(self, predicate: typing.Callable[[BufferEntry], bool]
                      ) -> list[BufferEntry]:
        """Remove every entry the predicate accepts; returns them in order.

        The reliable channel's cumulative ack trims the window with
        this.  Deliberate removals: not counted as evictions.  O(n).
        """
        victims = [e for e in self._entries.values() if predicate(e)]
        for victim in victims:
            self._drop(victim)
        return victims

    def drop_expired(self, now: float) -> list[BufferEntry]:
        """Remove every entry whose TTL has passed at ``now``.  O(n).

        Returns the dropped entries in insertion order and counts them
        in ``expired``.  Callers sweep lazily (at contact events, sends
        and queries), so expiry costs no timer wakeups.
        """
        victims = [e for e in self._entries.values() if e.expired(now)]
        for victim in victims:
            self._drop(victim)
            self.expired += 1
        return victims


def _expiry_rank(entry: BufferEntry) -> tuple:
    """Sort key for EVICT_SOONEST_EXPIRY: expiring before immortal."""
    if entry.expires_at is None:
        return (1, entry.stored_at)
    return (0, entry.expires_at)

#: Cumulative-ack frequency: one ack per this many delivered payloads.
DEFAULT_ACK_EVERY = 4

#: Period of the retransmission timer, seconds.
DEFAULT_RESEND_INTERVAL_S = 5.0

#: Envelope overhead charged to the transmit-time model, bytes.
_ENVELOPE_OVERHEAD = 8
_ACK_SIZE = 12


@dataclasses.dataclass(frozen=True)
class _Sequenced:
    """A buffered application payload with its sequence number."""

    sequence: int
    payload: object
    declared_size: int


@dataclasses.dataclass(frozen=True)
class _CumulativeAck:
    """Receiver has everything up to and including ``sequence``."""

    sequence: int


class ReliableChannel:
    """One endpoint of a buffered, in-order, at-least-once channel."""

    def __init__(self, connection: PeerHoodConnection,
                 ack_every: int = DEFAULT_ACK_EVERY,
                 resend_interval_s: float = DEFAULT_RESEND_INTERVAL_S):
        if ack_every < 1:
            raise ValueError(f"ack_every must be >= 1: {ack_every}")
        if resend_interval_s <= 0:
            raise ValueError("resend interval must be positive")
        self.connection = connection
        self.sim = connection.sim
        self.ack_every = ack_every
        self.resend_interval_s = resend_interval_s
        # Sender state: the retransmission window is the shared
        # BoundedBuffer, unbounded and TTL-free (the §6.1 guarantee is
        # "never drop"), keyed by sequence number so the cumulative ack
        # trims it with one drop_matching pass.
        self._next_sequence = 1
        self._window = BoundedBuffer()
        self.retransmissions = 0
        # Receiver state.
        self._expected = 1
        self._out_of_order: dict[int, _Sequenced] = {}
        self._delivered_since_ack = 0
        self._ready: Store = Store(
            self.sim, f"reliable-rx:{connection.connection_id}")
        self._rx_closed = object()
        self.duplicates_dropped = 0
        connection.on_connection_changed(self._on_transport_changed)
        self._resend_process = self.sim.spawn(
            self._resend_loop(),
            name=f"reliable-resend:{connection.local_node_id}:"
                 f"{connection.connection_id}")
        # The channel owns the raw read side: acks must be processed even
        # while the application is not receiving (the sender-only client
        # case), so a dedicated pump drains the connection.
        self._reader_process = self.sim.spawn(
            self._reader_loop(),
            name=f"reliable-rx:{connection.local_node_id}:"
                 f"{connection.connection_id}")

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    @property
    def unacknowledged(self) -> int:
        """Payloads buffered awaiting a cumulative ack."""
        return len(self._window)

    def send(self, payload: object, size_bytes: int) -> int:
        """Buffer and transmit one payload; returns its sequence number."""
        envelope = _Sequenced(sequence=self._next_sequence, payload=payload,
                              declared_size=size_bytes)
        self._next_sequence += 1
        self._window.add(envelope.sequence, envelope, size_bytes,
                         now=self.sim.now)
        self.connection.write(envelope,
                              size_bytes + _ENVELOPE_OVERHEAD)
        return envelope.sequence

    def _retransmit_unacked(self) -> None:
        if not self.connection.is_open:
            return
        for entry in self._window.entries():
            envelope = entry.item
            self.retransmissions += 1
            self.connection.write(
                envelope, envelope.declared_size + _ENVELOPE_OVERHEAD)

    def _on_transport_changed(self, _connection: PeerHoodConnection) -> None:
        # A handover replaced the link: anything in flight on the old
        # chain may be gone; resend the whole window (§6.1's buffering).
        self._retransmit_unacked()

    def _resend_loop(self) -> typing.Generator:
        while self.connection.is_open:
            yield self.sim.timeout(self.resend_interval_s)
            if not self.connection.is_open:
                return
            if len(self._window) and self.connection.transport_alive():
                self._retransmit_unacked()

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _reader_loop(self) -> typing.Generator:
        while True:
            try:
                raw = yield from self.connection.read()
            except ConnectionClosedError:
                self._ready.put(self._rx_closed)
                return
            self._handle_raw(raw)

    def receive(self) -> typing.Generator:
        """Process generator: next in-order payload.

        Raises :class:`ConnectionClosedError` once the underlying
        connection is closed and nothing deliverable remains.
        """
        item = yield self._ready.get()
        if item is self._rx_closed:
            self._ready.put(self._rx_closed)  # wake later receivers too
            raise ConnectionClosedError(
                f"reliable channel over closed connection "
                f"#{self.connection.connection_id}")
        return item

    def _handle_raw(self, raw: object) -> None:
        if isinstance(raw, _CumulativeAck):
            self._window.drop_matching(
                lambda entry: entry.key <= raw.sequence)
            return
        if not isinstance(raw, _Sequenced):
            # Unsequenced traffic from a non-buffered peer: pass through.
            self._ready.put(raw)
            return
        if raw.sequence < self._expected:
            self.duplicates_dropped += 1
            self._maybe_ack(force=True)  # re-ack so the sender trims
            return
        if raw.sequence > self._expected:
            self._out_of_order[raw.sequence] = raw
            return
        self._deliver(raw)
        while self._expected in self._out_of_order:
            self._deliver(self._out_of_order.pop(self._expected))

    def _deliver(self, envelope: _Sequenced) -> None:
        self._ready.put(envelope.payload)
        self._expected += 1
        self._delivered_since_ack += 1
        self._maybe_ack(force=False)

    def _maybe_ack(self, force: bool) -> None:
        if not force and self._delivered_since_ack < self.ack_every:
            return
        self._delivered_since_ack = 0
        if not self.connection.is_open:
            return
        self.connection.write(_CumulativeAck(self._expected - 1),
                              _ACK_SIZE)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close(self, reason: str = "") -> None:
        """Flush a final ack and close the underlying connection."""
        if self.connection.is_open:
            self._maybe_ack(force=True)
            self.connection.close(reason)

    def __repr__(self) -> str:
        return (f"<ReliableChannel conn#{self.connection.connection_id} "
                f"unacked={self.unacknowledged} "
                f"expected={self._expected}>")
