"""The fault-injection plane: suspend/resume, radio faults, byzantine
beaconers, jammers, and their wiring into the world, bus and DTN planes.

The differential contract ("zero rates install the literal fault-free
code path", "same seed ⇒ same schedule at any worker count") is pinned
by ``tests/test_faults_property.py`` and
``benchmarks/bench_fault_tolerance.py``; this file covers the plane's
point semantics.
"""

import pytest

from repro.dtn import BandwidthDtnOverlay, DtnOverlay, make_router
from repro.faults import (
    BYZANTINE,
    CRASH,
    DEAF,
    DEAF_END,
    MUTE,
    MUTE_END,
    REBOOT,
    FaultEvent,
    FaultPlane,
    install_scenario_faults,
)
from repro.mobility import LinearMovement, StaticPosition
from repro.radio import BLUETOOTH, World
from repro.radio.bus import LINK_DOWN, LINK_UP
from repro.scenarios import Scenario, commuter_corridor, hostile_corridor
from repro.sim import Simulator


def make_world(seed=1):
    sim = Simulator(seed=seed)
    return sim, World(sim)


def static_pair(world, gap_m=5.0):
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(gap_m, 0), [BLUETOOTH])


# ----------------------------------------------------------------------
# world suspension semantics
# ----------------------------------------------------------------------
def test_suspended_node_is_invisible_to_every_query():
    sim, world = make_world()
    static_pair(world)
    plane = FaultPlane(world)
    plane.crash_now("b")
    assert world.is_suspended("b")
    assert world.has_node("b")                   # dark, not gone
    assert not world.in_range("a", "b", BLUETOOTH)
    assert world.in_range_raw("a", "b", BLUETOOTH)   # geometry intact
    assert world.neighbors("a", BLUETOOTH) == []
    assert world.neighbors_brute_force("a", BLUETOOTH) == []
    assert world.link_quality_at("a", "b", BLUETOOTH, sim.now) == 0
    assert not world.is_discoverable("b", BLUETOOTH)
    plane.reboot_now("b")
    assert not world.is_suspended("b")
    assert world.in_range("a", "b", BLUETOOTH)
    assert world.neighbors("a", BLUETOOTH) == ["b"]
    assert plane.counters.crashes == 1
    assert plane.counters.reboots == 1


def test_crash_and_reboot_fire_synthetic_link_events():
    sim, world = make_world()
    static_pair(world)
    plane = FaultPlane(world)
    events = []
    world.bus.watch_link("a", "b", BLUETOOTH, callback=events.append)
    plane.arm([FaultEvent(5.0, CRASH, "b"), FaultEvent(12.0, REBOOT, "b")])
    sim.run(until=20.0)
    # A static in-range pair would park its watch forever; the outage
    # is the only connectivity the pair ever sees.
    assert [(e.kind, e.time) for e in events] == [
        (LINK_DOWN, 5.0), (LINK_UP, 12.0)]


def test_crash_guards_unknown_and_double_crash():
    sim, world = make_world()
    static_pair(world)
    plane = FaultPlane(world)
    plane.crash_now("ghost")                     # unknown: no-op
    plane.crash_now("b")
    plane.crash_now("b")                         # already dark: no-op
    plane.reboot_now("ghost")                    # never crashed: no-op
    assert plane.counters.crashes == 1
    assert plane.counters.reboots == 0


def test_remove_node_while_suspended_leaves_no_orphans():
    """The PR 6 bugfix: removal mid-outage must clear suspension state,
    cancel the node's held watches and let the pending reboot fire as a
    guarded no-op — no resurrection, no orphaned grid or bus entries."""
    sim, world = make_world()
    static_pair(world)
    plane = FaultPlane(world)
    events = []
    world.bus.watch_link("a", "b", BLUETOOTH, callback=events.append)
    plane.arm([FaultEvent(5.0, CRASH, "b"), FaultEvent(15.0, REBOOT, "b")])
    sim.run(until=8.0)
    assert plane.is_crashed("b")
    world.remove_node("b")
    assert not plane.is_crashed("b")             # plane was notified
    assert not world.is_suspended("b")
    sim.run(until=30.0)                          # reboot event drains
    assert plane.counters.reboots == 0           # nothing resurrected
    assert [e.kind for e in events] == [LINK_DOWN]
    assert world.bus.active_watches() == 0
    assert world.node_ids() == ["a"]


def test_stacking_two_planes_is_refused():
    sim, world = make_world()
    FaultPlane(world)
    with pytest.raises(ValueError, match="already installed"):
        FaultPlane(world)


# ----------------------------------------------------------------------
# radio faults, byzantine beaconers, jammers
# ----------------------------------------------------------------------
def test_deaf_and_mute_gate_one_direction_each():
    sim, world = make_world()
    static_pair(world)
    plane = FaultPlane(world)
    plane.arm([FaultEvent(1.0, DEAF, "b"), FaultEvent(4.0, DEAF_END, "b"),
               FaultEvent(6.0, MUTE, "b"), FaultEvent(9.0, MUTE_END, "b")])
    sim.run(until=2.0)
    assert not plane.can_transmit("a", "b")      # deaf: won't receive
    assert plane.can_transmit("b", "a")          # …but still sends
    sim.run(until=5.0)
    assert plane.can_transmit("a", "b")          # interval over
    sim.run(until=7.0)
    assert plane.can_transmit("a", "b")          # mute: still receives
    assert not plane.can_transmit("b", "a")      # …but won't send
    sim.run(until=10.0)
    assert plane.can_transmit("b", "a")
    # Deaf/mute suppressions are uncounted; only jamming is.
    assert plane.counters.jammed_deliveries == 0


def test_byzantine_beaconer_advertises_the_empty_vector():
    sim, world = make_world()
    static_pair(world)
    plane = FaultPlane(world)
    plane.arm([FaultEvent(0.0, BYZANTINE, "b")])  # applies immediately
    carried = frozenset({"x#1", "y#2"})
    assert plane.advertised_vector("b", carried) == frozenset()
    assert plane.advertised_vector("a", carried) == carried
    assert plane.advertised_vector("b", frozenset()) == frozenset()
    assert plane.counters.byzantine_beacons == 1  # empty lie uncounted


def test_jammer_disk_suppresses_and_counts():
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(5, 0), [BLUETOOTH])
    world.add_node("c", StaticPosition(50, 0), [BLUETOOTH])
    world.add_node("d", StaticPosition(55, 0), [BLUETOOTH])
    plane = FaultPlane(world)
    plane.add_jammer(StaticPosition(0, 0), 8.0)
    assert plane.jammed("a")
    assert plane.jammed("b")
    assert not plane.jammed("c")
    assert not plane.can_transmit("a", "b")      # both inside the disk
    assert not plane.can_transmit("b", "c")      # sender inside
    assert plane.can_transmit("c", "d")          # clear of the disk
    assert plane.counters.jammed_deliveries == 2
    with pytest.raises(ValueError, match="radius"):
        plane.add_jammer(StaticPosition(0, 0), 0.0)


# ----------------------------------------------------------------------
# scenario installation surface
# ----------------------------------------------------------------------
def test_zero_rates_install_no_plane_at_all():
    assert commuter_corridor(seed=3).world.faults is None
    scenario = Scenario(seed=3)
    assert install_scenario_faults(scenario) is None
    assert scenario.world.faults is None


def test_install_rejects_out_of_range_rates():
    with pytest.raises(ValueError, match="crash_rate"):
        install_scenario_faults(Scenario(seed=1), crash_rate=1.5)
    with pytest.raises(ValueError, match="jammer_count"):
        install_scenario_faults(Scenario(seed=1), jammer_count=-1)


def test_terminals_are_never_faulted():
    scenario = hostile_corridor(crash_rate=1.0, radio_fault_rate=1.0,
                                byzantine_rate=1.0, seed=5)
    plane = scenario.world.faults
    faulted = {event.node for event in plane.schedule
               if event.kind != "jammer"}
    assert faulted == {f"m{i}" for i in range(10)}
    assert "home" not in faulted and "work" not in faulted


def test_hostile_corridor_is_the_commuter_corridor_plus_faults():
    hostile = hostile_corridor(seed=4)
    plain = commuter_corridor(
        crash_rate=0.2, crash_downtime_s=120.0, radio_fault_rate=0.1,
        byzantine_rate=0.1, jammer_count=1, fault_window_s=360.0, seed=4)
    assert hostile.world.faults.schedule == plain.world.faults.schedule
    assert sorted(hostile.nodes) == sorted(plain.nodes)


# ----------------------------------------------------------------------
# DTN wiring
# ----------------------------------------------------------------------
def _mule_scenario(seed=5):
    """src — 60 m gap — dst, with a mule driving from src to dst."""
    scenario = Scenario(seed=seed)
    scenario.add_node("src", position=(0, 0), mobility_class="static")
    scenario.add_node("dst", position=(60, 0), mobility_class="static")
    scenario.add_node("mule",
                      mobility=LinearMovement((0.0, 5.0), (1.0, 0.0)))
    return scenario


def test_send_from_a_crashed_source_is_refused():
    scenario = _mule_scenario()
    fault_plane = FaultPlane(scenario.world)
    plane = DtnOverlay(scenario.world, make_router("epidemic"))
    fault_plane.crash_now("src")
    with pytest.raises(ValueError, match="crashed"):
        plane.send("src", "dst")
    # A crashed *destination* is fine — the bundle waits out the outage.
    fault_plane.crash_now("dst")
    fault_plane.reboot_now("src")
    plane.send("src", "dst")


def test_crash_cancels_in_flight_transfer_as_churn():
    """A transfer streaming toward a node that dies mid-contact must be
    cancelled and counted — not credited as a truncated partial."""
    scenario = _mule_scenario()
    fault_plane = FaultPlane(scenario.world)
    plane = BandwidthDtnOverlay(scenario.world, make_router("epidemic"),
                                data_rate_Bps=1000.0)
    # 20 kB at 1 kB/s needs a 20 s contact; the mule crashes 3 s in.
    plane.send("src", "dst", size_bytes=20_000, ttl_s=500.0)
    scenario.run(until=3.0)
    fault_plane.crash_now("mule")
    assert plane.counters.transfers_cancelled >= 1
    assert len(plane.stores["mule"]) == 0
    scenario.run(until=400.0)
    assert plane.delivered == {}                 # the one carrier died


def test_deaf_receiver_blocks_the_exchange():
    scenario = Scenario(seed=5)
    scenario.add_node("src", position=(0, 0), mobility_class="static")
    scenario.add_node("dst", position=(60, 0), mobility_class="static")
    # Approaches src from the west; in Bluetooth range ~t=11.3-28.7.
    scenario.add_node("mule",
                      mobility=LinearMovement((-20.0, 5.0), (1.0, 0.0)))
    fault_plane = FaultPlane(scenario.world)
    fault_plane.arm([FaultEvent(0.0, DEAF, "mule")])
    plane = DtnOverlay(scenario.world, make_router("epidemic"))
    bundle = plane.send("src", "dst", ttl_s=500.0)
    scenario.run(until=35.0)
    # The mule drove through src's disk deaf: it never took a copy.
    assert plane.stores["mule"].get(bundle.bundle_id) is None
    assert plane.delivered == {}
