"""Measurement workloads: what one run of a sweep actually does.

A workload is a named function executed once per :class:`~repro.
experiments.spec.RunPoint`: it builds the point's scenario (via the
registry, with the point's derived seed), drives the simulation, and
returns a flat dict of JSON-safe metrics.

Determinism contract: a workload's metrics must be a pure function of
the run point — no wall-clock times, object ids or iteration over
unordered containers.  Wall-clock measurements belong in the reserved
``"timings"`` key, which the runner strips from the JSONL record and
reports through the side channel (:attr:`RunResult.timings`), keeping
result files byte-identical across worker counts.
"""

from __future__ import annotations

import hashlib
import inspect
import statistics
import textwrap
import time
import typing

from repro.baselines.previous_peerhood import (
    DirectOnlyDiscovery,
    FullMeshDiscovery,
    TwoJumpDiscovery,
    mean_awareness,
)
from repro.core.config import HandoverConfig
from repro.core.errors import ConnectionClosedError, PeerHoodError
from repro.core.handover import HandoverThread
from repro.dtn import (
    BandwidthDtnOverlay,
    DtnOverlay,
    generate_traffic,
    make_router,
    schedule_traffic,
)
from repro.experiments.registry import build_scenario, get_scenario
from repro.experiments.spec import RunPoint
from repro.radio.channel import OutOfRange
from repro.radio.technologies import BLUETOOTH
from repro.scenarios.traces import (
    load_trace,
    record_contact_trace,
    replay_trace,
    trace_digest,
    write_trace,
)

Metrics = typing.Dict[str, object]

_WORKLOADS: dict[str, typing.Callable[[RunPoint], Metrics]] = {}


def register_workload(name: str):
    """Decorator registering a workload function under ``name``."""
    def decorate(fn):
        if name in _WORKLOADS:
            raise ValueError(f"workload {name!r} already registered")
        _WORKLOADS[name] = fn
        return fn
    return decorate


def workload_names() -> list[str]:
    """Registered workload names, sorted."""
    return sorted(_WORKLOADS)


def get_workload(name: str):
    """Look up a workload; ``KeyError`` with the valid names."""
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; "
                       f"registered: {workload_names()}") from None


def workload_fingerprint(name: str) -> str:
    """SHA-256 of the workload's *source code*, hex.

    Part of every campaign cache key: editing a workload's measurement
    logic changes its fingerprint, which invalidates every cached cell
    it produced — stale results can never satisfy new code.  Hashing
    source (dedented, so nesting depth is irrelevant) is stable across
    processes and interpreter runs, unlike ``hash()`` or code-object
    ids.  Falls back to the compiled bytecode for source-less callables
    (frozen modules); still deterministic for a fixed build.
    """
    fn = get_workload(name)
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        code = getattr(fn, "__code__", None)
        source = repr((getattr(code, "co_code", b""),
                       getattr(code, "co_consts", ())))
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _sink_service(node, delivered: list) -> None:
    """Register a 'print'-style sink service collecting messages."""
    def handler(connection):
        def serve(connection=connection):
            while True:
                try:
                    message = yield from connection.read()
                except ConnectionClosedError:
                    return
                delivered.append(message)
        return serve()
    node.library.register_service("sink", handler)


# ----------------------------------------------------------------------
# discovery: settle and measure environment awareness + traffic
# ----------------------------------------------------------------------
@register_workload("discovery")
def discovery(point: RunPoint) -> Metrics:
    """Run discovery to ``settle_s`` and measure awareness + overhead."""
    settle_s = float(point.settings.get("settle_s", 180.0))
    scenario = build_scenario(point.scenario, point.seed, point.params)
    scenario.start_all()
    scenario.run(until=settle_s)
    names = sorted(scenario.nodes)
    fractions = [scenario.awareness_fraction(name) for name in names]
    known = [len(scenario.nodes[name].daemon.storage.devices())
             for name in names]
    return {
        "nodes": len(names),
        "awareness_mean": statistics.fmean(fractions),
        "awareness_min": min(fractions),
        "devices_known_mean": statistics.fmean(known),
        "discovery_messages": scenario.meter.messages(category="discovery"),
        "discovery_bytes": scenario.meter.bytes(category="discovery"),
        "control_messages": scenario.meter.messages(category="control"),
    }


# ----------------------------------------------------------------------
# discovery_handover: the E2/E8-style combined sweep cell
# ----------------------------------------------------------------------
@register_workload("discovery_handover")
def discovery_handover(point: RunPoint) -> Metrics:
    """Discovery settle, then a monitored stream over the fabric.

    After awareness converges, the (deterministically) first node opens
    a connection to the first peer in its DeviceStorage, attaches a
    :class:`HandoverThread`, and streams ``messages`` one-per-second —
    the E8 shape, generalised to any scenario.  Metrics cover both
    phases: awareness/overhead plus delivery and handover counts.
    """
    settle_s = float(point.settings.get("settle_s", 180.0))
    message_count = int(point.settings.get("messages", 20))
    scenario = build_scenario(point.scenario, point.seed, point.params)
    delivered: list = []
    for name in sorted(scenario.nodes):
        _sink_service(scenario.nodes[name], delivered)
    scenario.start_all()
    scenario.run(until=settle_s)

    names = sorted(scenario.nodes)
    fractions = [scenario.awareness_fraction(name) for name in names]
    metrics: Metrics = {
        "nodes": len(names),
        "awareness_mean": statistics.fmean(fractions),
        "discovery_messages": scenario.meter.messages(category="discovery"),
        "connected": 0,
        "delivered": 0,
        "handovers": 0,
    }

    client = scenario.nodes[names[0]]
    peers = [d.address for d in client.daemon.storage.devices()]
    if not peers:
        return metrics

    def stream(sim):
        try:
            connection = yield from client.library.connect(
                peers[0], "sink", retries=4)
        except (PeerHoodError, OutOfRange):
            # Expected mobile-world outcomes (no route, target gone,
            # bridge refused, peer drifted out of coverage mid-connect)
            # record as connected=0; genuine bugs propagate and fail
            # the run.
            return None
        thread = HandoverThread(client.library, connection).start()
        for index in range(message_count):
            if not connection.is_open:
                break
            connection.write(f"sweep {index}", 64)
            yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        thread.stop()
        return connection

    connection = scenario.run_process(stream(scenario.sim))
    if connection is not None:
        metrics.update({
            "connected": 1,
            "delivered": len(delivered),
            "handovers": connection.handovers,
        })
    return metrics


# ----------------------------------------------------------------------
# line_delay: E4 — change-notification delay along a settled chain
# ----------------------------------------------------------------------
@register_workload("line_delay")
def line_delay(point: RunPoint) -> Metrics:
    """Fig. 3.10 cell: when does n0 learn of a far-end newcomer?"""
    settle_s = float(point.settings.get("settle_s", 240.0))
    entry = get_scenario(point.scenario)
    spacing = float(point.params.get(
        "spacing", entry.param("spacing").default))
    scenario = build_scenario(point.scenario, point.seed, point.params)
    chain_length = len(scenario.nodes)
    newcomer = scenario.add_node(
        "newcomer", position=((chain_length - 1) * spacing + 6.0, 4.0))
    for name, node in scenario.nodes.items():
        if name != "newcomer":
            node.start()
    scenario.run(until=settle_s)
    appeared_at = scenario.sim.now
    newcomer.start()
    observer = scenario.node("n0")

    def watch(sim):
        deadline = sim.now + 40 * BLUETOOTH.search_cycle_s
        while sim.now < deadline:
            if observer.daemon.storage.get(newcomer.address) is not None:
                return sim.now - appeared_at
            yield sim.timeout(1.0)
        return None

    process = scenario.sim.spawn(watch(scenario.sim))
    delay = scenario.sim.run(until=process)
    return {
        "jumps": chain_length - 1,
        "detected": 1 if delay is not None else 0,
        "delay_s": delay,
    }


# ----------------------------------------------------------------------
# awareness_schemes: E5 — discovery-scheme comparison on one layout
# ----------------------------------------------------------------------
@register_workload("awareness_schemes")
def awareness_schemes(point: RunPoint) -> Metrics:
    """Awareness fraction under each discovery scheme (§3.1 oracles)."""
    settle_s = float(point.settings.get("settle_s", 300.0))
    scenario = build_scenario(point.scenario, point.seed, point.params)
    names = sorted(scenario.nodes)
    direct = DirectOnlyDiscovery(scenario.world, BLUETOOTH)
    two_jump = TwoJumpDiscovery(scenario.world, BLUETOOTH)
    full = FullMeshDiscovery(scenario.world, BLUETOOTH)
    scenario.start_all()
    scenario.run(until=settle_s)
    return {
        "nodes": len(names),
        "direct_only": mean_awareness(direct.aware_of, names),
        "two_jump": mean_awareness(two_jump.aware_of, names),
        "dynamic_oracle": mean_awareness(full.aware_of, names),
        "dynamic_measured": mean_awareness(scenario.awareness, names),
    }


# ----------------------------------------------------------------------
# handover_decay: E8 — the Fig. 5.8 quality-decay handover run
# ----------------------------------------------------------------------
@register_workload("handover_decay")
def handover_decay(point: RunPoint) -> Metrics:
    """One Fig. 5.8 decay run: degrade A–B until handover fires.

    ``settings["event_driven"]`` selects the state-1 monitor mode
    (default True); the equivalence test runs the same spec in both
    modes and asserts the decision metrics match.
    """
    settle_s = float(point.settings.get("settle_s", 200.0))
    message_count = int(point.settings.get("messages", 50))
    event_driven = bool(point.settings.get("event_driven", True))
    scenario = build_scenario(point.scenario, point.seed, point.params)
    server, client = scenario.node("A"), scenario.node("B")
    delivered: list = []
    _sink_service(server, delivered)
    scenario.start_all()
    scenario.run(until=settle_s)
    if not scenario.wait_for_route("B", "A"):
        return {"route_found": 0, "fired": 0}

    def client_run(sim):
        connection = yield from client.library.connect(
            server.address, "sink", retries=6)
        scenario.world.install_linear_decay(
            "A", "B", BLUETOOTH, initial_quality=240)
        thread = HandoverThread(
            client.library, connection,
            config=HandoverConfig(event_driven=event_driven)).start()
        for index in range(message_count):
            connection.write(f"good morning! {index}", 64)
            yield sim.timeout(1.0)
        yield sim.timeout(5.0)
        thread.stop()
        return connection, thread

    connection, thread = scenario.run_process(client_run(scenario.sim))
    handover = scenario.trace.first("routing-handover")
    lows_before = [e for e in scenario.trace.events("signal-low")
                   if handover and e.time <= handover.time]
    return {
        "route_found": 1,
        "fired": 1 if thread.handovers_done >= 1 else 0,
        "duration_s": handover.detail["duration"] if handover else None,
        "lows_before": len(lows_before),
        "delivered": len(delivered),
        "monitor_wakeups": thread.monitor_wakeups,
        "reestablished": scenario.trace.count(
            "connection-reestablished", node="A"),
    }


# ----------------------------------------------------------------------
# contact_trace: record the pairwise connectivity-event stream
# ----------------------------------------------------------------------
@register_workload("contact_trace")
def contact_trace(point: RunPoint) -> Metrics:
    """Record a contact trace of the scenario's geometry, zero polling.

    One repeating link watch per node pair; the kernel wakes only at
    predicted crossings.  ``settings``: ``duration_s`` (default 120),
    ``tech`` (default bluetooth), optional ``out_path`` to persist the
    JSONL stream.  The digest is a deterministic fingerprint of the
    canonical serialisation — the replay workload reproduces it.
    """
    duration_s = float(point.settings.get("duration_s", 120.0))
    tech = str(point.settings.get("tech", "bluetooth"))
    out_path = point.settings.get("out_path")
    scenario = build_scenario(point.scenario, point.seed, point.params)
    rows = record_contact_trace(scenario, tech, until=duration_s)
    if out_path:
        write_trace(rows, str(out_path))
    kinds = [row["kind"] for row in rows]
    stats = scenario.world.stats.bus
    return {
        "nodes": len(scenario.nodes),
        "events": len(rows),
        "link_ups": kinds.count("link-up"),
        "link_downs": kinds.count("link-down"),
        "digest": trace_digest(rows),
        "bus_scheduled": stats.scheduled,
        "bus_fired": stats.fired,
        "bus_cancelled": stats.cancelled,
        "bus_rescheduled": stats.rescheduled,
    }


# ----------------------------------------------------------------------
# trace_replay: a recorded contact trace as a mobility-free workload
# ----------------------------------------------------------------------
@register_workload("trace_replay")
def trace_replay(point: RunPoint) -> Metrics:
    """Replay a recorded trace: scheduled events, no world, no mobility.

    ``settings``: ``trace_path`` (required), optional ``out_path`` to
    write the replayed stream back out — byte-identical to the input
    recording, which the trace tests assert through this runner.
    """
    path = point.settings.get("trace_path")
    if not path:
        raise ValueError("trace_replay needs settings['trace_path']")
    rows = load_trace(str(path))
    result = replay_trace(rows)
    out_path = point.settings.get("out_path")
    if out_path:
        write_trace(result.rows, str(out_path))
    kinds = [row["kind"] for row in result.rows]
    return {
        "events": len(result.rows),
        "link_ups": kinds.count("link-up"),
        "link_downs": kinds.count("link-down"),
        "final_t": result.final_time,
        "digest": result.digest(),
    }


# ----------------------------------------------------------------------
# dtn: store-carry-forward delivery under each routing baseline
# ----------------------------------------------------------------------
#: Terminal pairs the ``auto`` pattern recognises, in checking order.
_ENDPOINT_PAIRS = (("home", "work"), ("kiosk", "depot"))


def _resolve_pattern(pattern: str, nodes: typing.Sequence[str]) -> str:
    """``"auto"`` picks the pattern the scenario was built for."""
    if pattern != "auto":
        return pattern
    names = set(nodes)
    for pair in _ENDPOINT_PAIRS:
        if set(pair) <= names:
            return "endpoints"
    if "source" in names:
        return "broadcast"
    return "uniform"


def _pattern_endpoints(nodes: typing.Sequence[str]
                       ) -> tuple[str, str] | None:
    """The named terminal pair for the ``endpoints`` pattern, if any."""
    names = set(nodes)
    for pair in _ENDPOINT_PAIRS:
        if set(pair) <= names:
            return pair
    return None


def _paired_router_run(point: RunPoint, router_name: str, make_plane,
                       *, spray_copies: int, duration_s: float,
                       messages: int, ttl_s: float, size_bytes: int,
                       pattern: str, inject_start: float,
                       inject_end: float):
    """One router's leg of a paired DTN comparison.

    Shared by the ``dtn`` and ``dtn_bandwidth`` workloads: rebuild the
    point's scenario with the *same* seed (identical node paths),
    replay the *same* deterministic injection schedule through a fresh
    plane built by ``make_plane(scenario, router)``, run to
    ``duration_s`` and detach.  Returns
    ``(scenario, plane, nodes, resolved_pattern)``.
    """
    scenario = build_scenario(point.scenario, point.seed, point.params)
    plane = make_plane(scenario,
                       make_router(router_name,
                                   spray_copies=spray_copies))
    nodes = plane.live_nodes()
    resolved = _resolve_pattern(pattern, nodes)
    injections = generate_traffic(
        scenario.sim.rng("dtn/traffic"), nodes, resolved, messages,
        window=(inject_start, inject_end), size_bytes=size_bytes,
        ttl_s=ttl_s, source="source" if "source" in nodes else None,
        endpoints=_pattern_endpoints(nodes)
        if resolved == "endpoints" else None)
    schedule_traffic(plane, injections)
    scenario.run(until=duration_s)
    plane.detach()
    return scenario, plane, nodes, resolved


@register_workload("dtn")
def dtn_delivery(point: RunPoint) -> Metrics:
    """Paired DTN comparison: every router on identical mobility+traffic.

    For each name in ``settings["routers"]`` the workload rebuilds the
    point's scenario with the *same* seed — identical node paths — and
    replays the *same* deterministic injection schedule through a fresh
    event-driven :class:`~repro.dtn.forwarder.DtnOverlay`, so router
    metrics differ only by routing policy (a paired comparison, which
    is what lets ``bench_dtn_delivery`` gate "epidemic beats direct on
    delivery ratio" per run rather than statistically).

    ``settings``: ``duration_s`` (default 480), ``messages`` (16; for
    the broadcast pattern this is *rounds*), ``ttl_s`` (300),
    ``size_bytes`` (512), ``routers`` (all three), ``spray_copies``
    (6), ``capacity_bytes`` (0 = unbounded), ``policy`` (``oldest``),
    ``pattern`` (``auto``: endpoints if home/work exist, broadcast if
    ``source`` exists, else uniform), ``tech`` (bluetooth),
    ``inject_start_s`` / ``inject_end_s`` (10 / half the duration).
    """
    duration_s = float(point.settings.get("duration_s", 480.0))
    messages = int(point.settings.get("messages", 16))
    ttl_s = float(point.settings.get("ttl_s", 300.0))
    size_bytes = int(point.settings.get("size_bytes", 512))
    routers = list(point.settings.get(
        "routers", ("direct", "epidemic", "spray")))
    spray_copies = int(point.settings.get("spray_copies", 6))
    capacity = int(point.settings.get("capacity_bytes", 0)) or None
    policy = str(point.settings.get("policy", "oldest"))
    pattern = str(point.settings.get("pattern", "auto"))
    tech = str(point.settings.get("tech", "bluetooth"))
    inject_start = float(point.settings.get("inject_start_s", 10.0))
    inject_end = float(point.settings.get("inject_end_s",
                                          duration_s / 2.0))
    metrics: Metrics = {}
    for router_name in routers:
        scenario, plane, nodes, resolved = _paired_router_run(
            point, router_name,
            lambda scenario, router: DtnOverlay(
                scenario.world, router, tech=tech,
                capacity_bytes=capacity, policy=policy,
                meter=scenario.meter),
            spray_copies=spray_copies, duration_s=duration_s,
            messages=messages, ttl_s=ttl_s, size_bytes=size_bytes,
            pattern=pattern, inject_start=inject_start,
            inject_end=inject_end)
        latencies = plane.latencies()
        counters = plane.counters
        metrics.update({
            "nodes": len(nodes),
            "pattern_" + resolved: 1,
            "created": counters.created,
            f"{router_name}_delivery_ratio": plane.delivery_ratio(),
            f"{router_name}_delivered": counters.delivered,
            f"{router_name}_latency_mean":
                statistics.fmean(latencies) if latencies else None,
            f"{router_name}_transmissions": counters.transmissions,
            f"{router_name}_overhead": plane.overhead_ratio(),
            f"{router_name}_wakeups": plane.wakeups,
            f"{router_name}_duplicates": counters.duplicates,
            f"{router_name}_expired": counters.expired,
            f"{router_name}_evicted": counters.evicted,
        })
    return metrics


# ----------------------------------------------------------------------
# dtn_faults: routers compared under an active fault-injection plane
# ----------------------------------------------------------------------
@register_workload("dtn_faults")
def dtn_faults(point: RunPoint) -> Metrics:
    """Paired router comparison with :mod:`repro.faults` active.

    Identical in structure to the ``dtn`` workload — every router in
    ``settings["routers"]`` re-runs the same mobility and the same
    injection schedule — but the point's scenario params are expected
    to switch on fault models (``crash_rate`` …), so the comparison
    measures *robustness*: how much delivery each routing policy loses
    to crash-reboots, deaf/mute radios, byzantine summary vectors and
    jamming.  With all fault params at zero the scenario installs no
    plane at all and the metrics this workload shares with ``dtn`` are
    byte-identical to it — the differential gate in
    ``benchmarks/bench_fault_tolerance.py``.

    ``settings`` mirror the ``dtn`` workload's, with two different
    defaults: ``routers`` is ``("direct", "spray", "prophet")``
    (multi-copy and predictive policies are the ones whose redundancy
    faults should separate) and ``pattern`` is ``uniform`` (endpoint
    terminals are never faulted, so endpoint traffic would understate
    the damage).  Beyond the ``dtn`` metrics, each router leg reports
    its fault-plane counters (``*_crashes``, ``*_reboots``,
    ``*_jammed``, ``*_byzantine``) plus the shared schedule length
    (``fault_events``); all zero when no plane is installed.
    """
    duration_s = float(point.settings.get("duration_s", 480.0))
    messages = int(point.settings.get("messages", 16))
    ttl_s = float(point.settings.get("ttl_s", 300.0))
    size_bytes = int(point.settings.get("size_bytes", 512))
    routers = list(point.settings.get(
        "routers", ("direct", "spray", "prophet")))
    spray_copies = int(point.settings.get("spray_copies", 6))
    capacity = int(point.settings.get("capacity_bytes", 0)) or None
    policy = str(point.settings.get("policy", "oldest"))
    pattern = str(point.settings.get("pattern", "uniform"))
    tech = str(point.settings.get("tech", "bluetooth"))
    inject_start = float(point.settings.get("inject_start_s", 10.0))
    inject_end = float(point.settings.get("inject_end_s",
                                          duration_s / 2.0))
    metrics: Metrics = {}
    for router_name in routers:
        scenario, plane, nodes, resolved = _paired_router_run(
            point, router_name,
            lambda scenario, router: DtnOverlay(
                scenario.world, router, tech=tech,
                capacity_bytes=capacity, policy=policy,
                meter=scenario.meter),
            spray_copies=spray_copies, duration_s=duration_s,
            messages=messages, ttl_s=ttl_s, size_bytes=size_bytes,
            pattern=pattern, inject_start=inject_start,
            inject_end=inject_end)
        latencies = plane.latencies()
        counters = plane.counters
        faults = scenario.world.faults
        fault_counts = (faults.counters.as_dict() if faults is not None
                        else {"crashes": 0, "reboots": 0,
                              "jammed_deliveries": 0,
                              "byzantine_beacons": 0})
        metrics.update({
            "nodes": len(nodes),
            "pattern_" + resolved: 1,
            "created": counters.created,
            "fault_events":
                len(faults.schedule) if faults is not None else 0,
            f"{router_name}_delivery_ratio": plane.delivery_ratio(),
            f"{router_name}_delivered": counters.delivered,
            f"{router_name}_latency_mean":
                statistics.fmean(latencies) if latencies else None,
            f"{router_name}_transmissions": counters.transmissions,
            f"{router_name}_overhead": plane.overhead_ratio(),
            f"{router_name}_wakeups": plane.wakeups,
            f"{router_name}_duplicates": counters.duplicates,
            f"{router_name}_expired": counters.expired,
            f"{router_name}_dropped_dead": counters.dropped_dead,
            f"{router_name}_crashes": fault_counts["crashes"],
            f"{router_name}_reboots": fault_counts["reboots"],
            f"{router_name}_jammed": fault_counts["jammed_deliveries"],
            f"{router_name}_byzantine":
                fault_counts["byzantine_beacons"],
        })
    return metrics


# ----------------------------------------------------------------------
# dtn_bandwidth: routers compared under bandwidth-limited contacts
# ----------------------------------------------------------------------
@register_workload("dtn_bandwidth")
def dtn_bandwidth(point: RunPoint) -> Metrics:
    """Paired router comparison under finite contact byte budgets.

    The same paired design as the ``dtn`` workload — every router in
    ``settings["routers"]`` re-runs identical mobility and identical
    injections — but through the bandwidth-limited
    :class:`~repro.dtn.capacity.BandwidthDtnOverlay`: contacts carry at
    most ``window × data_rate`` bytes, transfers are ranked, serialised
    and resumable, and router control traffic (PRoPHET's predictability
    vectors) eats into every budget.  This is the workload behind the
    ``bandwidth_sweep`` spec and the "PRoPHET ≥ epidemic under
    constrained bandwidth" gate in
    ``benchmarks/bench_contact_capacity.py``.

    ``settings`` (beyond the ``dtn`` workload's): ``rate_Bps`` (0 =
    the technology's own :attr:`~repro.radio.technologies.Technology.
    data_rate_Bps`; any positive value prices contacts at an explicit
    constrained rate), ``size_bytes`` defaults to 200 kB (camera
    pictures, the §6 migration payload) and ``routers`` to
    ``("epidemic", "spray", "prophet")``.
    """
    duration_s = float(point.settings.get("duration_s", 600.0))
    messages = int(point.settings.get("messages", 24))
    ttl_s = float(point.settings.get("ttl_s", 480.0))
    size_bytes = int(point.settings.get("size_bytes", 200_000))
    routers = list(point.settings.get(
        "routers", ("epidemic", "spray", "prophet")))
    spray_copies = int(point.settings.get("spray_copies", 6))
    capacity = int(point.settings.get("capacity_bytes", 0)) or None
    policy = str(point.settings.get("policy", "oldest"))
    pattern = str(point.settings.get("pattern", "auto"))
    tech = str(point.settings.get("tech", "bluetooth"))
    rate_Bps = float(point.settings.get("rate_Bps", 0.0)) or None
    inject_start = float(point.settings.get("inject_start_s", 120.0))
    inject_end = float(point.settings.get("inject_end_s",
                                          duration_s / 2.0))
    metrics: Metrics = {}
    for router_name in routers:
        scenario, plane, nodes, resolved = _paired_router_run(
            point, router_name,
            lambda scenario, router: BandwidthDtnOverlay(
                scenario.world, router, tech=tech,
                capacity_bytes=capacity, policy=policy,
                meter=scenario.meter, data_rate_Bps=rate_Bps),
            spray_copies=spray_copies, duration_s=duration_s,
            messages=messages, ttl_s=ttl_s, size_bytes=size_bytes,
            pattern=pattern, inject_start=inject_start,
            inject_end=inject_end)
        latencies = plane.latencies()
        counters = plane.counters
        metrics.update({
            "nodes": len(nodes),
            "pattern_" + resolved: 1,
            "created": counters.created,
            "rate_Bps": plane.data_rate_Bps,
            f"{router_name}_delivery_ratio": plane.delivery_ratio(),
            f"{router_name}_delivered": counters.delivered,
            f"{router_name}_latency_mean":
                statistics.fmean(latencies) if latencies else None,
            f"{router_name}_transmissions": counters.transmissions,
            f"{router_name}_overhead": plane.overhead_ratio(),
            f"{router_name}_wakeups": plane.wakeups,
            f"{router_name}_bytes_offered": counters.bytes_offered,
            f"{router_name}_bytes_transferred":
                counters.bytes_transferred,
            f"{router_name}_transfers_truncated":
                counters.transfers_truncated,
            f"{router_name}_transfers_cancelled":
                counters.transfers_cancelled,
            f"{router_name}_control_bytes":
                scenario.meter.bytes(category="dtn-control"),
        })
    return metrics


# ----------------------------------------------------------------------
# dtn_phy: routers compared under the lossy physical layer
# ----------------------------------------------------------------------
@register_workload("dtn_phy")
def dtn_phy(point: RunPoint) -> Metrics:
    """Paired router comparison with :mod:`repro.radio.phy` active.

    The same paired design and the same bandwidth-limited plane as the
    ``dtn_bandwidth`` workload — every router re-runs identical
    mobility and identical injections through a
    :class:`~repro.dtn.capacity.BandwidthDtnOverlay` — but the point's
    scenario params are expected to switch on the lossy PHY
    (``shadowing_sigma_db`` / ``phy_collisions``), so the comparison
    measures how each routing policy survives fading, collisions and
    lost control traffic.  Epidemic's flooding now *contends with
    itself*: parallel sessions overlap at shared receivers and lost
    legs burn finite window budget on retries, which is the
    ``bench_phy`` gate.  With all PHY params at zero the scenario
    installs no plane at all and the metrics this workload shares with
    ``dtn_bandwidth`` are byte-identical to it — the differential
    zero-loss identity gate.

    ``settings`` mirror the ``dtn_bandwidth`` workload's, with
    ``routers`` defaulting to ``("epidemic", "spray")`` (the pair whose
    gap the contention gate watches).  Beyond the ``dtn_bandwidth``
    metrics, each router leg reports the PHY plane's counters
    (``*_phy_offered`` / ``*_phy_delivered`` / ``*_phy_lost_fading`` /
    ``*_phy_lost_collision`` / ``*_phy_captured``); all zero when no
    plane is installed.
    """
    duration_s = float(point.settings.get("duration_s", 600.0))
    messages = int(point.settings.get("messages", 24))
    ttl_s = float(point.settings.get("ttl_s", 480.0))
    size_bytes = int(point.settings.get("size_bytes", 200_000))
    routers = list(point.settings.get("routers", ("epidemic", "spray")))
    spray_copies = int(point.settings.get("spray_copies", 6))
    capacity = int(point.settings.get("capacity_bytes", 0)) or None
    policy = str(point.settings.get("policy", "oldest"))
    pattern = str(point.settings.get("pattern", "auto"))
    tech = str(point.settings.get("tech", "bluetooth"))
    rate_Bps = float(point.settings.get("rate_Bps", 0.0)) or None
    inject_start = float(point.settings.get("inject_start_s", 120.0))
    inject_end = float(point.settings.get("inject_end_s",
                                          duration_s / 2.0))
    metrics: Metrics = {}
    for router_name in routers:
        scenario, plane, nodes, resolved = _paired_router_run(
            point, router_name,
            lambda scenario, router: BandwidthDtnOverlay(
                scenario.world, router, tech=tech,
                capacity_bytes=capacity, policy=policy,
                meter=scenario.meter, data_rate_Bps=rate_Bps),
            spray_copies=spray_copies, duration_s=duration_s,
            messages=messages, ttl_s=ttl_s, size_bytes=size_bytes,
            pattern=pattern, inject_start=inject_start,
            inject_end=inject_end)
        latencies = plane.latencies()
        counters = plane.counters
        phy = scenario.world.phy
        phy_counts = (phy.counters.as_dict() if phy is not None
                      else {"offered": 0, "delivered": 0,
                            "lost_fading": 0, "lost_collision": 0,
                            "captured": 0})
        metrics.update({
            "nodes": len(nodes),
            "pattern_" + resolved: 1,
            "created": counters.created,
            "rate_Bps": plane.data_rate_Bps,
            f"{router_name}_delivery_ratio": plane.delivery_ratio(),
            f"{router_name}_delivered": counters.delivered,
            f"{router_name}_latency_mean":
                statistics.fmean(latencies) if latencies else None,
            f"{router_name}_transmissions": counters.transmissions,
            f"{router_name}_overhead": plane.overhead_ratio(),
            f"{router_name}_wakeups": plane.wakeups,
            f"{router_name}_bytes_offered": counters.bytes_offered,
            f"{router_name}_bytes_transferred":
                counters.bytes_transferred,
            f"{router_name}_transfers_truncated":
                counters.transfers_truncated,
            f"{router_name}_transfers_cancelled":
                counters.transfers_cancelled,
            f"{router_name}_control_bytes":
                scenario.meter.bytes(category="dtn-control"),
            f"{router_name}_phy_offered": phy_counts["offered"],
            f"{router_name}_phy_delivered": phy_counts["delivered"],
            f"{router_name}_phy_lost_fading": phy_counts["lost_fading"],
            f"{router_name}_phy_lost_collision":
                phy_counts["lost_collision"],
            f"{router_name}_phy_captured": phy_counts["captured"],
        })
    return metrics


# ----------------------------------------------------------------------
# scale_neighbors: grid vs pairwise discovery rounds at constant density
# ----------------------------------------------------------------------
@register_workload("scale_neighbors")
def scale_neighbors(point: RunPoint) -> Metrics:
    """Full discovery rounds, spatial grid vs the O(N²) baseline.

    The plaza's area is derived from ``density_per_m2`` so each node's
    true neighbour count stays flat while N grows.  Distance-check
    counts are deterministic metrics; per-implementation wall-clock
    goes in ``"timings"`` (stripped from result records).
    """
    rounds = int(point.settings.get("rounds", 3))
    step_s = float(point.settings.get("step_s", 15.0))
    density = float(point.settings.get("density_per_m2",
                                       500 / (120.0 * 120.0)))
    count = int(point.params["count"])
    params = dict(point.params)
    params["area"] = (count / density) ** 0.5
    scenario = build_scenario(point.scenario, point.seed, params)
    world = scenario.world
    grid_checks = brute_checks = 0
    grid_seconds = brute_seconds = 0.0
    for _ in range(rounds):
        scenario.sim.timeout(step_s)
        scenario.sim.run()
        ids = world.node_ids()

        world.stats.reset()
        started = time.perf_counter()
        grid_round = [world.neighbors(node_id, BLUETOOTH)
                      for node_id in ids]
        grid_seconds += time.perf_counter() - started
        grid_checks += world.stats.distance_checks

        world.stats.reset()
        started = time.perf_counter()
        brute_round = [world.neighbors_brute_force(node_id, BLUETOOTH)
                       for node_id in ids]
        brute_seconds += time.perf_counter() - started
        brute_checks += world.stats.distance_checks

        if grid_round != brute_round:
            raise AssertionError(
                f"grid and pairwise neighbor sets diverged at N={count}")
    return {
        "nodes": count,
        "rounds": rounds,
        "grid_checks": grid_checks // rounds,
        "brute_checks": brute_checks // rounds,
        "timings": {
            "grid_ms": 1000.0 * grid_seconds / rounds,
            "brute_ms": 1000.0 * brute_seconds / rounds,
        },
    }


# ----------------------------------------------------------------------
# vectorized_neighbors: batch geometry engine vs scalar grid sweeps
# ----------------------------------------------------------------------
@register_workload("vectorized_neighbors")
def vectorized_neighbors(point: RunPoint) -> Metrics:
    """Whole-population discovery: numpy batch engine vs scalar grid.

    Each round advances the clock, then runs the same sweep twice —
    once as one vectorized ``neighbor_pairs_vectorized`` call, once as
    N scalar ``neighbors`` queries — asserting the neighbor sets are
    identical before timing counts.  An extra untimed warm-up round
    (round 0) absorbs first-call piece compilation, and every round
    pre-extends the random-waypoint leg caches outside the timers so
    neither path pays lazy leg generation for the other.  After the
    rounds, the final in-range pairs are solved for their next link
    crossing by both the batched and the scalar contact solver
    (element-wise equal by contract).

    Deterministic metrics: candidate-check counts, link counts,
    solved-pair and crossing counts, per-phase profiler event counts
    (``events_vector_*``).  Wall-clock (vector vs grid milliseconds per
    round, batched vs scalar solve) rides the ``"timings"`` side
    channel.  ``settings``: ``rounds`` (3), ``step_s`` (15),
    ``density_per_m2`` (dense-plaza default; applied only to scenarios
    with an ``area`` param), ``crossing_horizon_s`` (120).
    """
    from repro.obs.profile import SubsystemProfiler

    rounds = int(point.settings.get("rounds", 3))
    step_s = float(point.settings.get("step_s", 15.0))
    density = float(point.settings.get("density_per_m2",
                                       500 / (120.0 * 120.0)))
    crossing_horizon_s = float(
        point.settings.get("crossing_horizon_s", 120.0))
    count = int(point.params["count"])
    params = dict(point.params)
    if get_scenario(point.scenario).has_param("area"):
        params["area"] = (count / density) ** 0.5
    scenario = build_scenario(point.scenario, point.seed, params)
    world = scenario.world
    profiler = SubsystemProfiler()
    world.vector_engine(BLUETOOTH, profiler=profiler)
    vector_checks = grid_checks = links = 0
    vector_seconds = grid_seconds = 0.0
    pair_i = pair_j = None
    row_ids: list[str] = []
    for round_index in range(rounds + 1):
        scenario.sim.timeout(step_s)
        scenario.sim.run()
        ids = world.node_ids()
        # Pre-extend leg caches at this instant so neither timed path
        # pays the other's lazy leg generation.
        now = scenario.sim.now
        for node_id in ids:
            world.node(node_id).mobility.position(now)
        timed = round_index > 0  # round 0 warms compiled piece rows

        world.stats.reset()
        started = time.perf_counter()
        pair_i, pair_j, row_ids = world.neighbor_pairs_vectorized(BLUETOOTH)
        elapsed_vector = time.perf_counter() - started
        round_vector_checks = world.stats.distance_checks

        world.stats.reset()
        started = time.perf_counter()
        grid_round = [world.neighbors(node_id, BLUETOOTH)
                      for node_id in ids]
        elapsed_grid = time.perf_counter() - started
        round_grid_checks = world.stats.distance_checks

        vector_round = world.all_neighbors_vectorized(BLUETOOTH)
        scalar_round = dict(zip(ids, grid_round))
        for node_id in row_ids:
            if vector_round[node_id] != scalar_round[node_id]:
                raise AssertionError(
                    f"vector and scalar neighbor sets diverged at "
                    f"N={count}, node {node_id!r}")
        if timed:
            vector_seconds += elapsed_vector
            grid_seconds += elapsed_grid
            vector_checks += round_vector_checks
            grid_checks += round_grid_checks
            links += len(pair_i)

    id_pairs = [(row_ids[a], row_ids[b])
                for a, b in zip(pair_i.tolist(), pair_j.tolist())]
    started = time.perf_counter()
    batch = world.contacts.next_link_crossings_batch(
        id_pairs, BLUETOOTH, horizon_s=crossing_horizon_s,
        profiler=profiler)
    solve_vector_seconds = time.perf_counter() - started
    started = time.perf_counter()
    scalar = [world.contacts.next_link_crossing(
        a, b, BLUETOOTH, horizon_s=crossing_horizon_s)
        for a, b in id_pairs]
    solve_scalar_seconds = time.perf_counter() - started
    if batch != scalar:
        raise AssertionError(
            f"batched and scalar crossing solves diverged at N={count}")

    metrics: Metrics = {
        "nodes": count,
        "rounds": rounds,
        "vector_candidate_checks": vector_checks // rounds,
        "grid_candidate_checks": grid_checks // rounds,
        "neighbor_links": links // rounds,
        "solved_pairs": len(id_pairs),
        "crossings_found": sum(1 for c in batch if c is not None),
    }
    for label, events in profiler.count_rows().items():
        metrics[f"events_{label.replace('-', '_')}"] = events
    metrics["timings"] = {
        "vector_ms": 1000.0 * vector_seconds / rounds,
        "grid_ms": 1000.0 * grid_seconds / rounds,
        "solve_vector_ms": 1000.0 * solve_vector_seconds,
        "solve_scalar_ms": 1000.0 * solve_scalar_seconds,
        **profiler.timing_entries(),
    }
    return metrics
