"""Unit tests for technologies, propagation, quality and the world."""

import pytest

from repro.mobility import LinearMovement, StaticPosition
from repro.radio import (
    BLUETOOTH,
    GPRS,
    PAPER_LOW_QUALITY_THRESHOLD,
    QUALITY_MAX,
    WLAN,
    LogDistancePathLoss,
    PathLossQuality,
    PiecewiseLinearQuality,
    World,
)
from repro.radio.technologies import Technology, get_technology
from repro.sim import Simulator


# ----------------------------------------------------------------------
# technologies
# ----------------------------------------------------------------------
def test_builtin_technology_registry():
    assert get_technology("bluetooth") is BLUETOOTH
    assert get_technology("wlan") is WLAN
    assert get_technology("gprs") is GPRS


def test_unknown_technology_raises_with_known_list():
    with pytest.raises(KeyError, match="bluetooth"):
        get_technology("zigbee")


def test_technology_search_cycle_is_scan_plus_idle():
    assert BLUETOOTH.search_cycle_s == pytest.approx(
        BLUETOOTH.inquiry_duration_s + BLUETOOTH.inquiry_interval_s)


def test_technology_transmit_time_scales_with_size():
    small = BLUETOOTH.transmit_time(100)
    large = BLUETOOTH.transmit_time(10_000)
    assert large > small > BLUETOOTH.base_latency_s


def test_technology_transmit_time_rejects_negative():
    with pytest.raises(ValueError):
        BLUETOOTH.transmit_time(-1)


def test_technology_validation():
    with pytest.raises(ValueError):
        Technology("bad", -1, 0, 1, 0.1, 1e6, 0.01, 1, 1, True, 0.1)
    with pytest.raises(ValueError):
        Technology("bad", 10, 5, 1, 0.1, 1e6, 0.01, 1, 1, True, 0.1)
    with pytest.raises(ValueError):
        Technology("bad", 10, 0, 1, 1.5, 1e6, 0.01, 1, 1, True, 0.1)


def test_bluetooth_is_asymmetric_others_are_not():
    assert not BLUETOOTH.discoverable_while_inquiring
    assert WLAN.discoverable_while_inquiring
    assert GPRS.discoverable_while_inquiring


# ----------------------------------------------------------------------
# propagation
# ----------------------------------------------------------------------
def test_path_loss_monotonically_decreasing():
    model = LogDistancePathLoss()
    rssi = [model.rssi_dbm(d) for d in (1.0, 5.0, 10.0, 20.0)]
    assert rssi == sorted(rssi, reverse=True)


def test_path_loss_clamps_below_reference_distance():
    model = LogDistancePathLoss(reference_distance_m=1.0)
    assert model.rssi_dbm(0.0) == model.rssi_dbm(1.0)


def test_path_loss_inverse_round_trip():
    model = LogDistancePathLoss()
    for d in (2.0, 7.5, 15.0):
        assert model.distance_for_rssi(model.rssi_dbm(d)) == pytest.approx(d)


def test_path_loss_rejects_negative_distance():
    with pytest.raises(ValueError):
        LogDistancePathLoss().rssi_dbm(-2.0)


# ----------------------------------------------------------------------
# quality models
# ----------------------------------------------------------------------
def test_piecewise_quality_plateau_is_max():
    model = PiecewiseLinearQuality(plateau_fraction=0.5)
    assert model.quality(0.0, 10.0) == QUALITY_MAX
    assert model.quality(5.0, 10.0) == QUALITY_MAX


def test_piecewise_quality_ramps_to_edge():
    model = PiecewiseLinearQuality(plateau_fraction=0.5, edge_quality=180)
    assert model.quality(10.0, 10.0) == 180
    mid = model.quality(7.5, 10.0)
    assert 180 < mid < QUALITY_MAX


def test_piecewise_quality_zero_beyond_range():
    model = PiecewiseLinearQuality()
    assert model.quality(10.01, 10.0) == 0


def test_piecewise_threshold_crossing_is_inside_coverage():
    """The paper's 230 threshold must trip before the link dies (§3.4.1)."""
    model = PiecewiseLinearQuality()
    crossing = model.distance_for_quality(PAPER_LOW_QUALITY_THRESHOLD, 10.0)
    assert 5.0 < crossing < 10.0
    assert model.quality(crossing, 10.0) == PAPER_LOW_QUALITY_THRESHOLD


def test_piecewise_quality_monotone_nonincreasing():
    model = PiecewiseLinearQuality()
    values = [model.quality(d / 10.0, 10.0) for d in range(0, 105)]
    assert values == sorted(values, reverse=True)


def test_path_loss_quality_monotone_and_bounded():
    model = PathLossQuality()
    values = [model.quality(float(d), 10.0) for d in range(0, 11)]
    assert values == sorted(values, reverse=True)
    assert all(0 <= v <= QUALITY_MAX for v in values)


def test_quality_model_validation():
    with pytest.raises(ValueError):
        PiecewiseLinearQuality(plateau_fraction=1.5)
    with pytest.raises(ValueError):
        PiecewiseLinearQuality(edge_quality=300)
    with pytest.raises(ValueError):
        PathLossQuality(rssi_ceiling_dbm=-90.0, rssi_floor_dbm=-45.0)


# ----------------------------------------------------------------------
# world
# ----------------------------------------------------------------------
def make_world():
    sim = Simulator(seed=1)
    world = World(sim)
    return sim, world


def test_world_add_and_query_nodes():
    _, world = make_world()
    world.add_node("pc", StaticPosition(0, 0), [BLUETOOTH, WLAN])
    world.add_node("phone", StaticPosition(5, 0), ["bluetooth"])
    assert world.node_ids() == ["pc", "phone"]
    assert world.supports("pc", WLAN)
    assert not world.supports("phone", WLAN)


def test_world_duplicate_node_rejected():
    _, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    with pytest.raises(ValueError):
        world.add_node("a", StaticPosition(1, 1), [BLUETOOTH])


def test_world_node_needs_technology():
    _, world = make_world()
    with pytest.raises(ValueError):
        world.add_node("bare", StaticPosition(0, 0), [])


def test_world_unknown_node_raises():
    _, world = make_world()
    with pytest.raises(KeyError):
        world.position("ghost")


def test_world_distance_and_range():
    _, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(8, 0), [BLUETOOTH])
    world.add_node("c", StaticPosition(30, 0), [BLUETOOTH])
    assert world.distance("a", "b") == 8.0
    assert world.in_range("a", "b", BLUETOOTH)
    assert not world.in_range("a", "c", BLUETOOTH)
    assert not world.in_range("a", "a", BLUETOOTH)


def test_world_range_requires_technology_on_both_sides():
    _, world = make_world()
    world.add_node("bt-only", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("wlan-only", StaticPosition(1, 0), [WLAN])
    assert not world.in_range("bt-only", "wlan-only", BLUETOOTH)
    assert not world.in_range("bt-only", "wlan-only", WLAN)


def test_world_positions_follow_mobility_and_clock():
    sim, world = make_world()
    world.add_node("walker", LinearMovement((0, 0), (1.0, 0.0)), [BLUETOOTH])
    assert world.position("walker") == (0.0, 0.0)
    sim.timeout(6.0)
    sim.run()
    assert world.position("walker") == (6.0, 0.0)


def test_world_mobile_node_leaves_range_over_time():
    sim, world = make_world()
    world.add_node("base", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("walker", LinearMovement((0, 0), (1.0, 0.0)), [BLUETOOTH])
    assert world.in_range("base", "walker", BLUETOOTH)
    sim.timeout(11.0)
    sim.run()
    assert not world.in_range("base", "walker", BLUETOOTH)


def test_world_link_quality_declines_with_distance():
    _, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("near", StaticPosition(2, 0), [BLUETOOTH])
    world.add_node("far", StaticPosition(9, 0), [BLUETOOTH])
    world.add_node("gone", StaticPosition(50, 0), [BLUETOOTH])
    assert world.link_quality("a", "near", BLUETOOTH) == QUALITY_MAX
    assert 0 < world.link_quality("a", "far", BLUETOOTH) < QUALITY_MAX
    assert world.link_quality("a", "gone", BLUETOOTH) == 0


def test_world_quality_override_and_clear():
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(1, 0), [BLUETOOTH])
    world.set_quality_override("a", "b", BLUETOOTH, lambda t: 42)
    assert world.link_quality("a", "b", BLUETOOTH) == 42
    assert world.link_quality("b", "a", BLUETOOTH) == 42  # symmetric key
    world.set_quality_override("a", "b", BLUETOOTH, None)
    assert world.link_quality("a", "b", BLUETOOTH) == QUALITY_MAX


def test_world_linear_decay_matches_paper_rate():
    """Fig. 5.8: quality decays by 1 per second from the initial value."""
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(1, 0), [BLUETOOTH])
    world.install_linear_decay("a", "b", BLUETOOTH, initial_quality=255)
    assert world.link_quality("a", "b", BLUETOOTH) == 255
    sim.timeout(25.0)
    sim.run()
    assert world.link_quality("a", "b", BLUETOOTH) == 230
    sim.timeout(300.0)
    sim.run()
    assert world.link_quality("a", "b", BLUETOOTH) == 0  # floored


def test_world_inquiry_marking_controls_discoverability():
    _, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH, WLAN])
    world.add_node("b", StaticPosition(1, 0), [BLUETOOTH, WLAN])
    assert world.is_discoverable("b", BLUETOOTH)
    world.mark_inquiring("b", BLUETOOTH, True)
    assert not world.is_discoverable("b", BLUETOOTH)  # asymmetric BT
    assert world.is_discoverable("b", WLAN)  # WLAN unaffected
    world.mark_inquiring("b", BLUETOOTH, False)
    assert world.is_discoverable("b", BLUETOOTH)


def test_world_discoverable_neighbors_excludes_inquirers():
    _, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(3, 0), [BLUETOOTH])
    world.add_node("c", StaticPosition(6, 0), [BLUETOOTH])
    assert world.discoverable_neighbors("a", BLUETOOTH) == ["b", "c"]
    world.mark_inquiring("c", BLUETOOTH, True)
    assert world.discoverable_neighbors("a", BLUETOOTH) == ["b"]
    assert world.neighbors("a", BLUETOOTH) == ["b", "c"]


def test_world_remove_node():
    _, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(1, 0), [BLUETOOTH])
    world.mark_inquiring("b", BLUETOOTH, True)
    world.remove_node("b")
    assert world.node_ids() == ["a"]
    assert not world.has_node("b")
    with pytest.raises(KeyError):
        world.remove_node("b")


# ----------------------------------------------------------------------
# inquiry-mark pruning (explicit on clock advance and on remove_node)
# ----------------------------------------------------------------------
def test_stale_marks_never_resurrect_a_removed_node():
    """Remove a node mid-inquiry, re-add the id: physically fresh."""
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(5, 0), [BLUETOOTH])
    # b toggles through some scans, then dies while inquiring.
    for start in (0.0, 30.0, 60.0):
        sim.run(until=start)
        world.mark_inquiring("b", BLUETOOTH, True)
        sim.run(until=start + 10.0)
        world.mark_inquiring("b", BLUETOOTH, False)
    sim.run(until=90.0)
    world.mark_inquiring("b", BLUETOOTH, True)
    world.remove_node("b")
    assert world.neighbors("a", BLUETOOTH) == []
    assert world.discoverable_neighbors("a", BLUETOOTH) == []
    # Same id powers back on: no stale toggle state may survive.
    world.add_node("b", StaticPosition(5, 0), [BLUETOOTH])
    assert not world.is_inquiring("b", BLUETOOTH)
    assert world.is_discoverable("b", BLUETOOTH)
    # The old log is gone: the whole window counts as discoverable even
    # though the "old b" was mid-inquiry over part of it.
    assert world.max_discoverable_gap(
        "b", BLUETOOTH, 85.0, 95.0) == pytest.approx(10.0)
    assert world.heard_during_scan("b", BLUETOOTH, 85.0, 95.0)


def test_toggle_log_pruned_explicitly_on_clock_advance():
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(5, 0), [BLUETOOTH])
    # Sparse toggles: the seed's length-triggered lazy prune (watermark
    # 16) would never fire, carrying entries forever.
    for index in range(6):
        sim.run(until=index * 50.0)
        world.mark_inquiring("b", BLUETOOTH, True)
        sim.run(until=index * 50.0 + 10.0)
        world.mark_inquiring("b", BLUETOOTH, False)
    history = world._inquiry_history[("b", BLUETOOTH.name)]
    # The prune runs once per horizon of clock advance, so nothing older
    # than two horizons survives (bar the single state anchor).
    cutoff = sim.now - 2 * World._HISTORY_HORIZON_S
    assert sum(1 for when, _ in history if when <= cutoff) <= 1
    # An explicit prune tightens to one horizon exactly.
    world.prune_inquiry_history()
    tight = sim.now - World._HISTORY_HORIZON_S
    assert sum(1 for when, _ in history if when <= tight) <= 1
    # Pruning preserved the current answers.
    assert not world.is_inquiring("b", BLUETOOTH)
    assert world.heard_during_scan("b", BLUETOOTH, sim.now - 20.0, sim.now)


def test_prune_keeps_state_anchor_for_window_queries():
    sim, world = make_world()
    world.add_node("b", StaticPosition(5, 0), [BLUETOOTH])
    world.mark_inquiring("b", BLUETOOTH, True)   # at t=0, never cleared
    sim.run(until=500.0)
    assert world.prune_inquiry_history() == 0    # anchor must survive
    # 500 s later the node is still known to be mid-inquiry.
    assert world.is_inquiring("b", BLUETOOTH)
    assert world.max_discoverable_gap(
        "b", BLUETOOTH, 490.0, 500.0) == 0.0


def test_grid_refresh_triggers_history_prune():
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", LinearMovement((5.0, 0.0), (0.01, 0.0)), [BLUETOOTH])
    world.mark_inquiring("b", BLUETOOTH, True)
    world.mark_inquiring("b", BLUETOOTH, False)
    world.neighbors("a", BLUETOOTH)   # builds the grid
    sim.run(until=400.0)
    world.neighbors("a", BLUETOOTH)   # clock advanced: refresh + prune
    history = world._inquiry_history[("b", BLUETOOTH.name)]
    assert len(history) == 1          # both toggles aged out; anchor kept
