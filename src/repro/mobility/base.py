"""Base types for mobility models."""

from __future__ import annotations

import math
import typing

#: A 2-D position in metres.
Point = typing.Tuple[float, float]

#: One piece of piecewise-linear motion: ``(start_t, end_t, position at
#: start_t, velocity)``.  Within the piece ``position(t) = p + v * (t -
#: start_t)``.  Times in sim-seconds, positions in metres, velocity m/s.
Segment = typing.Tuple[float, float, Point, Point]


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


class MobilityModel:
    """Interface: position as a pure function of virtual time.

    Implementations must be deterministic: calling ``position(t)`` twice
    with the same ``t`` returns the same point, and queries may arrive out
    of time order (the discovery loops of different devices sample the world
    at their own cadence).
    """

    def position(self, t: float) -> Point:
        """The node's position at virtual time ``t`` (seconds)."""
        raise NotImplementedError

    def is_mobile(self) -> bool:
        """True if the model ever changes position (for trace labelling)."""
        return True

    def linear_segments(self, t0: float,
                        t1: float) -> typing.List[Segment] | None:
        """Piecewise-linear description of the motion over ``[t0, t1]``.

        Returns contiguous :data:`Segment` tuples covering exactly the
        window (first starts at ``t0``, last ends at ``t1``), or ``None``
        when the model cannot express its motion in closed form — the
        connectivity-event solver (:mod:`repro.radio.contacts`) then falls
        back to guarded bisection.  All bundled models are piecewise
        linear and override this.
        """
        return None

    def settled_after(self) -> float | None:
        """Time after which the position is constant forever, or ``None``.

        Lets the contact solver mark a pair as *final* (no further link
        crossings can ever occur) instead of re-checking every horizon.
        """
        return None

    def active_piece(self, t: float,
                     horizon_s: float = 600.0) -> Segment | None:
        """The single linear piece governing the motion at time ``t``.

        Returns a :data:`Segment` ``(start, end, pos_at_start, velocity)``
        with ``start <= t <= end`` — the compilation unit of the batch
        geometry engine (:mod:`repro.radio.vectorized`), which caches one
        ``(origin, velocity, t0)`` row per node and only re-asks when the
        clock passes ``end``.  ``end`` may be ``math.inf`` for motion
        that never changes again; the default implementation clips it at
        ``t + horizon_s`` (the first window segment).  ``None`` when the
        model cannot describe itself (no ``linear_segments``); models
        with cheap piece lookup override this to skip building a whole
        window's segment list.
        """
        segments = self.linear_segments(t, t + horizon_s)
        if not segments:
            return None
        return segments[0]
