"""Seeded, labelled random streams.

Every stochastic component of the reproduction (Bluetooth connect latency,
connection-fault draws, mobility waypoints, workload generators) pulls from
its own named stream derived from ``(master_seed, label)``.  Adding a new
consumer therefore never perturbs the draws seen by existing ones, which
keeps regression baselines stable.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, label: str) -> int:
    """Derive a child seed from a master seed and a label, stably.

    Uses SHA-256 so the mapping is identical across platforms and Python
    versions (``hash()`` is salted per-process and unusable here).
    """
    digest = hashlib.sha256(f"{master_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A :class:`random.Random` wrapper with a stable derived seed."""

    def __init__(self, master_seed: int, label: str):
        self.master_seed = master_seed
        self.label = label
        self._random = random.Random(derive_seed(master_seed, label))

    def split(self, sublabel: str) -> "RandomStream":
        """Create an independent child stream."""
        return RandomStream(self.master_seed, f"{self.label}/{sublabel}")

    # Thin pass-throughs: keep the consumed surface explicit and small.
    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._random.randint(low, high)

    def choice(self, sequence):
        """Uniformly chosen element."""
        return self._random.choice(sequence)

    def sample(self, population, k: int):
        """k distinct elements chosen without replacement."""
        return self._random.sample(population, k)

    def shuffle(self, sequence) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(sequence)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (1/mean)."""
        return self._random.expovariate(rate)

    def gauss(self, mean: float, sigma: float) -> float:
        """Normal variate."""
        return self._random.gauss(mean, sigma)

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        return self._random.random() < probability

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStream {self.label!r} seed={self.master_seed}>"
