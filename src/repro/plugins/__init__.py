"""Network plugins: per-technology discovery loops (§2.2.1, Ch. 3).

Each plugin runs the Fig. 3.12 inquiry thread for one radio technology.
The Bluetooth plugin inherits the technology's asymmetric-discovery
behaviour (a scanning device is undiscoverable, §3.4.2) through the world
model; WLAN and GPRS scan symmetrically.
"""

from __future__ import annotations

import typing

from repro.plugins.base import AbstractPlugin
from repro.plugins.bluetooth import BluetoothPlugin
from repro.plugins.gprs import GprsPlugin
from repro.plugins.wlan import WlanPlugin
from repro.radio.technologies import Technology

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import PeerHoodNode

_PLUGIN_CLASSES: dict[str, type[AbstractPlugin]] = {
    "bluetooth": BluetoothPlugin,
    "wlan": WlanPlugin,
    "gprs": GprsPlugin,
}


def plugin_for(node: "PeerHoodNode", tech: Technology) -> AbstractPlugin:
    """Instantiate the plugin class for a technology."""
    plugin_class = _PLUGIN_CLASSES.get(tech.name)
    if plugin_class is None:
        raise KeyError(f"no plugin for technology {tech.name!r}")
    return plugin_class(node)


__all__ = [
    "AbstractPlugin",
    "BluetoothPlugin",
    "GprsPlugin",
    "WlanPlugin",
    "plugin_for",
]
