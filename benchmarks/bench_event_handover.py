"""Event-driven vs polling handover monitoring — the kernel-wakeup gate.

Not a paper artifact: this benchmark backs the PR 3 connectivity-event
core.  A *monitor farm* puts ``N`` nodes into ``N/2`` monitored pairs
(each pair one direct link + one :class:`HandoverThread`); a 10 %
fraction of partners walks out of coverage mid-run, so those monitors
must observe the quality ramp, count low readings, attempt state-2
substitution (no routes exist — the §5.2.2 fallback reports
``reconnection-unavailable``) and keep watching, while the quiet
majority's quality sits on the 255 plateau the whole time.

The same farm runs twice — ``HandoverConfig(event_driven=False)`` (the
paper-faithful polling oracle) and ``True`` (bus-predicted crossings) —
and the benchmark asserts:

* the **decision stream is identical**: every signal-low reading (node,
  count, quality) and every reconnection-unavailable event matches
  one-for-one, with instants equal to 1 µs;
* the event-driven run takes **≥ 5× fewer monitor wakeups** (the
  acceptance gate) and fewer kernel events overall;
* the bus counters surface in ``world.stats.bus`` and moved.

``BENCH_event_handover.json`` at the repo root records the wakeup /
kernel-event / wall-clock comparison for cross-PR tracking.  ``N``
defaults to 500; the CI bench-smoke job sets ``BENCH_EVENT_N`` small.
"""

import os
import pathlib
import time

from repro.analysis.snapshots import write_bench_snapshot
from repro.core.config import HandoverConfig
from repro.core.handover import HandoverThread
from repro.core.connection import PeerHoodConnection
from repro.mobility.walker import CorridorWalk
from repro.radio.channel import Link
from repro.radio.technologies import BLUETOOTH
from repro.scenarios import Scenario

from paperbench import print_table

SNAPSHOT_PATH = (pathlib.Path(__file__).resolve().parent.parent
                 / "BENCH_event_handover.json")

#: Farm size (nodes); the CI smoke job shrinks it via the environment.
FARM_N = int(os.environ.get("BENCH_EVENT_N", "500"))
#: Monitored sim time per mode, seconds.
DURATION_S = 240.0
#: Fraction of pairs whose partner walks out of coverage.
WALKER_FRACTION = 0.1
#: In-pair distance (metres): on the quality plateau (reads 255).
PAIR_GAP_M = 4.0
#: Distance between pairs (metres): beyond Bluetooth range, no coupling.
PAIR_PITCH_M = 30.0


def build_farm(n_nodes: int, event_driven: bool, seed: int = 9):
    """A scenario of N/2 monitored pairs; returns (scenario, threads)."""
    scenario = Scenario(seed=seed)
    pair_count = n_nodes // 2
    walker_count = max(1, round(pair_count * WALKER_FRACTION))
    threads = []
    config = HandoverConfig(event_driven=event_driven)
    for index in range(pair_count):
        x = index * PAIR_PITCH_M
        anchor = scenario.add_node(
            f"a{index}", position=(x, 0.0), mobility_class="static")
        if index < walker_count:
            # Departures staggered so crossings spread over the run.
            depart = 30.0 + (index * 120.0) / walker_count
            partner = scenario.add_node(
                f"b{index}",
                mobility=CorridorWalk((x + PAIR_GAP_M, 0.0), heading_deg=0.0,
                                      depart_time=depart, stop_distance=30.0),
                mobility_class="dynamic")
        else:
            partner = scenario.add_node(
                f"b{index}", position=(x + PAIR_GAP_M, 0.0),
                mobility_class="static")
        link = Link(scenario.world, anchor.node_id, partner.node_id,
                    BLUETOOTH)
        connection = PeerHoodConnection(
            fabric=scenario.fabric, local_node_id=anchor.node_id,
            link=link, connection_id=index + 1,
            remote_address=partner.address, service_name="bench")
        threads.append(HandoverThread(
            anchor.library, connection, config=config).start())
    return scenario, threads


def run_mode(event_driven: bool, n_nodes: int):
    """One farm run; returns (figures, decision stream)."""
    started = time.perf_counter()
    scenario, threads = build_farm(n_nodes, event_driven)
    scenario.run(until=DURATION_S)
    for thread in threads:
        thread.stop()
    wall_s = time.perf_counter() - started
    lows = [(e.node, e.detail["low_count"], e.detail["quality"], e.time)
            for e in scenario.trace.events("signal-low")]
    fallbacks = [(e.node, e.time)
                 for e in scenario.trace.events("reconnection-unavailable")]
    figures = {
        "monitor_wakeups": sum(t.monitor_wakeups for t in threads),
        "kernel_events": scenario.sim.events_processed,
        "signal_lows": len(lows),
        "reconnection_unavailable": len(fallbacks),
        "bus": scenario.world.stats.bus.as_dict(),
        "wall_s": round(wall_s, 3),
    }
    return figures, {"lows": lows, "fallbacks": fallbacks}


def assert_identical_decisions(polling, event):
    """Same readings, same qualities, same counts; instants within 1 µs."""
    assert len(polling["lows"]) == len(event["lows"]), (
        f"signal-low streams diverged: {len(polling['lows'])} vs "
        f"{len(event['lows'])}")
    for (p_node, p_count, p_quality, p_t), (e_node, e_count, e_quality,
                                            e_t) in zip(polling["lows"],
                                                        event["lows"]):
        assert (p_node, p_count, p_quality) == (e_node, e_count, e_quality)
        assert abs(p_t - e_t) < 1e-6, f"reading drifted: {p_t} vs {e_t}"
    assert len(polling["fallbacks"]) == len(event["fallbacks"])
    for (p_node, p_t), (e_node, e_t) in zip(polling["fallbacks"],
                                            event["fallbacks"]):
        assert p_node == e_node
        assert abs(p_t - e_t) < 1e-6


def write_snapshot(n_nodes, polling, event, path=SNAPSHOT_PATH):
    """Persist the comparison for cross-PR perf tracking."""
    payload = {
        "nodes": n_nodes,
        "duration_s": DURATION_S,
        "walker_fraction": WALKER_FRACTION,
        "polling": polling,
        "event_driven": event,
        "wakeup_reduction": round(
            polling["monitor_wakeups"] / max(1, event["monitor_wakeups"]),
            2),
        "kernel_event_reduction": round(
            polling["kernel_events"] / max(1, event["kernel_events"]), 2),
    }
    return write_bench_snapshot("event_handover", payload, path,
                                n=n_nodes, repeats=1)


def test_event_driven_monitoring_beats_polling():
    polling_figures, polling_stream = run_mode(False, FARM_N)
    event_figures, event_stream = run_mode(True, FARM_N)
    snapshot = write_snapshot(FARM_N, polling_figures, event_figures)
    print_table(
        f"Handover monitoring at N={FARM_N}: polling vs event-driven",
        ["mode", "monitor wakeups", "kernel events", "signal lows",
         "bus scheduled/fired", "wall s"],
        [["polling", polling_figures["monitor_wakeups"],
          polling_figures["kernel_events"], polling_figures["signal_lows"],
          "-", polling_figures["wall_s"]],
         ["event", event_figures["monitor_wakeups"],
          event_figures["kernel_events"], event_figures["signal_lows"],
          (f"{event_figures['bus']['scheduled']}/"
           f"{event_figures['bus']['fired']}"),
          event_figures["wall_s"]]])

    # Identical handover decisions (the polling oracle agrees 1:1).
    assert_identical_decisions(polling_stream, event_stream)
    assert polling_figures["signal_lows"] > 0, "farm produced no action"
    assert polling_figures["reconnection_unavailable"] > 0

    # The acceptance gate: >= 5x fewer monitor wakeups, event-driven.
    reduction = snapshot["wakeup_reduction"]
    assert reduction >= 5.0, (
        f"event-driven monitor wakeup reduction below 5x: {snapshot}")
    assert (event_figures["kernel_events"]
            < polling_figures["kernel_events"])

    # Satellite: the bus counters are exposed and moved during the run.
    bus = event_figures["bus"]
    assert bus["scheduled"] > 0
    assert bus["fired"] > 0
    assert bus["cancelled"] > 0   # thread.stop() cancels pending sleeps
    assert SNAPSHOT_PATH.exists()
