"""Measurement layer: traffic counters, event traces, summary statistics.

The paper's quantitative arguments are about message volume (the Gnutella
comparison, §3.2), connection timing (§4.3) and handover timing (§5.2.1).
This package gives every experiment the same instruments:

* :class:`TrafficMeter` — per-node, per-category message/byte counters;
* :class:`EventTrace` — an append-only timeline of labelled events;
* :func:`summarize` — distribution summary (mean/median/CI95) used by
  the benchmark tables and the experiment report layer;
* :func:`print_table` / :func:`format_table` / :func:`render_csv` —
  the shared table renderers (:mod:`repro.metrics.tables`).
"""

from repro.metrics.counters import BusCounters, TrafficMeter
from repro.metrics.stats import Summary, summarize, t_critical_95
from repro.metrics.tables import format_table, print_table, render_csv
from repro.metrics.trace import EventTrace, TraceEvent

__all__ = [
    "BusCounters",
    "EventTrace",
    "Summary",
    "TraceEvent",
    "TrafficMeter",
    "format_table",
    "print_table",
    "render_csv",
    "summarize",
    "t_critical_95",
]
