"""Example applications built on the PeerHood library API.

These are the workloads of the thesis' experiments:

* :mod:`~repro.apps.message_test` — the §4.3 bridge performance test
  (a client sends a message 20 times at 1 s intervals; the server prints);
* :mod:`~repro.apps.picture_analysis` — the §5.3 picture-analysis task
  migration (upload N packages, remote processing, result routed back);
* :mod:`~repro.apps.coverage_amplification` — the Fig. 6.1 tunnel relay
  (a phone reaches a GPRS gateway through a Bluetooth bridge chain);
* :mod:`~repro.apps.chat` — a small social-networking chat used by the
  examples (§6.2's "free Bluetooth calls / social networking").
"""

from repro.apps.message_test import MessageTestClient, MessageTestServer
from repro.apps.picture_analysis import (
    PictureAnalysisClient,
    PictureAnalysisServer,
    PictureJobResult,
)

__all__ = [
    "MessageTestClient",
    "MessageTestServer",
    "PictureAnalysisClient",
    "PictureAnalysisServer",
    "PictureJobResult",
]
