"""Fixed-position model for servers, PCs and laptops on desks."""

from __future__ import annotations

from repro.mobility.base import MobilityModel, Point


class StaticPosition(MobilityModel):
    """A node that never moves."""

    def __init__(self, x: float, y: float):
        self._point: Point = (float(x), float(y))

    def position(self, t: float) -> Point:
        return self._point

    def is_mobile(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"StaticPosition{self._point}"
