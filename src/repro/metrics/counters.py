"""Traffic counters: who sent how many messages and bytes, by category.

Categories used by the stack:

* ``discovery`` — inquiry fetches and their responses (Ch. 3);
* ``control`` — connection handshakes, acks, disconnects (Ch. 4);
* ``data`` — application payload (including bridge re-transmissions, so a
  two-hop message counts twice — the paper's "double amount of time" for
  interconnection shows up here as double volume);
* ``query`` — the Gnutella baseline's flooded queries (§3.2);
* ``dtn-data`` / ``dtn-control`` — bundle payloads and summary vectors
  exchanged by the store-carry-forward plane (:mod:`repro.dtn`).

:class:`BusCounters` instruments the connectivity-event bus
(:mod:`repro.radio.bus`) — it lives here so the metrics layer owns every
benchmark-asserted counter shape, and surfaces as ``world.stats.bus``.
"""

from __future__ import annotations

import collections
import dataclasses


@dataclasses.dataclass
class BusCounters:
    """Connectivity-event-bus activity (``world.stats.bus``).

    Attributes
    ----------
    scheduled:
        Predicted crossings turned into kernel events (``call_at``).
    fired:
        Connectivity events delivered to watch callbacks.
    cancelled:
        Watches cancelled before their next event fired (power-off,
        node removal, link teardown, monitor stop).
    rescheduled:
        Re-arms without a firing: horizon rollover re-checks plus
        re-predictions after a quality-override change invalidated the
        outstanding schedule.
    """

    scheduled: int = 0
    fired: int = 0
    cancelled: int = 0
    rescheduled: int = 0

    def reset(self) -> None:
        """Zero all counters (between benchmark rounds)."""
        self.scheduled = 0
        self.fired = 0
        self.cancelled = 0
        self.rescheduled = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot for JSON benchmark artifacts."""
        return {
            "scheduled": self.scheduled,
            "fired": self.fired,
            "cancelled": self.cancelled,
            "rescheduled": self.rescheduled,
        }


@dataclasses.dataclass
class DtnCounters:
    """Store-carry-forward data-plane activity (:mod:`repro.dtn`).

    One instance per :class:`~repro.dtn.forwarder.DtnPlane`; the DTN
    benchmarks and the ``dtn`` / ``dtn_bandwidth`` workloads read
    these.  Counts are bundle copies except the ``bytes_*`` pair, which
    meters the bandwidth-limited data plane's byte flow (per-node byte
    volume additionally rides the shared :class:`TrafficMeter` under
    the ``dtn-data`` / ``dtn-control`` categories).

    Attributes
    ----------
    created:
        Bundles injected by :meth:`~repro.dtn.forwarder.DtnPlane.send`.
    transmissions:
        Bundle copies pushed over a contact (relays *and* final
        deliveries; the overhead ratio is ``transmissions / delivered``).
    delivered:
        Bundles that reached their destination (first copy only).
    duplicates:
        Copies offered to a node that had already seen the bundle —
        zero under summary-vector dedup, counted to prove it.
    expired:
        Copies dropped because their TTL ran out (lazy sweeps at
        contact/send instants — expiry costs no timer wakeups).
    evicted:
        Copies dropped by a capacity-eviction policy making room.
    dropped_dead:
        Copies lost because their custodian was powered off / removed
        mid-carry (the churn path; never delivered post-mortem).
    bytes_offered:
        Bytes the routers *wanted* to move when a bandwidth-limited
        contact opened (sum of the remaining sizes of both directions'
        offers — see :mod:`repro.dtn.capacity`).  Compared against
        ``bytes_transferred`` this is the capacity-pressure gauge.
    bytes_transferred:
        Bundle-payload bytes actually moved over bandwidth-limited
        contacts (partial legs included).  Never exceeds any contact's
        ``window_duration × data_rate`` byte budget (property-tested).
    transfers_truncated:
        Transfers cut short by the contact window — either the byte
        budget ran out mid-bundle or the LinkDown instant arrived with
        the bundle still in flight.  The received prefix is kept by the
        peer's store for partial-transfer resume.
    transfers_cancelled:
        In-flight transfers killed by churn: an endpoint was powered
        off / removed mid-transfer.  Nothing is credited.
    """

    created: int = 0
    transmissions: int = 0
    delivered: int = 0
    duplicates: int = 0
    expired: int = 0
    evicted: int = 0
    dropped_dead: int = 0
    bytes_offered: int = 0
    bytes_transferred: int = 0
    transfers_truncated: int = 0
    transfers_cancelled: int = 0

    def reset(self) -> None:
        """Zero all counters (between benchmark rounds)."""
        self.created = 0
        self.transmissions = 0
        self.delivered = 0
        self.duplicates = 0
        self.expired = 0
        self.evicted = 0
        self.dropped_dead = 0
        self.bytes_offered = 0
        self.bytes_transferred = 0
        self.transfers_truncated = 0
        self.transfers_cancelled = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot for JSON benchmark artifacts."""
        return {
            "created": self.created,
            "transmissions": self.transmissions,
            "delivered": self.delivered,
            "duplicates": self.duplicates,
            "expired": self.expired,
            "evicted": self.evicted,
            "dropped_dead": self.dropped_dead,
            "bytes_offered": self.bytes_offered,
            "bytes_transferred": self.bytes_transferred,
            "transfers_truncated": self.transfers_truncated,
            "transfers_cancelled": self.transfers_cancelled,
        }


@dataclasses.dataclass
class FaultCounters:
    """Fault-injection activity (:mod:`repro.faults`).

    One instance per :class:`~repro.faults.plane.FaultPlane`; the
    ``dtn_faults`` workload and ``bench_fault_tolerance`` read these.

    Attributes
    ----------
    crashes:
        Crash-reboot outages begun: the node went dark and its DTN
        state (store, summary vector, router tables) was wiped.
    reboots:
        Outages ended: the node returned at its mobility position,
        rediscoverable and empty-handed.  At most ``crashes`` (a node
        removed mid-outage never reboots).
    jammed_deliveries:
        Transfer attempts suppressed because an endpoint sat inside a
        mobile jammer's coverage disk at the attempt instant.
    byzantine_beacons:
        Summary-vector advertisements falsified by a byzantine node —
        it claimed to have seen nothing, attracting duplicate copies
        that waste transmissions and contact bytes.
    """

    crashes: int = 0
    reboots: int = 0
    jammed_deliveries: int = 0
    byzantine_beacons: int = 0

    def reset(self) -> None:
        """Zero all counters (between benchmark rounds)."""
        self.crashes = 0
        self.reboots = 0
        self.jammed_deliveries = 0
        self.byzantine_beacons = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot for JSON benchmark artifacts."""
        return {
            "crashes": self.crashes,
            "reboots": self.reboots,
            "jammed_deliveries": self.jammed_deliveries,
            "byzantine_beacons": self.byzantine_beacons,
        }


@dataclasses.dataclass
class PhyCounters:
    """Lossy physical-layer activity (:mod:`repro.radio.phy`).

    One instance per :class:`~repro.radio.phy.PhyPlane`; the
    ``dtn_phy`` workload and ``bench_phy`` read these.  Counts are
    individual transmissions (bundle copies, control vectors, link
    frames, bandwidth-plane legs).

    Attributes
    ----------
    offered:
        Transmissions put on the air (every :meth:`~repro.radio.phy.
        PhyPlane.begin`).  Resolved transmissions satisfy ``offered ==
        delivered + lost_fading + lost_collision``; bandwidth-plane
        legs cancelled mid-air (churn/truncation) are offered but never
        resolved, so the sum may fall short of ``offered`` by exactly
        the abandoned legs.
    delivered:
        Transmissions that survived fading and contention (includes
        captures).
    lost_fading:
        Transmissions whose shadowed received power fell below the
        technology's (possibly jammer-raised) sensitivity threshold.
    lost_collision:
        Transmissions lost to a concurrent overlapping transmission at
        the same receiver without the capture margin.
    captured:
        Delivered *despite* overlap — the strong-signal capture effect
        (a subset of ``delivered``).
    """

    offered: int = 0
    delivered: int = 0
    lost_fading: int = 0
    lost_collision: int = 0
    captured: int = 0

    def reset(self) -> None:
        """Zero all counters (between benchmark rounds)."""
        self.offered = 0
        self.delivered = 0
        self.lost_fading = 0
        self.lost_collision = 0
        self.captured = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot for JSON benchmark artifacts."""
        return {
            "offered": self.offered,
            "delivered": self.delivered,
            "lost_fading": self.lost_fading,
            "lost_collision": self.lost_collision,
            "captured": self.captured,
        }


@dataclasses.dataclass
class _Bucket:
    messages: int = 0
    bytes: int = 0


class TrafficMeter:
    """Nested counters: (node, category) → messages / bytes."""

    def __init__(self) -> None:
        self._buckets: dict[tuple[str, str], _Bucket] = (
            collections.defaultdict(_Bucket))

    def count(self, node: str, category: str, size_bytes: int,
              messages: int = 1) -> None:
        """Record ``messages`` messages totalling ``size_bytes`` bytes."""
        if size_bytes < 0:
            raise ValueError(f"negative byte count: {size_bytes}")
        bucket = self._buckets[(node, category)]
        bucket.messages += messages
        bucket.bytes += size_bytes

    def messages(self, node: str | None = None,
                 category: str | None = None) -> int:
        """Total messages, filtered by node and/or category."""
        return sum(bucket.messages
                   for (n, c), bucket in self._buckets.items()
                   if (node is None or n == node)
                   and (category is None or c == category))

    def bytes(self, node: str | None = None,
              category: str | None = None) -> int:
        """Total bytes, filtered by node and/or category."""
        return sum(bucket.bytes
                   for (n, c), bucket in self._buckets.items()
                   if (node is None or n == node)
                   and (category is None or c == category))

    def nodes(self) -> list[str]:
        """Every node that has sent anything, sorted."""
        return sorted({n for n, _ in self._buckets})

    def categories(self) -> list[str]:
        """Every category seen, sorted."""
        return sorted({c for _, c in self._buckets})

    def per_node(self, category: str | None = None) -> dict[str, int]:
        """Message counts keyed by node."""
        return {node: self.messages(node=node, category=category)
                for node in self.nodes()}

    def reset(self) -> None:
        """Zero all counters (between benchmark repetitions)."""
        self._buckets.clear()
