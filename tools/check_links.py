#!/usr/bin/env python
"""Intra-repo Markdown link checker (the `make docs-check` gate).

Scans README.md, CHANGES.md, ROADMAP.md and every Markdown file under
docs/ for inline links `[text](target)` and validates the *repo-local*
ones:

* relative file targets must exist (resolved against the linking file);
* `#anchor` fragments — both cross-file (`FILE.md#anchor`) and
  intra-doc (`#anchor`) — must match a heading in the target file
  (GitHub-style slugs: lowercase, punctuation stripped, spaces to
  dashes);
* duplicate anchors are an error: two headings in one file slugifying
  identically make every link to that slug ambiguous (GitHub silently
  renames the second to `slug-1` — house style is unique headings);
* absolute URLs (http/https/mailto) are out of scope — CI must not
  flake on the network.

Exit status 0 when every link resolves; 1 with one line per broken
link otherwise.  Stdlib only (the container bakes in no extra deps).
"""

from __future__ import annotations

import functools
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Files checked: the top-level entry points plus everything in docs/.
SOURCES = ("README.md", "CHANGES.md", "ROADMAP.md")

#: `[text](target)` — good enough for the repo's hand-written Markdown;
#: images (`![alt](src)`) match too and are checked the same way.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Markdown headings, for anchor validation.
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"[`*_~]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


@functools.lru_cache(maxsize=None)
def heading_slugs(path: pathlib.Path) -> tuple[str, ...]:
    """Every heading slug in a Markdown file, in document order.

    Cached per path: a README with N anchor links into one target
    parses that target once, not N times.
    """
    return tuple(slugify(match.group(1))
                 for match in HEADING_RE.finditer(
                     path.read_text(encoding="utf-8")))


def anchors_of(path: pathlib.Path) -> set[str]:
    """Every heading slug in a Markdown file."""
    return set(heading_slugs(path))


def duplicate_anchors(path: pathlib.Path) -> list[str]:
    """Heading slugs appearing more than once, in first-seen order."""
    seen: set[str] = set()
    duplicates: list[str] = []
    for slug in heading_slugs(path):
        if slug in seen and slug not in duplicates:
            duplicates.append(slug)
        seen.add(slug)
    return duplicates


def check_file(path: pathlib.Path) -> list[str]:
    """Broken-link and duplicate-anchor descriptions for one file."""
    problems = []
    text = path.read_text(encoding="utf-8")
    relative_name = path.relative_to(REPO_ROOT)
    for slug in duplicate_anchors(path):
        problems.append(
            f"{relative_name}: duplicate anchor: #{slug}")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        base, _, fragment = target.partition("#")
        if not base:   # same-file anchor
            destination = path
        else:
            destination = (path.parent / base).resolve()
            try:
                destination.relative_to(REPO_ROOT)
            except ValueError:
                problems.append(
                    f"{relative_name}: link escapes the repo: {target}")
                continue
            if not destination.exists():
                problems.append(
                    f"{relative_name}: missing target: {target}")
                continue
        if fragment and destination.suffix == ".md":
            if slugify(fragment) not in anchors_of(destination):
                problems.append(
                    f"{relative_name}: no heading for anchor: {target}")
    return problems


def main() -> int:
    sources = [REPO_ROOT / name for name in SOURCES
               if (REPO_ROOT / name).exists()]
    sources += sorted((REPO_ROOT / "docs").glob("*.md"))
    problems = []
    for path in sources:
        problems.extend(check_file(path))
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"docs link check: {len(problems)} broken link(s) "
              f"in {len(sources)} file(s)", file=sys.stderr)
        return 1
    print(f"docs link check: {len(sources)} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
