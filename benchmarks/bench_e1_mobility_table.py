"""E1 — the §3.4.3 mobility-addition table.

Paper artifact: the unnumbered table listing all nine mobility-class
pair sums (0+0=0 ... 3+3=6), "the smaller the mobility number is, the
better would be the stability of the connection".
"""

from repro.core.device import MobilityClass, mobility_addition
from paperbench import print_table

PAPER_TABLE = {
    ("STATIC", "STATIC"): 0,
    ("STATIC", "HYBRID"): 1,
    ("HYBRID", "STATIC"): 1,
    ("HYBRID", "HYBRID"): 2,
    ("STATIC", "DYNAMIC"): 3,
    ("DYNAMIC", "STATIC"): 3,
    ("HYBRID", "DYNAMIC"): 4,
    ("DYNAMIC", "HYBRID"): 4,
    ("DYNAMIC", "DYNAMIC"): 6,
}


def run_table():
    measured = {}
    for first in MobilityClass:
        for second in MobilityClass:
            measured[(first.name, second.name)] = mobility_addition(
                first, second)
    return measured


def test_e1_mobility_addition_table(benchmark):
    measured = benchmark(run_table)
    rows = []
    for pair, expected in PAPER_TABLE.items():
        got = measured[pair]
        rows.append([f"{pair[0].lower()}+{pair[1].lower()}",
                     expected, got, "ok" if got == expected else "MISMATCH"])
        assert got == expected, f"{pair}: paper {expected}, measured {got}"
    print_table("E1: §3.4.3 mobility addition (paper vs measured)",
                ["pair", "paper", "measured", "match"], rows)
    benchmark.extra_info["all_match"] = True
    # Stability ordering: lower sum = preferred bridge pairing.
    assert measured[("STATIC", "STATIC")] < measured[
        ("DYNAMIC", "DYNAMIC")]
