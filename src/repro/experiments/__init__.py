"""Experiment orchestration: declarative sweeps over the simulation.

The paper's evaluation is a *campaign* — discovery latency, handover
success and routing overhead measured across topologies, radio mixes and
node counts.  This package turns such campaigns into data:

* :mod:`~repro.experiments.registry` — scenario names → factories with
  typed parameter schemas;
* :mod:`~repro.experiments.spec` — :class:`ExperimentSpec`, a parameter
  grid (scenario × params × repeats) with per-run seeds derived from
  ``(master_seed, run label)``, independent of execution order;
* :mod:`~repro.experiments.workloads` — what a single run measures
  (discovery convergence, handover decay, scale rounds, …);
* :mod:`~repro.experiments.runner` — serial or multiprocess execution
  with byte-identical JSONL output at any worker count;
* :mod:`~repro.experiments.report` — fold repeats into
  :class:`~repro.metrics.stats.Summary` rows, render tables and CSV;
* :mod:`~repro.experiments.specs` — the bundled campaigns
  (``demo_sweep`` and the benchmark-backing sweeps);
* :mod:`~repro.experiments.cli` — ``python -m repro.experiments
  list|run|report``.

Dataflow: spec → expand (grid of seeded run points) → runner (workload
per point, 1..N processes) → JSONL sink → aggregate → CSV/tables.
"""

from repro.experiments.registry import (
    Param,
    ScenarioEntry,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.experiments.report import (
    AggregateRow,
    aggregate,
    aggregate_csv,
    aggregate_table,
    write_csv,
)
from repro.experiments.runner import (
    RunResult,
    execute_point,
    read_jsonl,
    run_spec,
    write_jsonl,
)
from repro.experiments.spec import ExperimentSpec, RunPoint, run_label
from repro.experiments.specs import get_spec, register_spec, spec_names
from repro.experiments.workloads import (
    get_workload,
    register_workload,
    workload_names,
)

__all__ = [
    "AggregateRow",
    "ExperimentSpec",
    "Param",
    "RunPoint",
    "RunResult",
    "ScenarioEntry",
    "aggregate",
    "aggregate_csv",
    "aggregate_table",
    "build_scenario",
    "execute_point",
    "get_scenario",
    "get_spec",
    "get_workload",
    "read_jsonl",
    "register_scenario",
    "register_spec",
    "register_workload",
    "run_label",
    "run_spec",
    "scenario_names",
    "spec_names",
    "workload_names",
    "write_csv",
    "write_jsonl",
]
