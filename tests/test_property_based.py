"""Property-based tests (hypothesis) on core data structures & invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.config import RoutingPolicy
from repro.core.device import (
    DeviceIdentity,
    MobilityClass,
    address_for,
    mobility_addition,
)
from repro.core.device_storage import DeviceStorage
from repro.core.protocol import NeighbourEntry
from repro.core.routing import RouteMetrics, best_route, is_better_route
from repro.metrics.stats import percentile, summarize
from repro.mobility import PathMovement, RandomWaypoint, StaticPosition
from repro.radio import BLUETOOTH, WLAN, World
from repro.radio.quality import (
    QUALITY_MAX,
    PiecewiseLinearQuality,
    clamp_quality,
)
from repro.sim import Simulator

mobility_classes = st.sampled_from(list(MobilityClass))

routes = st.builds(
    RouteMetrics,
    jump=st.integers(min_value=0, max_value=8),
    first_hop_mobility=mobility_classes,
    quality_sum=st.integers(min_value=0, max_value=2000),
    min_link_quality=st.integers(min_value=0, max_value=255),
)

policies = st.builds(
    RoutingPolicy,
    quality_threshold=st.integers(min_value=0, max_value=255),
    use_quality_threshold=st.booleans(),
    use_mobility=st.booleans(),
    quality_first=st.booleans(),
    max_jump=st.integers(min_value=0, max_value=10),
)


# ----------------------------------------------------------------------
# routing order properties
# ----------------------------------------------------------------------
@given(routes, policies)
def test_route_is_never_better_than_itself(route, policy):
    assert not is_better_route(route, route, policy)


@given(routes, routes, policies)
def test_route_preference_is_asymmetric(a, b, policy):
    if is_better_route(a, b, policy):
        assert not is_better_route(b, a, policy)


@given(routes, routes, routes, policies)
def test_route_preference_is_transitive(a, b, c, policy):
    if is_better_route(a, b, policy) and is_better_route(b, c, policy):
        assert is_better_route(a, c, policy)


@given(st.lists(routes, min_size=1, max_size=8), policies)
def test_best_route_is_undominated(candidates, policy):
    winner = best_route(candidates, policy)
    assert winner in candidates
    for other in candidates:
        assert not is_better_route(other, winner, policy)


@given(routes, st.integers(min_value=0, max_value=255), mobility_classes)
def test_extend_monotone_in_jump_and_quality(route, link_quality, mobility):
    extended = route.extend(link_quality, mobility)
    assert extended.jump == route.jump + 1
    assert extended.quality_sum == route.quality_sum + link_quality
    assert extended.min_link_quality <= route.min_link_quality
    assert extended.min_link_quality <= link_quality
    assert extended.first_hop_mobility is mobility


# ----------------------------------------------------------------------
# mobility & identity properties
# ----------------------------------------------------------------------
@given(mobility_classes, mobility_classes)
def test_mobility_addition_bounds(a, b):
    total = mobility_addition(a, b)
    assert 0 <= total <= 6
    assert total == int(a) + int(b)


@given(st.text(min_size=1, max_size=40))
def test_address_is_stable_and_shaped(name):
    first = address_for(name)
    assert first == address_for(name)
    parts = first.split(":")
    assert len(parts) == 6
    assert all(len(p) == 2 and all(c in "0123456789abcdef" for c in p)
               for p in parts)


# ----------------------------------------------------------------------
# quality model properties
# ----------------------------------------------------------------------
@given(st.floats(min_value=0.0, max_value=100.0),
       st.floats(min_value=1.0, max_value=100.0))
def test_piecewise_quality_bounded(distance, range_m):
    model = PiecewiseLinearQuality()
    value = model.quality(distance, range_m)
    assert 0 <= value <= QUALITY_MAX


@given(st.floats(min_value=1.0, max_value=100.0),
       st.lists(st.floats(min_value=0.0, max_value=1.5),
                min_size=2, max_size=20))
def test_piecewise_quality_monotone_nonincreasing(range_m, fractions):
    model = PiecewiseLinearQuality()
    distances = sorted(f * range_m for f in fractions)
    values = [model.quality(d, range_m) for d in distances]
    assert values == sorted(values, reverse=True)


@given(st.floats(min_value=-1000, max_value=1000))
def test_clamp_quality_always_in_scale(value):
    assert 0 <= clamp_quality(value) <= QUALITY_MAX


# ----------------------------------------------------------------------
# storage invariants under random update sequences
# ----------------------------------------------------------------------
names = st.sampled_from([f"dev{i}" for i in range(6)])


@st.composite
def storage_operations(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        kind = draw(st.sampled_from(["direct", "analyze", "age"]))
        if kind == "direct":
            ops.append(("direct", draw(names),
                        draw(st.integers(min_value=1, max_value=255)),
                        draw(mobility_classes)))
        elif kind == "analyze":
            reporter = draw(names)
            advertised = draw(st.lists(
                st.tuples(names,
                          st.integers(min_value=0, max_value=4),
                          st.integers(min_value=1, max_value=255)),
                max_size=4))
            ops.append(("analyze", reporter, advertised))
        else:
            ops.append(("age",))
    return ops


@given(storage_operations())
@settings(max_examples=60, deadline=None)
def test_storage_invariants_hold_under_any_sequence(operations):
    own = DeviceIdentity.create("own-node")
    storage = DeviceStorage(own_address=own.address, stale_after_loops=2)
    now = 0.0
    for op in operations:
        now += 1.0
        if op[0] == "direct":
            _, name, quality, mobility = op
            storage.update_direct(
                DeviceIdentity.create(name, mobility), "bluetooth",
                quality, [], now=now)
        elif op[0] == "analyze":
            _, reporter_name, advertised = op
            reporter = storage.get(DeviceIdentity.create(reporter_name)
                                   .address)
            if reporter is None or not reporter.is_direct():
                continue
            entries = [NeighbourEntry(
                address=DeviceIdentity.create(n).address, name=n,
                prototype="bluetooth", mobility=MobilityClass.DYNAMIC,
                jump=j, route_quality_sum=q, route_min_quality=q)
                for n, j, q in advertised]
            storage.analyze_neighbourhood(reporter, entries, now=now)
        else:
            responded = [d.address for d in storage.direct_devices()[::2]]
            storage.make_older(responded)
        # Invariants after every operation:
        for device in storage.devices():
            # 1. own device never stored
            assert device.address != own.address
            # 2. direct entries have no bridge; remote entries have one
            if device.is_direct():
                assert device.bridge is None
            else:
                assert device.bridge is not None
                # 3. every bridge is a stored *direct* device
                bridge = storage.get(device.bridge)
                assert bridge is not None and bridge.is_direct()
                # 4. remote jumps never exceed the policy cap
                assert device.jump <= storage.policy.max_jump
            # 5. quality figures stay on the scale
            assert device.route.min_link_quality <= device.route.quality_sum


# ----------------------------------------------------------------------
# spatial grid vs brute force: the neighbor oracle
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=10_000),
       count=st.integers(min_value=2, max_value=18),
       steps=st.lists(st.floats(min_value=0.1, max_value=60.0),
                      min_size=1, max_size=5),
       removals=st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_grid_neighbors_equal_brute_force_under_motion(
        seed, count, steps, removals):
    """Grid-backed ``neighbors()`` must equal the O(N) pairwise result at
    every instant, for every node and technology, under random-waypoint
    motion, mixed radios, mixed static/mobile nodes and mid-run node
    removal (ISSUE 1 acceptance criterion)."""
    sim = Simulator(seed=seed)
    world = World(sim)
    for index in range(count):
        name = f"n{index}"
        if index % 4 == 0:
            mobility = StaticPosition(7.0 * index, 3.0 * (index % 3))
        else:
            mobility = RandomWaypoint(
                sim.rng(f"rwp/{name}"), area=(45.0, 45.0),
                speed_range=(0.5, 4.0), pause_range=(0.0, 5.0))
        technologies = (["bluetooth"] if index % 3 else ["bluetooth", "wlan"])
        world.add_node(name, mobility, technologies)

    def check_all():
        for node_id in world.node_ids():
            for tech in (BLUETOOTH, WLAN):
                assert (world.neighbors(node_id, tech)
                        == world.neighbors_brute_force(node_id, tech)), (
                    node_id, tech.name, sim.now)

    check_all()
    for index, step in enumerate(steps):
        sim.timeout(step)
        sim.run()
        if index < removals and len(world.node_ids()) > 1:
            world.remove_node(world.node_ids()[index % len(world.node_ids())])
        check_all()


# ----------------------------------------------------------------------
# vectorized engine vs scalar grid: the batch-geometry oracle
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=10_000),
       count=st.integers(min_value=2, max_value=18),
       steps=st.lists(st.floats(min_value=0.1, max_value=60.0),
                      min_size=1, max_size=5),
       removals=st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_vector_neighbors_equal_scalar_under_motion(
        seed, count, steps, removals):
    """The numpy batch engine's ``all_neighbors`` must equal the scalar
    grid result at every instant, for every technology, under
    random-waypoint motion, mixed radios, mixed static/mobile nodes and
    mid-run node removal (PR 8 acceptance criterion).  Same world
    recipe as the grid-vs-brute-force oracle above, so the three
    discovery paths are pinned pairwise equal."""
    import pytest

    from repro.radio.vectorized import numpy_available
    if not numpy_available():
        pytest.skip("numpy not installed")
    sim = Simulator(seed=seed)
    world = World(sim)
    for index in range(count):
        name = f"n{index}"
        if index % 4 == 0:
            mobility = StaticPosition(7.0 * index, 3.0 * (index % 3))
        else:
            mobility = RandomWaypoint(
                sim.rng(f"rwp/{name}"), area=(45.0, 45.0),
                speed_range=(0.5, 4.0), pause_range=(0.0, 5.0))
        technologies = (["bluetooth"] if index % 3 else ["bluetooth", "wlan"])
        world.add_node(name, mobility, technologies)

    def check_all():
        for tech in (BLUETOOTH, WLAN):
            scalar = world.all_neighbors(tech)
            for node_id, neighbors in (
                    world.all_neighbors_vectorized(tech).items()):
                assert neighbors == scalar[node_id], (
                    node_id, tech.name, sim.now)

    check_all()
    for index, step in enumerate(steps):
        sim.timeout(step)
        sim.run()
        if index < removals and len(world.node_ids()) > 1:
            world.remove_node(world.node_ids()[index % len(world.node_ids())])
        check_all()


# ----------------------------------------------------------------------
# statistics properties
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
def test_summary_bounds(values):
    summary = summarize(values)
    # fmean can overshoot min/max by an ulp on identical values; allow it.
    slack = 1e-9 * max(1.0, abs(summary.minimum), abs(summary.maximum))
    assert summary.minimum - slack <= summary.mean <= (
        summary.maximum + slack)
    assert summary.minimum <= summary.median <= summary.maximum
    assert summary.count == len(values)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50),
       st.floats(min_value=0.0, max_value=1.0))
def test_percentile_within_range(values, fraction):
    result = percentile(values, fraction)
    assert min(values) <= result <= max(values)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=2, max_size=30),
       st.floats(min_value=0.0, max_value=0.5))
def test_percentile_monotone_in_fraction(values, fraction):
    low = percentile(values, fraction)
    high = percentile(values, 1.0 - fraction)
    assert low <= high


# ----------------------------------------------------------------------
# mobility model properties
# ----------------------------------------------------------------------
@given(st.lists(
    st.tuples(st.floats(min_value=0, max_value=1000),
              st.tuples(st.floats(min_value=-100, max_value=100),
                        st.floats(min_value=-100, max_value=100))),
    min_size=1, max_size=8),
    st.floats(min_value=-10, max_value=1100))
def test_path_movement_stays_within_waypoint_bounding_box(waypoints, t):
    waypoints = sorted(waypoints, key=lambda w: w[0])
    model = PathMovement(waypoints)
    x, y = model.position(t)
    xs = [p[0] for _, p in model.waypoints]
    ys = [p[1] for _, p in model.waypoints]
    assert min(xs) - 1e-9 <= x <= max(xs) + 1e-9
    assert min(ys) - 1e-9 <= y <= max(ys) + 1e-9
