"""Contact-capacity gates: PRoPHET vs epidemic under tight bandwidth.

Backs the bandwidth-limited contact data plane (:mod:`repro.dtn.
capacity`).  Three gates, all written into
``BENCH_contact_capacity.json`` at the repo root:

1. **Router ordering under constraint** — the bundled
   ``bandwidth_sweep`` spec runs through the experiment runner (once
   with 1 worker, once with 2; JSONL and CSV bytes must match), and
   PRoPHET must match or beat epidemic on delivery ratio in **every**
   run of the grid.  The comparison is paired (identical mobility and
   injections per router), so the ordering is structural: epidemic
   spends scarce window bytes flooding unproductive copies — most
   visibly bus → villager relays that can never advance a bundle —
   while PRoPHET's GRTR rule refuses them.
2. **The constraint binds** — every epidemic run in the sweep must
   report ``transfers_truncated > 0``: the byte budgets actually cut
   transfers, this is not an infinite-bandwidth rerun.
3. **Capacity only hurts** — a rural-bus farm at ``N`` villagers
   (default 120, ``BENCH_CAP_N`` shrinks it in CI) runs identical
   epidemic workloads under the bandwidth-limited plane at a
   constrained 24 kB/s and under the PR 4 infinite-bandwidth overlay;
   the constrained run must deliver no more than the infinite one and
   must truncate transfers, while the infinite run keeps the plane's
   established delivery behaviour.
"""

import os
import pathlib
import time

from repro.analysis.snapshots import write_bench_snapshot
from repro.dtn import BandwidthDtnOverlay, DtnOverlay, make_router
from repro.dtn.traffic import generate_traffic, schedule_traffic
from repro.experiments.report import aggregate, write_csv
from repro.experiments.runner import run_spec, write_jsonl
from repro.experiments.specs import get_spec
from repro.scenarios import rural_bus_dtn

from paperbench import print_table

SNAPSHOT_PATH = (pathlib.Path(__file__).resolve().parent.parent
                 / "BENCH_contact_capacity.json")

#: Villager count for the capacity farm; CI shrinks it via env.
FARM_N = int(os.environ.get("BENCH_CAP_N", "120"))
#: Constrained effective data rate for the farm, bytes/second.
FARM_RATE_BPS = 24_000.0
#: Simulated time per farm mode, seconds (~4 bus cycles + drain).
DURATION_S = 600.0
#: Messages injected (uniform pattern over villagers + bus).
MESSAGE_COUNT = 40
#: Bundle payload, bytes (the §6 picture-migration scale).
SIZE_BYTES = 200_000


def run_sweep(tmp_dir: pathlib.Path):
    """Execute bandwidth_sweep at 1 and 2 workers; returns the records."""
    spec = get_spec("bandwidth_sweep")
    outputs = {}
    for workers in (1, 2):
        results = run_spec(spec, workers=workers)
        records = [result.record for result in results]
        out = tmp_dir / f"w{workers}"
        jsonl = write_jsonl(records, out / "runs.jsonl")
        csv = write_csv(aggregate(records), out / "summary.csv")
        outputs[workers] = (jsonl.read_bytes(), csv.read_bytes(), records)
    assert outputs[1][0] == outputs[2][0], (
        "bandwidth_sweep runs.jsonl differs between 1 and 2 workers")
    assert outputs[1][1] == outputs[2][1], (
        "bandwidth_sweep summary.csv differs between 1 and 2 workers")
    return outputs[1][2]


def run_farm(constrained: bool, n_nodes: int):
    """One epidemic run over the rural-bus farm; returns the figures."""
    started = time.perf_counter()
    scenario = rural_bus_dtn(count=n_nodes, seed=31)
    router = make_router("epidemic")
    if constrained:
        plane = BandwidthDtnOverlay(scenario.world, router,
                                    meter=scenario.meter,
                                    data_rate_Bps=FARM_RATE_BPS)
    else:
        plane = DtnOverlay(scenario.world, router, meter=scenario.meter)
    injections = generate_traffic(
        scenario.sim.rng("dtn/traffic"), plane.live_nodes(), "uniform",
        MESSAGE_COUNT, window=(120.0, DURATION_S / 2.0),
        size_bytes=SIZE_BYTES, ttl_s=480.0)
    schedule_traffic(plane, injections)
    scenario.run(until=DURATION_S)
    plane.detach()
    counters = plane.counters
    return {
        "mode": "constrained" if constrained else "infinite",
        "delivery_ratio": round(plane.delivery_ratio(), 4),
        "delivered_ids": sorted(plane.delivered),
        "transmissions": counters.transmissions,
        "bytes_transferred": counters.bytes_transferred,
        "transfers_truncated": counters.transfers_truncated,
        "wakeups": plane.wakeups,
        "kernel_events": scenario.sim.events_processed,
        "wall_s": round(time.perf_counter() - started, 3),
    }


def write_snapshot(records, constrained, infinite, path=SNAPSHOT_PATH):
    """Persist all gates for cross-PR perf tracking."""
    routers = ("epidemic", "spray", "prophet")
    per_run = [{
        "scenario": record["scenario"],
        "params": record["params"],
        "repeat": record["repeat"],
        **{name: record["metrics"][f"{name}_delivery_ratio"]
           for name in routers},
        "epidemic_truncated":
            record["metrics"]["epidemic_transfers_truncated"],
    } for record in records]
    payload = {
        "sweep": {
            "runs": len(records),
            "per_run": per_run,
            "mean_delivery_ratio": {
                name: round(sum(r[name] for r in per_run)
                            / len(per_run), 4)
                for name in routers},
            "prophet_beats_epidemic_in_every_run": all(
                r["prophet"] >= r["epidemic"] for r in per_run),
        },
        "farm_nodes": FARM_N,
        "farm_rate_Bps": FARM_RATE_BPS,
        "duration_s": DURATION_S,
        "constrained": {k: v for k, v in constrained.items()
                        if k != "delivered_ids"},
        "infinite": {k: v for k, v in infinite.items()
                     if k != "delivered_ids"},
    }
    return write_bench_snapshot(
        "contact_capacity", payload, path, n=FARM_N,
        repeats=max(r["repeat"] for r in records) + 1)


def test_contact_capacity_gates(tmp_path):
    records = run_sweep(tmp_path)

    for record in records:
        metrics = record["metrics"]
        label = (f"{record['scenario']} {record['params']} "
                 f"rep{record['repeat']}")
        # Gate 1: PRoPHET >= epidemic on delivery ratio, per run.
        assert (metrics["prophet_delivery_ratio"]
                >= metrics["epidemic_delivery_ratio"]), (
            f"prophet lost to epidemic in {label}: {metrics}")
        # Gate 2: the byte budgets actually cut transfers.
        assert metrics["epidemic_transfers_truncated"] > 0, (
            f"no truncation in {label} — the sweep is unconstrained")
        # PRoPHET's selectivity must not cost extra transmissions.
        assert (metrics["prophet_transmissions"]
                <= metrics["epidemic_transmissions"])

    constrained = run_farm(constrained=True, n_nodes=FARM_N)
    infinite = run_farm(constrained=False, n_nodes=FARM_N)
    snapshot = write_snapshot(records, constrained, infinite)

    print_table(
        f"rural-bus farm at N={FARM_N}: constrained (24 kB/s) vs "
        f"infinite bandwidth",
        ["mode", "delivery", "transmissions", "bytes moved",
         "truncated", "wall s"],
        [[f["mode"], f["delivery_ratio"], f["transmissions"],
          f["bytes_transferred"], f["transfers_truncated"], f["wall_s"]]
         for f in (constrained, infinite)])
    print_table(
        "bandwidth_sweep mean delivery ratio by router",
        ["router", "mean ratio"],
        [[name, value] for name, value in sorted(
            snapshot["sweep"]["mean_delivery_ratio"].items())])

    # Gate 3: capacity only hurts, and the constraint binds at scale.
    assert (constrained["delivery_ratio"]
            <= infinite["delivery_ratio"]), snapshot
    assert constrained["transfers_truncated"] > 0
    assert set(constrained["delivered_ids"]) <= set(
        infinite["delivered_ids"])
    assert infinite["delivery_ratio"] > 0.0
    assert SNAPSHOT_PATH.exists()
