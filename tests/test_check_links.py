"""Tests for tools/check_links.py (the `make docs-check` gate).

Covers the slugifier, cross-file and *intra-doc* anchor validation,
and the duplicate-anchor rule (two headings slugifying identically are
an error — every link to that slug would be ambiguous).
"""

import importlib.util
import pathlib

import pytest

_TOOL = (pathlib.Path(__file__).resolve().parent.parent
         / "tools" / "check_links.py")
_spec = importlib.util.spec_from_file_location("check_links", _TOOL)
check_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_links)


@pytest.fixture
def doc_root(tmp_path, monkeypatch):
    """A throwaway repo root so escape checks accept tmp files."""
    monkeypatch.setattr(check_links, "REPO_ROOT", tmp_path)
    check_links.heading_slugs.cache_clear()   # paths are per-test
    return tmp_path


def test_slugify_matches_github_style():
    assert check_links.slugify("Heading One") == "heading-one"
    assert check_links.slugify("`code` & *stars*!") == "code--stars"
    assert check_links.slugify("Data plane (DTN)") == "data-plane-dtn"


def test_same_file_anchor_links_are_validated(doc_root):
    page = doc_root / "page.md"
    page.write_text("# Top\n\n[ok](#top)\n[bad](#missing)\n",
                    encoding="utf-8")
    problems = check_links.check_file(page)
    assert len(problems) == 1
    assert "no heading for anchor: #missing" in problems[0]


def test_cross_file_anchor_and_missing_target(doc_root):
    target = doc_root / "target.md"
    target.write_text("## Real Section\n", encoding="utf-8")
    page = doc_root / "page.md"
    page.write_text("[ok](target.md#real-section)\n"
                    "[bad anchor](target.md#ghost)\n"
                    "[bad file](absent.md)\n", encoding="utf-8")
    problems = check_links.check_file(page)
    assert any("no heading for anchor: target.md#ghost" in p
               for p in problems)
    assert any("missing target: absent.md" in p for p in problems)
    assert len(problems) == 2


def test_duplicate_anchors_fail(doc_root):
    page = doc_root / "dup.md"
    page.write_text("# Setup\n\ntext\n\n## Setup\n\n### Other\n",
                    encoding="utf-8")
    assert check_links.duplicate_anchors(page) == ["setup"]
    problems = check_links.check_file(page)
    assert problems == ["dup.md: duplicate anchor: #setup"]


def test_unique_anchors_pass(doc_root):
    page = doc_root / "ok.md"
    page.write_text("# A\n\n## B\n\n[x](#a) [y](#b)\n", encoding="utf-8")
    assert check_links.duplicate_anchors(page) == []
    assert check_links.check_file(page) == []


def test_links_escaping_the_repo_are_flagged(doc_root):
    page = doc_root / "page.md"
    page.write_text("[out](../outside.md)\n", encoding="utf-8")
    problems = check_links.check_file(page)
    assert len(problems) == 1
    assert "escapes the repo" in problems[0]


def test_repo_docs_are_clean():
    """The live docs must pass their own gate (anchors + duplicates)."""
    assert check_links.main() == 0
