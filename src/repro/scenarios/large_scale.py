"""Large-N scenario family: dense plaza, sparse highway, flash crowd.

The paper evaluated PeerHood with a handful of laptops and phones; the
ROADMAP's north star is production scale.  These builders generate the
workloads that stress the discovery layer at hundreds of devices — the
regime where the seed's O(N²) pairwise neighbor scan collapsed and the
spatial-grid index (:mod:`repro.radio.spatial`) is load-bearing.

Three density regimes, chosen to exercise the grid differently:

* :func:`dense_plaza` — many slow pedestrians packed into a small square;
  high cell occupancy, neighbor lists dominated by genuine neighbors.
* :func:`sparse_highway` — fast vehicles strung along kilometres of road;
  most grid cells empty, neighbor lists short, heavy re-bucketing as
  vehicles cross cell boundaries every few sim-seconds.
* :func:`flash_crowd` — a resident population plus hundreds of transient
  walkers arriving in a burst and leaving again; exercises mid-run
  ``add_node``/``remove_node`` churn, including spatial-grid insertion
  and eviction while discovery loops are running.

All builders return an unstarted :class:`~repro.scenarios.builder.
Scenario` (call ``start_all()``); distances in metres, times in
sim-seconds.
"""

from __future__ import annotations

import typing

from repro.core.config import DaemonConfig
from repro.mobility.linear import LinearMovement
from repro.mobility.waypoint import RandomWaypoint
from repro.scenarios.builder import Scenario


def dense_plaza(count: int, area: float = 60.0, seed: int = 0,
                technologies: typing.Sequence[str] = ("bluetooth",),
                speed_range: tuple[float, float] = (0.3, 1.5),
                pause_range: tuple[float, float] = (0.0, 30.0),
                config: DaemonConfig | None = None) -> Scenario:
    """``count`` pedestrians random-waypointing in an ``area`` × ``area``
    metre square (nodes ``p0`` … ``p{count-1}``).

    With the defaults and Bluetooth's 10 m radius, 300 pedestrians on a
    60 m square average ~26 neighbors each — dense enough that discovery
    cost is dominated by genuine neighbors, which is exactly the regime
    where the grid's O(neighbors) query wins over the O(N) scan.
    """
    if count < 1:
        raise ValueError(f"need at least one pedestrian, got {count}")
    if area <= 0:
        raise ValueError(f"area must be positive: {area}")
    scenario = Scenario(seed=seed)
    for index in range(count):
        mobility = RandomWaypoint(
            scenario.sim.rng(f"plaza/{index}"), area=(area, area),
            speed_range=speed_range, pause_range=pause_range)
        scenario.add_node(f"p{index}", mobility=mobility,
                          technologies=technologies,
                          mobility_class="dynamic", config=config)
    return scenario


def sparse_highway(count: int, length_m: float = 2000.0, lanes: int = 2,
                   lane_spacing_m: float = 4.0,
                   speed_range: tuple[float, float] = (22.0, 33.0),
                   seed: int = 0,
                   technologies: typing.Sequence[str] = ("wlan",),
                   config: DaemonConfig | None = None) -> Scenario:
    """``count`` vehicles (``v0`` …) on a straight ``length_m``-metre road.

    Vehicles are scattered uniformly along the road in ``lanes`` lanes
    ``lane_spacing_m`` apart; even lanes drive +x, odd lanes −x, each at
    a constant speed drawn from ``speed_range`` (m/s — the default is
    motorway pace, ~80–120 km/h).  Density is low (tens of metres
    between WLAN-range encounters) and relative speeds are high, so
    neighbor sets are short-lived and the spatial grid re-buckets
    constantly — the opposite stress from :func:`dense_plaza`.
    """
    if count < 1:
        raise ValueError(f"need at least one vehicle, got {count}")
    if length_m <= 0 or lanes < 1:
        raise ValueError("highway needs positive length and >= 1 lane")
    scenario = Scenario(seed=seed)
    rng = scenario.sim.rng("highway/layout")
    for index in range(count):
        lane = index % lanes
        heading = 1.0 if lane % 2 == 0 else -1.0
        start = (rng.uniform(0.0, length_m), lane * lane_spacing_m)
        speed = rng.uniform(*speed_range)
        scenario.add_node(
            f"v{index}",
            mobility=LinearMovement(start, (heading * speed, 0.0)),
            technologies=technologies,
            mobility_class="dynamic", config=config)
    return scenario


def flash_crowd(base_count: int = 20, crowd_count: int = 200,
                area: float = 80.0, arrive_start_s: float = 30.0,
                mean_interarrival_s: float = 1.0,
                dwell_range_s: tuple[float, float] = (60.0, 240.0),
                seed: int = 0,
                technologies: typing.Sequence[str] = ("bluetooth",),
                config: DaemonConfig | None = None) -> Scenario:
    """A resident population plus a transient crowd churning through.

    ``base_count`` residents (``r0`` …) roam the square permanently.
    From ``arrive_start_s`` a churn process injects ``crowd_count``
    walkers (``c0`` …) with exponential inter-arrival times (mean
    ``mean_interarrival_s``); each crowd walker powers on, runs a full
    PeerHood daemon, dwells for a uniform draw from ``dwell_range_s``
    and is then powered off via :meth:`Scenario.remove_node` — the
    world-level eviction path (spatial grids, quality overrides,
    inquiry state) runs under live discovery traffic.

    Start the residents with ``start_all()`` before running; crowd
    walkers start their own daemons on arrival.  The churn process is
    already spawned — just ``run(until=...)``.
    """
    if base_count < 0 or crowd_count < 0:
        raise ValueError("node counts must be non-negative")
    if mean_interarrival_s <= 0:
        raise ValueError(
            f"mean interarrival must be positive: {mean_interarrival_s}")
    scenario = Scenario(seed=seed)
    for index in range(base_count):
        mobility = RandomWaypoint(
            scenario.sim.rng(f"flash/base/{index}"), area=(area, area))
        scenario.add_node(f"r{index}", mobility=mobility,
                          technologies=technologies,
                          mobility_class="dynamic", config=config)

    def depart_later(sim, name: str, dwell_s: float):
        yield sim.timeout(dwell_s)
        if name in scenario.nodes:
            scenario.remove_node(name)

    def churn(sim):
        rng = sim.rng("flash/churn")
        yield sim.timeout(arrive_start_s)
        for index in range(crowd_count):
            name = f"c{index}"
            mobility = RandomWaypoint(
                sim.rng(f"flash/crowd/{index}"), area=(area, area))
            node = scenario.add_node(name, mobility=mobility,
                                     technologies=technologies,
                                     mobility_class="dynamic", config=config)
            node.start()
            sim.spawn(
                depart_later(sim, name, rng.uniform(*dwell_range_s)),
                name=f"flash-depart:{name}")
            yield sim.timeout(rng.expovariate(1.0 / mean_interarrival_s))

    scenario.sim.spawn(churn(scenario.sim), name="flash-crowd-churn")
    return scenario
