"""Lossy-PHY gates: the plane is inert at zero and bites flooding on.

Backs the lossy physical layer (:mod:`repro.radio.phy`).  Three gates,
all written into ``BENCH_phy.json`` at the repo root:

1. **Zero-loss identity** — a ``dtn_phy`` run on the crowded festival
   with every PHY knob absent must produce metrics byte-identical
   (over the keys the two workloads share) to a plain
   ``dtn_bandwidth`` run of the same scenario, seed and settings, with
   its own PHY counters all zero.  Zero knobs install no
   :class:`~repro.radio.phy.PhyPlane` at all, so the lossy code path
   costs nothing and perturbs nothing when unused — the old DTN and
   capacity baselines are untouched.
2. **Contention flips the flooding advantage** — under the default
   lossy profile (6 dB shadowing + collision/capture), epidemic's
   delivery ratio in the crowded festival must drop at least 5 points
   against its own lossless baseline (paired: identical mobility and
   injections), spray-and-wait must drop *less*, and epidemic's
   delivery advantage over spray must shrink or invert.  Flooding is
   no longer free once parallel sessions contend at shared receivers
   and every lost leg burns finite window budget.
3. **Worker-count and cache-state determinism** — the bundled
   ``phy_sweep``'s ``runs.jsonl`` and aggregate CSV bytes must match
   across a 1-worker campaign, a 2-worker campaign and a fully-cached
   re-run (zero cells executed); shadowing draws ride dedicated
   ``phy/shadowing/*`` RNG sub-streams, so the byte-identity contract
   extends to lossy, memoized campaigns.

``BENCH_PHY_REPEATS`` shrinks the sweep's repeat count in CI.
"""

import dataclasses
import json
import os
import pathlib

from repro.analysis.snapshots import write_bench_snapshot
from repro.experiments.campaign import run_campaign
from repro.experiments.spec import RunPoint
from repro.experiments.specs import get_spec
from repro.experiments.workloads import get_workload
from repro.scenarios import crowded_festival

from paperbench import print_table

SNAPSHOT_PATH = (pathlib.Path(__file__).resolve().parent.parent
                 / "BENCH_phy.json")

#: Sweep repeats; CI shrinks via the environment (spec default is 2).
REPEATS = int(os.environ.get("BENCH_PHY_REPEATS", "0")) or None
#: Float-noise tolerance for the paired delivery comparisons.
EPS = 1e-9
#: Gate 2's floor: epidemic must lose at least this much delivery
#: ratio to the default lossy profile.
EPIDEMIC_DROP_FLOOR = 0.05

#: Shared settings for the zero-loss identity legs: both workloads must
#: see the same routers and rates or their metrics could not match.
_IDENTITY_SETTINGS = {
    "duration_s": 300.0, "messages": 8, "ttl_s": 240.0,
    "size_bytes": 60_000, "rate_Bps": 24_000.0,
    "routers": ("epidemic", "spray"), "spray_copies": 6,
}

#: The default lossy profile of gate 2 (``lossy_festival``'s knobs).
_LOSSY_PARAMS = {"shadowing_sigma_db": 6.0, "phy_collisions": 1}

#: Paired seeds for the contention gate; drops are averaged over them.
_CONTENTION_SEEDS = (101, 303)


def _identity_point(workload: str) -> RunPoint:
    """A crowded-festival run point; only ``workload`` varies."""
    return RunPoint(
        spec="phy_identity", workload=workload, index=0,
        scenario="crowded_festival", params={"count": 14}, repeat=0,
        seed=977, settings=dict(_IDENTITY_SETTINGS))


def run_zero_loss_identity():
    """Gate 1: absent PHY knobs ≡ the pre-PHY workload, bytewise."""
    # Zero knobs must install no plane at all — the lossless code
    # path, not a plane that happens to lose nothing.
    assert crowded_festival(seed=977).world.phy is None
    phy = get_workload("dtn_phy")(_identity_point("dtn_phy"))
    plain = get_workload("dtn_bandwidth")(
        _identity_point("dtn_bandwidth"))
    shared = sorted(set(phy) & set(plain))
    phy_bytes = json.dumps({k: phy[k] for k in shared}, sort_keys=True)
    plain_bytes = json.dumps({k: plain[k] for k in shared},
                             sort_keys=True)
    assert phy_bytes == plain_bytes, (
        f"zero-knob dtn_phy diverged from dtn_bandwidth over {shared}:\n"
        f"  dtn_phy:       {phy_bytes}\n  dtn_bandwidth: {plain_bytes}")
    offered = [phy[key] for key in phy if key.endswith("_phy_offered")]
    assert offered and all(count == 0 for count in offered), (
        f"zero-knob run moved PHY counters: {offered}")
    return {"shared_keys": len(shared), "identical": True}


def run_contention(seed: int):
    """One paired lossless-vs-lossy festival cell at ``seed``."""
    def ratios(params):
        point = RunPoint(
            spec="phy_contention", workload="dtn_phy", index=0,
            scenario="crowded_festival",
            params={"count": 12, **params}, repeat=0, seed=seed,
            settings={"duration_s": 240.0, "messages": 6,
                      "ttl_s": 200.0, "size_bytes": 60_000,
                      "rate_Bps": 24_000.0,
                      "routers": ("epidemic", "spray"),
                      "spray_copies": 6})
        metrics = get_workload("dtn_phy")(point)
        return metrics

    clean = ratios({})
    lossy = ratios(_LOSSY_PARAMS)
    assert lossy["epidemic_phy_lost_fading"] > 0, (
        "lossy festival cell saw no fading loss — profile inert?")
    return {
        "epidemic_clean": clean["epidemic_delivery_ratio"],
        "epidemic_lossy": lossy["epidemic_delivery_ratio"],
        "spray_clean": clean["spray_delivery_ratio"],
        "spray_lossy": lossy["spray_delivery_ratio"],
        "phy_lost_collision": lossy["epidemic_phy_lost_collision"],
    }


def run_sweep(tmp_dir: pathlib.Path):
    """Gate 3: phy_sweep across workers and cache states.

    Three campaign legs — 1 worker (populating a fresh run cache),
    2 workers (uncached), and a fully-cached 1-worker re-run — must
    produce byte-identical ``runs.jsonl`` + ``summary.csv``, and the
    cached leg must execute zero workload calls.
    """
    spec = get_spec("phy_sweep")
    if REPEATS is not None:
        spec = dataclasses.replace(spec, repeats=REPEATS)
    cache_dir = tmp_dir / "cache"
    legs = {"w1": dict(workers=1, cache_dir=cache_dir),
            "w2": dict(workers=2, cache_dir=None),
            "cached": dict(workers=1, cache_dir=cache_dir)}
    outputs = {}
    for leg, kwargs in legs.items():
        result = run_campaign(spec, tmp_dir / leg, **kwargs)
        outputs[leg] = (result.jsonl_path.read_bytes(),
                        result.csv_path.read_bytes(), result)
    for other in ("w2", "cached"):
        assert outputs["w1"][0] == outputs[other][0], (
            f"phy_sweep runs.jsonl differs between w1 and {other}")
        assert outputs["w1"][1] == outputs[other][1], (
            f"phy_sweep summary.csv differs between w1 and {other}")
    cached = outputs["cached"][2].stats
    assert cached.executed == 0 and cached.cache_hits == cached.total, (
        f"cached phy_sweep re-run recomputed cells: {cached.as_dict()}")
    return outputs["w1"][2].records, cached


def write_snapshot(identity, contention, records, campaign_stats,
                   path=SNAPSHOT_PATH):
    """Persist every gate for cross-PR tracking."""
    drops = {
        "epidemic": round(contention["epidemic_clean"]
                          - contention["epidemic_lossy"], 4),
        "spray": round(contention["spray_clean"]
                       - contention["spray_lossy"], 4),
    }
    payload = {
        "zero_loss": identity,
        "contention": {key: round(value, 4)
                       for key, value in contention.items()},
        "delivery_drop": drops,
        "sweep_runs": len(records),
        "workers_identical": True,
    }
    return write_bench_snapshot(
        "phy", payload, path,
        n=12, repeats=max(r["repeat"] for r in records) + 1,
        campaign=campaign_stats.as_dict())


def test_phy_gates(tmp_path):
    identity = run_zero_loss_identity()

    cells = [run_contention(seed) for seed in _CONTENTION_SEEDS]
    contention = {key: sum(cell[key] for cell in cells) / len(cells)
                  for key in cells[0]}
    records, campaign_stats = run_sweep(tmp_path)
    write_snapshot(identity, contention, records, campaign_stats)

    print_table(
        "crowded_festival delivery ratio, lossless vs default lossy",
        ["router", "lossless", "lossy", "drop"],
        [[router,
          round(contention[f"{router}_clean"], 4),
          round(contention[f"{router}_lossy"], 4),
          round(contention[f"{router}_clean"]
                - contention[f"{router}_lossy"], 4)]
         for router in ("epidemic", "spray")])

    # Gate 2a: the lossy profile costs epidemic real delivery.
    epidemic_drop = (contention["epidemic_clean"]
                     - contention["epidemic_lossy"])
    spray_drop = contention["spray_clean"] - contention["spray_lossy"]
    assert epidemic_drop >= EPIDEMIC_DROP_FLOOR - EPS, (
        f"epidemic only dropped {epidemic_drop:.4f} under the lossy "
        f"profile (floor {EPIDEMIC_DROP_FLOOR})")
    # Gate 2b: flooding pays more for the lossy air than spraying.
    assert spray_drop <= epidemic_drop + EPS, (
        f"spray dropped more than epidemic: {spray_drop:.4f} vs "
        f"{epidemic_drop:.4f}")
    # Gate 2c: epidemic's advantage over spray shrinks (or inverts).
    clean_gap = (contention["epidemic_clean"]
                 - contention["spray_clean"])
    lossy_gap = (contention["epidemic_lossy"]
                 - contention["spray_lossy"])
    assert lossy_gap <= clean_gap + EPS, (
        f"epidemic's advantage grew under contention: "
        f"{clean_gap:.4f} -> {lossy_gap:.4f}")

    # Sanity: the sweep's lossy cells genuinely exercised the plane.
    offered = [r["metrics"]["epidemic_phy_offered"] for r in records
               if float(r["params"].get("shadowing_sigma_db", 0.0)) > 0]
    assert offered and all(count > 0 for count in offered)
    assert SNAPSHOT_PATH.exists()
