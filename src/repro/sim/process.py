"""Generator-based simulation processes.

A process wraps a Python generator.  The generator yields events; the
process resumes when the yielded event triggers, receiving the event's value
(or its exception raised at the yield point).  A process is itself an event,
so processes can wait on each other and composite conditions can include
them.

The thesis' daemon threads (inquiry, advertise, monitor, bridge main loop,
HandoverThread) all map one-to-one onto processes.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event, Interrupt, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Process(Event):
    """A running generator inside the simulator.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        The generator to drive.  It may ``return`` a value, which becomes
        the process' event value.
    name:
        Label used in traces and reprs.
    """

    def __init__(self, sim: "Simulator", generator: typing.Generator,
                 name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
                " (did you forget to call the function?)")
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick-start on the next kernel step so creation order does not
        # matter within a single simulated instant.
        bootstrap = Event(sim, f"bootstrap:{self.name}")
        bootstrap._add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    @property
    def waiting_on(self) -> Event | None:
        """The event this process is currently blocked on, if any."""
        return self._waiting_on

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a dead process is an error; PeerHood callers guard with
        :attr:`is_alive`.  The event the process was waiting on remains
        pending — the interrupt handler may re-wait on it.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self!r}")
        if self.sim.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.sim, f"interrupt:{self.name}")
        interrupt_event._interrupt_cause = cause  # type: ignore[attr-defined]
        interrupt_event._add_callback(self._deliver_interrupt)
        interrupt_event.succeed()

    def _deliver_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            # Process finished between scheduling and delivery: drop it,
            # matching pthread semantics of signalling an exited thread.
            return
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        cause = event._interrupt_cause  # type: ignore[attr-defined]
        self._step(Interrupt(cause), throw=True)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.exception is not None:
            self._step(event.exception, throw=True)
        else:
            self._step(event._value, throw=False)

    def _step(self, payload: object, throw: bool) -> None:
        previous = self.sim._active_process
        self.sim._active_process = self
        try:
            if throw:
                assert isinstance(payload, BaseException)
                target = self._generator.throw(payload)
            else:
                target = self._generator.send(payload)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(error)
            return
        finally:
            self.sim._active_process = previous
        self._wait_on(target)

    def _wait_on(self, target: object) -> None:
        if not isinstance(target, Event):
            self._step(
                SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}"),
                throw=True)
            return
        if target.sim is not self.sim:
            self._step(
                SimulationError("yielded an event from another simulator"),
                throw=True)
            return
        self._waiting_on = target
        target._add_callback(self._resume)
