#!/usr/bin/env python
"""Quickstart: two PeerHood devices discover each other and talk.

Builds the smallest possible PeerHood environment — a static PC offering
an ``echo`` service and a phone next to it — lets dynamic device discovery
run for a couple of Bluetooth inquiry cycles, then opens a connection and
exchanges a message.

Run with::

    python examples/quickstart.py
"""

from repro.core.errors import ConnectionClosedError
from repro.scenarios import Scenario


def main() -> None:
    scenario = Scenario(seed=7)
    pc = scenario.add_node("pc", position=(0.0, 0.0),
                           mobility_class="static")
    phone = scenario.add_node("phone", position=(5.0, 0.0),
                              mobility_class="dynamic")

    # Register a service on the PC.  The callback returns a generator that
    # the engine runs for every accepted connection.
    def echo_handler(connection):
        def serve():
            while True:
                try:
                    message = yield from connection.read()
                except ConnectionClosedError:
                    return
                connection.write(f"echo: {message}", 64)
        return serve()

    pc.library.register_service("echo", echo_handler)

    # Start the daemons: inquiry threads begin scanning.
    scenario.start_all()
    scenario.settle_discovery(120.0)

    print("== device lists after discovery ==")
    for device in phone.library.get_device_list():
        print(f"  phone sees {device.name!r} at jump {device.jump}, "
              f"quality {device.link_quality}, "
              f"mobility {device.mobility.name.lower()}")
    for device, service in phone.library.get_service_list():
        print(f"  phone sees service {service.name!r} on {device.name!r}")

    # Connect and exchange a message (a simulator process).
    def client(sim):
        connection = yield from phone.library.connect(
            pc.address, "echo", retries=4)
        print(f"connected in {sim.now - start:.2f} s "
              f"(Bluetooth establishment)")
        connection.write("hello PeerHood", 64)
        reply = yield from connection.read()
        print(f"phone received: {reply!r}")
        connection.close("done")

    start = scenario.sim.now
    scenario.run_process(client(scenario.sim))
    print(f"total discovery traffic: "
          f"{scenario.meter.messages(category='discovery')} messages, "
          f"{scenario.meter.bytes(category='discovery')} bytes")


if __name__ == "__main__":
    main()
