"""E9 — §5.3: the three result-routing regimes of the picture server.

Paper artifact: "We can summarize the result in following three groups":

1. small jobs — "the task could be carried out before the device leaves
   the coverage area";
2. considerable jobs — "the connection is broken during the processing
   time after the server has already received all picture information.
   In this case server looks for the device in its neighborhood routing
   table and tries to send the result back";
3. huge jobs — "the connection is broken during the data packages
   transmission", the mid-upload handover usually failing on Bluetooth's
   connect time.
"""

from repro.apps.picture_analysis import (
    PictureAnalysisClient,
    PictureAnalysisServer,
)
from repro.mobility import CorridorWalk
from repro.scenarios import Scenario
from paperbench import print_table

SETTLE_S = 200.0

#: (label, package count, paper's expected regime)
CASES = (
    ("small", 3, "direct"),
    ("considerable", 30, "reconnect"),
    ("huge", 700, "broken upload"),
)


def run_case(package_count, seed):
    scenario = Scenario(seed=seed)
    server_node = scenario.add_node("server", position=(0, 0),
                                    mobility_class="static")
    scenario.add_node("relay1", position=(8, 0), mobility_class="static")
    scenario.add_node("relay2", position=(16, 0), mobility_class="static")
    client_node = scenario.add_node(
        "client",
        mobility=CorridorWalk((6.0, 0.0), heading_deg=0.0, speed=1.4,
                              depart_time=SETTLE_S + 25.0,
                              stop_distance=14.0),
        mobility_class="dynamic")
    server = PictureAnalysisServer(server_node,
                                   processing_time_per_package_s=1.5,
                                   delivery_deadline_s=300.0)
    client = PictureAnalysisClient(client_node,
                                   package_count=package_count)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    if not scenario.wait_for_route("client", "server"):
        return None
    result = scenario.run_process(
        client.run(server, result_deadline_s=500.0, with_handover=True))
    if server.uploads_broken:
        regime = "broken upload"
    elif result.result_received:
        regime = server.delivery_modes[-1] if server.delivery_modes else (
            "direct")
    else:
        regime = "no result"
    return {"regime": regime, "result": result,
            "jobs_completed": server.jobs_completed}


def run_sweep():
    outcomes = {}
    for label, package_count, expected in CASES:
        for seed in (61, 62, 63):
            outcome = run_case(package_count, seed)
            if outcome is not None:
                outcomes[label] = (package_count, expected, outcome)
                break
    return outcomes


def test_e9_result_routing_regimes(benchmark):
    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1,
                                  warmup_rounds=0)
    assert len(outcomes) == len(CASES)
    rows = []
    for label, (count, expected, outcome) in outcomes.items():
        rows.append([label, count, expected, outcome["regime"],
                     "ok" if outcome["regime"] == expected else "MISMATCH"])
    print_table("E9: §5.3 result-routing regimes by package count "
                "(paper vs measured)",
                ["case", "packages", "paper regime", "measured", "match"],
                rows)
    for label, (count, expected, outcome) in outcomes.items():
        assert outcome["regime"] == expected, (
            f"{label} ({count} packages): paper regime {expected!r}, "
            f"measured {outcome['regime']!r}")
    # Case 2's distinguishing feature: the result still arrives.
    considerable = outcomes["considerable"][2]
    assert considerable["result"].result_received
    assert considerable["jobs_completed"] == 1
    # Case 3: nothing to process, no result.
    huge = outcomes["huge"][2]
    assert not huge["result"].result_received
    benchmark.extra_info["regimes"] = {
        label: data[2]["regime"] for label, data in outcomes.items()}
