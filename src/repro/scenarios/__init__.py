"""Scenario construction: the paper's topologies as reusable builders.

:class:`~repro.scenarios.builder.Scenario` bundles a simulator, a radio
world and a fabric, with convenience methods to add PeerHood nodes.
:mod:`~repro.scenarios.topologies` provides the exact layouts of the
thesis' figures (3.3, 3.6, 3.9, 4.5, 5.8, 6.1) plus generic lines, grids
and random discs for sweeps.  :mod:`~repro.scenarios.large_scale` adds
the production-scale family (dense plaza, sparse highway, flash-crowd
churn, city-day) that stresses the spatial-grid discovery path at
hundreds of nodes and the vectorized batch engine at tens of thousands.  :mod:`~repro.scenarios.dtn` is the store-carry-forward family
(commuter corridor, island-hopping ferry, flash-crowd broadcast) where
some endpoint pairs are never simultaneously connected and delivery
must ride a moving custodian.  :mod:`~repro.scenarios.bandwidth` is
the rate-constrained family (drive-by kiosk, crowded festival, rural
bus) where contact *duration* prices the byte budget the
bandwidth-limited data plane schedules against.
:mod:`~repro.scenarios.hostile` is the adversarial variant: the
commuter corridor with every :mod:`repro.faults` model on by default.
:mod:`~repro.scenarios.traces` records
the connectivity-event stream as a JSONL contact trace and replays it
as a mobility-free workload (:func:`replay_arena` is its registered
arena scenario).
"""

from repro.scenarios.bandwidth import (
    crowded_festival,
    drive_by_kiosk,
    lossy_festival,
    rural_bus_dtn,
)
from repro.scenarios.builder import Scenario
from repro.scenarios.dtn import (
    commuter_corridor,
    flash_crowd_broadcast,
    island_hopping_ferry,
)
from repro.scenarios.hostile import hostile_corridor
from repro.scenarios.large_scale import (
    city_day,
    dense_plaza,
    flash_crowd,
    sparse_highway,
)
from repro.scenarios.traces import (
    ContactTraceRecorder,
    load_trace,
    record_contact_trace,
    replay_arena,
    replay_trace,
    trace_digest,
    write_trace,
)
from repro.scenarios.topologies import (
    fig_3_3_coverage_exclusion,
    fig_3_6_dynamic_discovery,
    fig_3_9_quality_equity,
    fig_4_5_bridge_test,
    fig_5_8_handover,
    line_topology,
    random_disc,
    tunnel_topology,
)

# ``__all__`` lists exactly the scenario factories (plus Scenario): the
# experiments registry test asserts every name here is registered.  The
# trace record/replay helpers above are importable but are not factories.
__all__ = [
    "Scenario",
    "city_day",
    "commuter_corridor",
    "crowded_festival",
    "dense_plaza",
    "drive_by_kiosk",
    "fig_3_3_coverage_exclusion",
    "fig_3_6_dynamic_discovery",
    "fig_3_9_quality_equity",
    "fig_4_5_bridge_test",
    "fig_5_8_handover",
    "flash_crowd",
    "flash_crowd_broadcast",
    "hostile_corridor",
    "island_hopping_ferry",
    "line_topology",
    "lossy_festival",
    "random_disc",
    "replay_arena",
    "rural_bus_dtn",
    "sparse_highway",
    "tunnel_topology",
]
