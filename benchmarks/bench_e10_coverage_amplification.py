"""E10 — Fig. 6.1: coverage amplification through a tunnel.

Paper artifact: the potential-application sketch — a GPRS gateway at the
tunnel mouth, Bluetooth relays inside, a phone deep in the tunnel
reaching "the whole GPRS network" through the chain.

Method: chain-length sweep.  Reachability must hold for every length
(while each hop is within Bluetooth range), the route's jump count must
equal the relay count, and the session round-trip must grow with the
chain (every hop re-transmits, §4.1).
"""

from repro.apps.coverage_amplification import GprsGateway, TunnelPhone
from repro.scenarios import tunnel_topology
from paperbench import print_table

CHAIN_LENGTHS = (1, 2, 3)
SETTLE_BASE_S = 240.0


def run_chain(bridge_count, seeds=(13, 14, 15)):
    for seed in seeds:
        scenario = tunnel_topology(bridge_count=bridge_count, seed=seed)
        gateway = GprsGateway(scenario.node("gateway"),
                              upstream_latency_s=0.8)
        phone = TunnelPhone(scenario.node("phone"), request_count=4)
        scenario.start_all()
        scenario.run(until=SETTLE_BASE_S + 60.0 * bridge_count)
        if not scenario.wait_for_route("phone", "gateway"):
            continue
        entry = scenario.node("phone").daemon.storage.get(
            scenario.node("gateway").address)
        outcome = scenario.run_process(phone.run(gateway, retries=10))
        if not outcome.connected:
            continue
        return {
            "jumps": entry.jump,
            "connect_time": outcome.connect_time_s,
            "rtt": outcome.mean_round_trip_s,
            "responses": outcome.responses_received,
            "served": gateway.requests_served,
        }
    return None


def run_sweep():
    return {count: run_chain(count) for count in CHAIN_LENGTHS}


def test_e10_tunnel_coverage_amplification(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1,
                                 warmup_rounds=0)
    rows = []
    for count in CHAIN_LENGTHS:
        outcome = results[count]
        assert outcome is not None, (
            f"the phone must reach the gateway through {count} relays")
        rows.append([
            count,
            "reachable (paper's claim)",
            f"reachable: {outcome['responses']}/4 answered, "
            f"jump {outcome['jumps']}, connect "
            f"{outcome['connect_time']:.1f} s, RTT {outcome['rtt']:.2f} s",
        ])
    print_table("E10: Fig. 6.1 tunnel reachability vs relay count",
                ["relays", "paper", "measured"], rows)
    for count in CHAIN_LENGTHS:
        outcome = results[count]
        assert outcome["responses"] == 4
        assert outcome["jumps"] == count, (
            "the route must use exactly the relay chain")
    # Per-hop re-transmission: the RTT grows with the chain.
    assert results[3]["rtt"] > results[1]["rtt"]
    assert results[3]["connect_time"] > results[1]["connect_time"] * 0.5
    benchmark.extra_info["rtt_by_relays"] = {
        str(c): round(results[c]["rtt"], 3) for c in CHAIN_LENGTHS}
