"""DTN scenario family: worlds where store-carry-forward is load-bearing.

The large-N family (:mod:`repro.scenarios.large_scale`) stresses the
*discovery* layer; these three stress the *data plane*: in each, some
source–destination pairs are never simultaneously connected, so only a
custodian physically carrying the bundle across a partition can deliver
it.

* :func:`commuter_corridor` — two static terminals (``home``, ``work``)
  at opposite ends of a corridor much longer than radio range, plus
  commuters random-waypointing along it.  Terminal-to-terminal traffic
  *must* ride a commuter.
* :func:`island_hopping_ferry` — static population clusters ("islands")
  spaced far out of mutual range, plus one scripted ferry cycling
  between them.  Inter-island traffic is ferry-carried; intra-island
  traffic delivers at the first exchange.
* :func:`flash_crowd_broadcast` — a static announcer in the middle of a
  roaming crowd; broadcast rounds fan one bundle per attendee.  Direct
  delivery waits for each attendee to wander past the announcer;
  epidemic gossip saturates the crowd far faster.

All builders return an unstarted :class:`~repro.scenarios.builder.
Scenario` — the DTN plane runs on pure geometry, so scenario daemons
need not be started (mirroring the contact-trace workloads).  Distances
in metres, times in sim-seconds.
"""

from __future__ import annotations

import math
import typing

from repro.faults import install_scenario_faults
from repro.mobility.linear import PathMovement
from repro.mobility.waypoint import RandomWaypoint
from repro.radio.phy import install_scenario_phy
from repro.scenarios.builder import Scenario


def commuter_corridor(count: int = 10, length_m: float = 120.0,
                      width_m: float = 8.0,
                      speed_range: tuple[float, float] = (0.8, 2.0),
                      pause_range: tuple[float, float] = (0.0, 30.0),
                      crash_rate: float = 0.0,
                      crash_downtime_s: float = 45.0,
                      radio_fault_rate: float = 0.0,
                      byzantine_rate: float = 0.0,
                      jammer_count: int = 0,
                      fault_window_s: float = 480.0,
                      shadowing_sigma_db: float = 0.0,
                      phy_collisions: int = 0,
                      capture_margin_db: float = 6.0,
                      seed: int = 0,
                      technologies: typing.Sequence[str] = ("bluetooth",),
                      ) -> Scenario:
    """``count`` commuters in a ``length_m`` × ``width_m`` corridor.

    ``home`` sits at the west end, ``work`` at the east end; with the
    default 120 m corridor and Bluetooth's 10 m radius the two are
    never in range of each other or of a commuter at the far end, so
    ``home`` → ``work`` bundles are deliverable only store-carry-forward.
    Commuters are named ``m0`` … ``m{count-1}``.

    The ``*_rate`` / jammer parameters inject faults on the commuters
    (never the terminals) via
    :func:`repro.faults.install_scenario_faults`; all default to zero,
    which installs nothing at all.
    """
    if count < 1:
        raise ValueError(f"need at least one commuter, got {count}")
    if length_m <= 0 or width_m <= 0:
        raise ValueError("corridor needs positive dimensions")
    scenario = Scenario(seed=seed)
    mid = width_m / 2.0
    scenario.add_node("home", position=(0.0, mid),
                      technologies=technologies, mobility_class="static")
    scenario.add_node("work", position=(length_m, mid),
                      technologies=technologies, mobility_class="static")
    for index in range(count):
        mobility = RandomWaypoint(
            scenario.sim.rng(f"corridor/{index}"),
            area=(length_m, width_m), speed_range=speed_range,
            pause_range=pause_range)
        scenario.add_node(f"m{index}", mobility=mobility,
                          technologies=technologies,
                          mobility_class="dynamic")
    install_scenario_faults(
        scenario, crash_rate=crash_rate,
        crash_downtime_s=crash_downtime_s,
        radio_fault_rate=radio_fault_rate,
        byzantine_rate=byzantine_rate, jammer_count=jammer_count,
        fault_window_s=fault_window_s, area=(length_m, width_m))
    install_scenario_phy(
        scenario, shadowing_sigma_db=shadowing_sigma_db,
        phy_collisions=phy_collisions,
        capture_margin_db=capture_margin_db)
    return scenario


def island_hopping_ferry(count: int = 9, islands: int = 3,
                         island_radius_m: float = 5.0,
                         island_spacing_m: float = 60.0,
                         ferry_speed_mps: float = 5.0,
                         dwell_s: float = 20.0, cycles: int = 4,
                         crash_rate: float = 0.0,
                         crash_downtime_s: float = 45.0,
                         radio_fault_rate: float = 0.0,
                         byzantine_rate: float = 0.0,
                         jammer_count: int = 0,
                         fault_window_s: float = 480.0,
                         shadowing_sigma_db: float = 0.0,
                         phy_collisions: int = 0,
                         capture_margin_db: float = 6.0,
                         seed: int = 0,
                         technologies: typing.Sequence[str] = (
                             "bluetooth",),
                         ) -> Scenario:
    """``count`` islanders over ``islands`` clusters plus one ferry.

    Island ``i``'s centre is at ``(i * island_spacing_m, 0)`` —
    ``island_spacing_m`` should comfortably exceed the radio range so
    islands are mutually unreachable.  Islanders (``i{island}n{slot}``,
    static) sit on a deterministic ring of ``island_radius_m`` around
    their centre.  The ferry (``ferry``) runs a scripted shuttle:
    island 0 → 1 → … → last → 0, dwelling ``dwell_s`` at each stop,
    ``cycles`` times, then parks at island 0 (its mobility settles, so
    the connectivity bus parks every ferry watch afterwards — zero
    events once service ends).
    """
    if count < 1:
        raise ValueError(f"need at least one islander, got {count}")
    if islands < 2:
        raise ValueError(f"need at least two islands, got {islands}")
    if cycles < 1:
        raise ValueError(f"need at least one ferry cycle, got {cycles}")
    if ferry_speed_mps <= 0 or dwell_s < 0:
        raise ValueError("ferry needs positive speed, non-negative dwell")
    scenario = Scenario(seed=seed)
    centres = [(i * island_spacing_m, 0.0) for i in range(islands)]
    for index in range(count):
        island = index % islands
        slot = index // islands
        per_island = (count + islands - 1 - island) // islands
        angle = 2.0 * math.pi * slot / max(1, per_island)
        cx, cy = centres[island]
        scenario.add_node(
            f"i{island}n{slot}",
            position=(cx + island_radius_m * math.cos(angle),
                      cy + island_radius_m * math.sin(angle)),
            technologies=technologies, mobility_class="static")
    waypoints: list[tuple[float, tuple[float, float]]] = []
    clock = 0.0
    stop_sequence = list(range(islands)) + [0]
    for _cycle in range(cycles):
        for stop_index, island in enumerate(stop_sequence):
            target = centres[island]
            if waypoints:
                previous = waypoints[-1][1]
                travel = (abs(target[0] - previous[0])
                          + abs(target[1] - previous[1]))
                clock += travel / ferry_speed_mps
            waypoints.append((clock, target))
            if stop_index < len(stop_sequence) - 1 or dwell_s > 0:
                clock += dwell_s
                waypoints.append((clock, target))
    scenario.add_node("ferry", mobility=PathMovement(waypoints),
                      technologies=technologies, mobility_class="dynamic")
    install_scenario_faults(
        scenario, crash_rate=crash_rate,
        crash_downtime_s=crash_downtime_s,
        radio_fault_rate=radio_fault_rate,
        byzantine_rate=byzantine_rate, jammer_count=jammer_count,
        fault_window_s=fault_window_s,
        area=((islands - 1) * island_spacing_m + 2 * island_radius_m,
              4 * island_radius_m))
    install_scenario_phy(
        scenario, shadowing_sigma_db=shadowing_sigma_db,
        phy_collisions=phy_collisions,
        capture_margin_db=capture_margin_db)
    return scenario


def flash_crowd_broadcast(count: int = 24, area: float = 60.0,
                          speed_range: tuple[float, float] = (0.5, 1.8),
                          pause_range: tuple[float, float] = (0.0, 20.0),
                          crash_rate: float = 0.0,
                          crash_downtime_s: float = 45.0,
                          radio_fault_rate: float = 0.0,
                          byzantine_rate: float = 0.0,
                          jammer_count: int = 0,
                          fault_window_s: float = 480.0,
                          shadowing_sigma_db: float = 0.0,
                          phy_collisions: int = 0,
                          capture_margin_db: float = 6.0,
                          seed: int = 0,
                          technologies: typing.Sequence[str] = (
                              "bluetooth",),
                          ) -> Scenario:
    """A static announcer amid ``count`` roaming attendees.

    ``source`` stands at the centre of an ``area`` × ``area`` square;
    attendees ``a0`` … random-waypoint around it.  Pair with the
    ``broadcast`` traffic pattern (one bundle per attendee per round):
    epidemic gossip spreads announcements attendee-to-attendee, while
    direct delivery reaches only whoever walks within radio range of
    the announcer.
    """
    if count < 1:
        raise ValueError(f"need at least one attendee, got {count}")
    if area <= 0:
        raise ValueError(f"area must be positive: {area}")
    scenario = Scenario(seed=seed)
    scenario.add_node("source", position=(area / 2.0, area / 2.0),
                      technologies=technologies, mobility_class="static")
    for index in range(count):
        mobility = RandomWaypoint(
            scenario.sim.rng(f"crowd/{index}"), area=(area, area),
            speed_range=speed_range, pause_range=pause_range)
        scenario.add_node(f"a{index}", mobility=mobility,
                          technologies=technologies,
                          mobility_class="dynamic")
    install_scenario_faults(
        scenario, crash_rate=crash_rate,
        crash_downtime_s=crash_downtime_s,
        radio_fault_rate=radio_fault_rate,
        byzantine_rate=byzantine_rate, jammer_count=jammer_count,
        fault_window_s=fault_window_s, area=(area, area))
    install_scenario_phy(
        scenario, shadowing_sigma_db=shadowing_sigma_db,
        phy_collisions=phy_collisions,
        capture_margin_db=capture_margin_db)
    return scenario
