"""The batch geometry engine vs the scalar oracle.

Every test here is an equivalence check: the numpy-vectorized hot path
(:mod:`repro.radio.vectorized`) must agree with the scalar world —
neighbor sets exactly, crossing times bitwise, positions to float
tolerance — across mobility models, technologies, membership churn and
the bus registration path.  Plus the degradation story: the module
imports without numpy, and batch crossings fall back to the scalar
solver.
"""

import json

import pytest

from repro.experiments import (
    ExperimentSpec,
    aggregate,
    run_spec,
    write_csv,
    write_jsonl,
)
from repro.mobility import (
    LinearMovement,
    PathMovement,
    RandomWaypoint,
    StaticPosition,
)
from repro.radio import BLUETOOTH, WLAN, World
from repro.radio import vectorized
from repro.radio.bus import ConnectivityBus
from repro.radio.contacts import next_distance_crossing
from repro.radio.vectorized import (
    VectorEngine,
    batch_distance_crossings,
    multi_arange,
    numpy_available,
)
from repro.scenarios import city_day, dense_plaza, sparse_highway
from repro.sim import Simulator

np = pytest.importorskip("numpy") if numpy_available() else None
pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed")


def mixed_world(seed=3, count=40, area=70.0):
    """A world mixing every bundled mobility model on both radios."""
    sim = Simulator(seed=seed)
    world = World(sim)
    for index in range(count):
        name = f"n{index:03d}"
        kind = index % 4
        if kind == 0:
            mobility = StaticPosition(3.1 * index % area, 5.7 * index % area)
        elif kind == 1:
            mobility = RandomWaypoint(
                sim.rng(f"rwp/{name}"), area=(area, area),
                speed_range=(0.4, 3.0), pause_range=(0.0, 8.0))
        elif kind == 2:
            mobility = LinearMovement(
                (index % 9 * 7.0, index % 5 * 11.0),
                (0.6 * (1 if index % 2 else -1), 0.3))
        else:
            x = index % 11 * 6.0
            mobility = PathMovement(
                [(0.0, (x, 0.0)), (30.0, (x, area / 2)),
                 (75.0, (0.0, area / 2)), (90.0, (0.0, area / 2))])
        technologies = ["bluetooth"] if index % 3 else ["bluetooth", "wlan"]
        world.add_node(name, mobility, technologies)
    return sim, world


# ----------------------------------------------------------------------
# positions and row bookkeeping
# ----------------------------------------------------------------------
def test_positions_match_scalar_to_tolerance():
    sim, world = mixed_world()
    engine = world.vector_engine(BLUETOOTH)
    for step in (0.0, 7.5, 40.0, 120.0):
        sim.timeout(step)
        sim.run()
        positions = engine.positions_at(sim.now)
        for row, node_id in enumerate(engine.ids):
            x, y = world.position(node_id)
            assert positions[row, 0] == pytest.approx(x, abs=1e-9)
            assert positions[row, 1] == pytest.approx(y, abs=1e-9)


def test_rows_follow_sorted_ids_and_piece_expiry_recompiles():
    sim, world = mixed_world(count=12)
    engine = world.vector_engine(BLUETOOTH)
    engine.positions_at(0.0)
    assert engine.ids == sorted(world.node_ids())
    assert engine.row_of(engine.ids[5]) == 5
    compiled_first = engine.pieces_compiled
    assert compiled_first == len(engine.ids)
    # Same instant: nothing stale, nothing recompiled.
    engine.positions_at(0.0)
    assert engine.pieces_compiled == compiled_first
    # Far future: every finite piece expired and recompiled.
    sim.timeout(500.0)
    sim.run()
    engine.positions_at(sim.now)
    assert engine.pieces_compiled > compiled_first


# ----------------------------------------------------------------------
# neighbor equivalence: the core contract
# ----------------------------------------------------------------------
def assert_vector_matches_scalar(world, tech):
    batch = world.all_neighbors_vectorized(tech)
    scalar = world.all_neighbors(tech)
    # Suspended/other-tech nodes are absent from the engine but present
    # (with their neighbors filtered) in the scalar map.
    for node_id, neighbors in batch.items():
        assert neighbors == scalar[node_id], (node_id, tech.name)


def test_all_neighbors_equals_scalar_mixed_models():
    sim, world = mixed_world()
    for step in (0.0, 12.0, 33.0, 100.0):
        sim.timeout(step)
        sim.run()
        for tech in (BLUETOOTH, WLAN):
            assert_vector_matches_scalar(world, tech)


def test_all_neighbors_equals_scalar_on_scenarios():
    for scenario, tech in ((dense_plaza(80, area=50.0, seed=4), BLUETOOTH),
                           (sparse_highway(60, seed=4), WLAN),
                           (city_day(150, seed=4), BLUETOOTH)):
        for step in (5.0, 20.0):
            scenario.sim.timeout(step)
            scenario.sim.run()
            assert_vector_matches_scalar(scenario.world, tech)


def test_engine_tracks_membership_churn():
    sim, world = mixed_world(count=20)
    engine = world.vector_engine(BLUETOOTH)
    assert_vector_matches_scalar(world, BLUETOOTH)
    world.suspend_node("n003")
    assert "n003" not in engine.all_neighbors(sim.now)
    assert_vector_matches_scalar(world, BLUETOOTH)
    world.remove_node("n007")
    world.add_node("zz-new", StaticPosition(1.0, 1.0), ["bluetooth"])
    assert_vector_matches_scalar(world, BLUETOOTH)
    world.resume_node("n003")
    neighbors = engine.all_neighbors(sim.now)
    assert "n003" in neighbors and "zz-new" in neighbors
    assert "n007" not in neighbors
    assert_vector_matches_scalar(world, BLUETOOTH)


def test_candidate_pairs_cover_scalar_grid_candidates():
    """Every true neighbor pair appears exactly once among candidates."""
    sim, world = mixed_world(count=30)
    engine = world.vector_engine(BLUETOOTH)
    pair_i, pair_j, _ = engine.candidate_pairs(sim.now)
    seen = set()
    for a, b in zip(pair_i.tolist(), pair_j.tolist()):
        assert a != b
        key = (min(a, b), max(a, b))
        assert key not in seen, "candidate pair generated twice"
        seen.add(key)
    scalar = world.all_neighbors(BLUETOOTH)
    row_of = {node_id: row for row, node_id in enumerate(engine.ids)}
    for node_id, neighbors in scalar.items():
        for other in neighbors:
            a, b = row_of[node_id], row_of[other]
            assert (min(a, b), max(a, b)) in seen


def test_sparse_join_path_matches_dense():
    """WLAN on kilometres of highway trips the searchsorted fallback."""
    scenario = sparse_highway(40, length_m=250_000.0, seed=2)
    world = scenario.world
    engine = world.vector_engine(WLAN)
    positions = engine.positions_at(0.0)
    ncells_estimate = (positions[:, 0].max() - positions[:, 0].min()) \
        / WLAN.range_m
    assert ncells_estimate > 8 * len(engine.ids)  # fallback regime
    assert_vector_matches_scalar(world, WLAN)


def test_multi_arange_matches_concatenated_aranges():
    starts = np.array([4, 0, 9, 2])
    counts = np.array([3, 1, 2, 5])
    expected = np.concatenate(
        [np.arange(s, s + c) for s, c in zip(starts, counts)])
    assert (multi_arange(starts, counts) == expected).all()
    assert len(multi_arange(np.empty(0, int), np.empty(0, int))) == 0


# ----------------------------------------------------------------------
# stats accounting under the batched path (satellite: counter bugfix)
# ----------------------------------------------------------------------
def test_stats_count_batched_queries_and_distance_checks():
    sim, world = mixed_world(count=25)
    engine = world.vector_engine(BLUETOOTH)
    world.stats.reset()
    pair_i, pair_j = engine.neighbor_pairs(sim.now)
    members = len(engine.ids)
    assert world.stats.neighbor_queries == members
    # One distance evaluation per unordered candidate pair, every
    # candidate counted whether or not it lands in range.
    assert world.stats.distance_checks == engine.pair_candidates
    assert world.stats.distance_checks >= len(pair_i)
    assert engine.pairs_in_range == len(pair_i)


# ----------------------------------------------------------------------
# batch crossings: bitwise equality with the scalar solver
# ----------------------------------------------------------------------
def test_batch_crossings_bitwise_equal_scalar():
    sim, world = mixed_world(count=36)
    models = [world.node(node_id).mobility for node_id in world.node_ids()]
    pairs = [(models[i], models[j])
             for i in range(len(models)) for j in range(i + 1, len(models))]
    for t0, t1 in ((0.0, 60.0), (12.5, 200.0), (90.0, 90.5)):
        batch = batch_distance_crossings(pairs, BLUETOOTH.range_m, t0, t1)
        for (a, b), crossing in zip(pairs, batch):
            scalar = next_distance_crossing(a, b, BLUETOOTH.range_m, t0, t1)
            if scalar is None:
                assert crossing is None, (a, b, t0, t1)
            else:
                assert crossing is not None
                assert crossing.time == scalar.time  # bitwise, no approx
                assert crossing.inside == scalar.inside


def test_batch_crossings_validation_and_empty_window():
    model = StaticPosition(0.0, 0.0)
    with pytest.raises(ValueError):
        batch_distance_crossings([(model, model)], 0.0, 0.0, 1.0)
    assert batch_distance_crossings(
        [(model, model)], 10.0, 5.0, 5.0) == [None]
    assert batch_distance_crossings([], 10.0, 0.0, 1.0) == []


def test_solver_batch_matches_scalar_through_contact_solver():
    sim, world = mixed_world(count=18)
    ids = world.node_ids()
    pairs = [(ids[i], ids[j])
             for i in range(len(ids)) for j in range(i + 1, len(ids))]
    solver = world.bus.solver
    batch = solver.next_link_crossings_batch(pairs, BLUETOOTH)
    for (a, b), crossing in zip(pairs, batch):
        assert crossing == solver.next_link_crossing(a, b, BLUETOOTH)


def test_watch_links_batch_equals_per_pair_watches():
    """Twin scenarios, twin event streams: batch registration must
    schedule and fire the exact events per-pair registration does."""
    streams = {}
    for mode in ("loop", "batch"):
        sim, world = mixed_world(seed=11, count=16)
        bus = world.bus
        ids = world.node_ids()
        pairs = [(ids[i], ids[j])
                 for i in range(len(ids)) for j in range(i + 1, len(ids))]
        events = []

        def record(event, events=events):
            events.append((round(event.time, 12), event.kind,
                           event.node_a, event.node_b))

        if mode == "loop":
            for a, b in pairs:
                bus.watch_link(a, b, BLUETOOTH, record)
        else:
            bus.watch_links_batch(pairs, BLUETOOTH, record)
        # run(until=...) — repeating watches on waypoint pairs refill
        # the event queue forever, so draining it would never return.
        sim.run(until=150.0)
        streams[mode] = (events, world.stats.bus.fired,
                         world.stats.bus.scheduled)
    assert streams["loop"] == streams["batch"]


# ----------------------------------------------------------------------
# numpy gating: import-safe, scalar fallback, clear errors
# ----------------------------------------------------------------------
def test_without_numpy_batch_falls_back_and_engine_refuses(monkeypatch):
    monkeypatch.setattr(vectorized, "np", None)
    assert not vectorized.numpy_available()
    model_a = StaticPosition(0.0, 0.0)
    model_b = LinearMovement((30.0, 0.0), (-1.0, 0.0))
    batch = vectorized.batch_distance_crossings(
        [(model_a, model_b)], 10.0, 0.0, 60.0)
    assert batch == [next_distance_crossing(model_a, model_b,
                                            10.0, 0.0, 60.0)]
    sim = Simulator(seed=0)
    world = World(sim)
    with pytest.raises(RuntimeError, match="numpy"):
        VectorEngine(world, BLUETOOTH)


def test_engine_rejects_model_without_pieces():
    class Teleporter(StaticPosition):
        def active_piece(self, t, horizon_s=600.0):
            return None

    sim = Simulator(seed=0)
    world = World(sim)
    world.add_node("a", Teleporter(0.0, 0.0), ["bluetooth"])
    engine = world.vector_engine(BLUETOOTH)
    with pytest.raises(ValueError, match="no linear pieces"):
        engine.positions_at(0.0)


# ----------------------------------------------------------------------
# workload determinism: byte-identical across worker counts
# ----------------------------------------------------------------------
def _vector_spec():
    return ExperimentSpec(
        name="vector_determinism",
        workload="vectorized_neighbors",
        scenarios=("dense_plaza",),
        axes={"count": (60, 90)},
        repeats=2,
        master_seed=23,
        settings={"rounds": 2, "step_s": 15.0},
        description="determinism probe")


def test_vectorized_workload_identical_for_1_and_2_workers(tmp_path):
    spec = _vector_spec()
    paths = {}
    for workers in (1, 2):
        results = run_spec(spec, workers=workers)
        records = [result.record for result in results]
        out = tmp_path / f"w{workers}"
        write_jsonl(records, out / "runs.jsonl")
        write_csv(aggregate(records), out / "summary.csv")
        paths[workers] = out
    assert ((paths[1] / "runs.jsonl").read_bytes()
            == (paths[2] / "runs.jsonl").read_bytes())
    assert ((paths[1] / "summary.csv").read_bytes()
            == (paths[2] / "summary.csv").read_bytes())
    record = json.loads(
        (paths[1] / "runs.jsonl").read_text().splitlines()[0])
    metrics = record["metrics"]
    # Wall-clock stays in the timings side channel; the deterministic
    # profiler event counts land in the record.
    assert "timings" not in metrics
    assert metrics["events_vector_bin"] > 0
    assert metrics["events_vector_solve"] == 1
