"""Distribution summaries for benchmark tables."""

from __future__ import annotations

import dataclasses
import math
import statistics
import typing


#: Two-sided Student-t critical values at 95% confidence, by degrees of
#: freedom.  Above 30 d.f. the 1.96 normal quantile plus a 2.4/df
#: correction tracks the exact value to within 0.01.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
    25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_critical_95(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` freedoms."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    if df in _T95:
        return _T95[df]
    return 1.960 + 2.4 / df


@dataclasses.dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample.

    ``ci95`` is the half-width of the 95% confidence interval on the
    mean (Student-t over the sample), 0.0 for single-observation or
    constant samples — so ``mean ± ci95`` is printable for any n.
    """

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    stdev: float
    ci95: float = 0.0

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.3f} "
                f"median={self.median:.3f} min={self.minimum:.3f} "
                f"max={self.maximum:.3f} sd={self.stdev:.3f} "
                f"ci95={self.ci95:.3f}")


def summarize(values: typing.Sequence[float]) -> Summary:
    """Summarise a non-empty sample."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarise an empty sample")
    stdev = statistics.stdev(data) if len(data) > 1 else 0.0
    if len(data) > 1 and stdev > 0.0:
        ci95 = t_critical_95(len(data) - 1) * stdev / math.sqrt(len(data))
    else:
        ci95 = 0.0
    return Summary(
        count=len(data),
        mean=statistics.fmean(data),
        median=statistics.median(data),
        minimum=min(data),
        maximum=max(data),
        stdev=stdev,
        ci95=ci95,
    )


def percentile(values: typing.Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile, ``fraction`` in [0, 1]."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of [0,1]: {fraction}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    # a + w*(b - a) is exact when a == b, unlike a*(1-w) + b*w.
    return ordered[low] + weight * (ordered[high] - ordered[low])
