"""Route metrics and the Fig. 3.13 route-selection rules.

For every remote device the DeviceStorage keeps exactly one route — "it is
impossible and unnecessary to store all of the possibilities ... The
optimal way is required" (§3.3).  When a neighbourhood snapshot offers an
alternative route to an already-stored device, the candidate replaces the
stored route iff it is *better* under the paper's ordering:

1. fewer jumps (the primary "cost of the connection", §3.3);
2. same jumps, lower first-hop mobility (§3.4.3: "only the nearest
   device's mobility numbers are considered");
3. same again, better quality — where a route whose every link meets the
   230 per-link threshold beats one that does not (Fig. 3.9), and raw
   quality sums break remaining ties (Fig. 3.8).
"""

from __future__ import annotations

import dataclasses

from repro.core.config import RoutingPolicy
from repro.core.device import MobilityClass


@dataclasses.dataclass(frozen=True)
class RouteMetrics:
    """The comparable facts about one route to one device.

    Attributes
    ----------
    jump:
        Hop count; direct neighbours have jump 0 (§3.3).
    first_hop_mobility:
        Mobility class of the nearest device on the route — the bridge for
        indirect routes, the target itself for direct ones.
    quality_sum:
        Sum of per-link qualities along the route (Fig. 3.8: "AB + BD").
    min_link_quality:
        Worst per-link quality on the route, used by the Fig. 3.9 rule.
    """

    jump: int
    first_hop_mobility: MobilityClass
    quality_sum: int
    min_link_quality: int

    def __post_init__(self) -> None:
        if self.jump < 0:
            raise ValueError(f"negative jump count: {self.jump}")
        if self.quality_sum < 0 or self.min_link_quality < 0:
            raise ValueError("negative quality")

    def meets_threshold(self, threshold: int) -> bool:
        """Fig. 3.9: every link on the route is at least ``threshold``."""
        return self.min_link_quality >= threshold

    def extend(self, link_quality: int,
               bridge_mobility: MobilityClass) -> "RouteMetrics":
        """Derive the metrics seen one hop upstream.

        A receiver that learns this route from a neighbour at
        ``link_quality`` stores it with one more jump, the neighbour as
        first hop, and the local link folded into the quality figures.
        """
        return RouteMetrics(
            jump=self.jump + 1,
            first_hop_mobility=bridge_mobility,
            quality_sum=self.quality_sum + link_quality,
            min_link_quality=min(self.min_link_quality, link_quality),
        )


def direct_route(quality: int, mobility: MobilityClass) -> RouteMetrics:
    """Metrics of a direct (0-jump) neighbour observed at ``quality``."""
    return RouteMetrics(jump=0, first_hop_mobility=mobility,
                        quality_sum=quality, min_link_quality=quality)


def is_better_route(candidate: RouteMetrics, incumbent: RouteMetrics,
                    policy: RoutingPolicy) -> bool:
    """True if ``candidate`` should replace ``incumbent`` (Fig. 3.13).

    Strictly better is required — equal routes keep the incumbent, which
    both avoids churn and matches the activity diagram (replacement only on
    the explicit "<"/">" branches).
    """
    return route_rank(candidate, policy) < route_rank(incumbent, policy)


def route_rank(metrics: RouteMetrics, policy: RoutingPolicy) -> tuple:
    """The Fig. 3.13 ordering as a public sort key (smaller is better).

    Exposed so other planes can rank many candidates in one ``sorted``
    pass instead of pairwise :func:`is_better_route` calls — the DTN
    forwarder (:mod:`repro.dtn.routing`) orders its per-contact
    transmission queue with the same lexicographic-policy pattern.
    O(1); the tuple is safe to cache per metrics/policy pair.
    """
    jump_key = metrics.jump
    mobility_key = int(metrics.first_hop_mobility) if policy.use_mobility else 0
    if policy.use_quality_threshold:
        threshold_key = 0 if metrics.meets_threshold(
            policy.quality_threshold) else 1
    else:
        threshold_key = 0
    quality_key = -metrics.quality_sum
    if policy.quality_first:
        return (threshold_key, quality_key, jump_key, mobility_key)
    return (jump_key, mobility_key, threshold_key, quality_key)


def best_route(routes: list[RouteMetrics],
               policy: RoutingPolicy) -> RouteMetrics | None:
    """Pick the best of several candidate routes (first wins ties)."""
    if not routes:
        return None
    winner = routes[0]
    for candidate in routes[1:]:
        if is_better_route(candidate, winner, policy):
            winner = candidate
    return winner
