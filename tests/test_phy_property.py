"""Lossy-PHY determinism and convergence properties (hypothesis; slow).

The contract under test, end to end:

* the analytic fading curve is monotone: loss never decreases with
  distance, and at any fixed *in-range* distance it never decreases
  with the shadowing sigma;
* the measured per-packet loss rate converges to the analytic curve
  (statistical tolerance, fixed seeds);
* under overlapping concurrent load at one receiver, at most one
  packet survives (capture is exclusive), so the delivered fraction is
  bounded by ``1/n`` — monotone non-increasing in offered load;
* end-to-end delivery under any lossy profile never beats the
  zero-loss world on the same seed (fixed-seed sigma ladders);
* explicit all-zero PHY params are byte-identical to absent params on
  ``dtn_sweep`` and ``fault_sweep`` cells (the no-PHY world); and
* the ``phy_sweep`` campaign is byte-identical at 1 and 2 workers.

These run whole scenario builds (and, for the sweep, whole campaigns)
per example, so they are ``@pytest.mark.slow`` — deselected from
tier-1, reselected by ``make test-all`` and the CI slow job.
"""

import dataclasses
import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.experiments.runner import jsonl_line, run_spec
from repro.experiments.spec import RunPoint
from repro.experiments.specs import get_spec
from repro.experiments.workloads import get_workload
from repro.mobility import StaticPosition
from repro.radio import BLUETOOTH, World
from repro.radio.phy import PhyPlane
from repro.sim import Simulator

pytestmark = pytest.mark.slow

seeds = st.integers(min_value=0, max_value=2**16)
sigmas = st.floats(min_value=0.5, max_value=16.0,
                   allow_nan=False, allow_infinity=False)


def _plane(sigma, seed=1, collisions=False):
    world = World(Simulator(seed=seed))
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(8.0, 0), [BLUETOOTH])
    return world, PhyPlane(world, shadowing_sigma_db=sigma,
                           collisions=collisions)


# ----------------------------------------------------------------------
# the analytic curve
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(sigma=sigmas,
       near=st.floats(min_value=0.5, max_value=20.0),
       far=st.floats(min_value=0.5, max_value=20.0))
def test_analytic_loss_is_monotone_in_distance(sigma, near, far):
    _, plane = _plane(sigma)
    lo, hi = sorted((near, far))
    assert (plane.loss_probability(lo)
            <= plane.loss_probability(hi) + 1e-12)


@settings(max_examples=50, deadline=None)
@given(first=sigmas, second=sigmas,
       distance=st.floats(min_value=0.5, max_value=9.9))
def test_analytic_loss_is_monotone_in_sigma_in_range(first, second,
                                                     distance):
    """At any in-range distance (rssi above the calibrated threshold),
    more shadowing can only raise the per-packet loss probability."""
    lo, hi = sorted((first, second))
    _, narrow = _plane(lo)
    _, wide = _plane(hi, seed=2)
    assert (narrow.loss_probability(distance)
            <= wide.loss_probability(distance) + 1e-12)


@settings(max_examples=8, deadline=None)
@given(seed=seeds, sigma=st.floats(min_value=3.0, max_value=12.0))
def test_measured_loss_converges_to_the_analytic_curve(seed, sigma):
    _, plane = _plane(sigma, seed=seed)
    trials = 1500
    lost = sum(not plane.transmit("a", "b", 200) for _ in range(trials))
    expected = plane.loss_probability(8.0)
    assert 0.0 < expected < 1.0
    assert lost / trials == pytest.approx(expected, abs=0.045)


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_measured_loss_rate_rises_with_sigma(seed):
    """The statistical face of the in-range monotonicity: at 8 m the
    empirical loss frequency under sigma 10 exceeds sigma 4 (analytic
    gap ~0.14, far beyond sampling noise at n=1500)."""
    def rate(sigma):
        _, plane = _plane(sigma, seed=seed)
        trials = 1500
        return sum(not plane.transmit("a", "b", 200)
                   for _ in range(trials)) / trials

    assert rate(4.0) < rate(10.0)


# ----------------------------------------------------------------------
# concurrent load
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=8),
       gaps=st.lists(st.floats(min_value=1.0, max_value=9.0),
                     min_size=8, max_size=8))
def test_overlapping_load_delivers_at_most_one(n, gaps):
    """However many transmissions overlap at one receiver, capture is
    exclusive: at most one survives, so the delivered fraction is
    bounded by 1/n — monotone non-increasing in offered load."""
    world = World(Simulator(seed=5))
    world.add_node("r", StaticPosition(0, 0), [BLUETOOTH])
    for index in range(n):
        world.add_node(f"s{index}", StaticPosition(gaps[index], 0.1),
                       [BLUETOOTH])
    plane = PhyPlane(world)
    txs = [plane.begin(f"s{index}", "r", 1000,
                       started_at=0.0, ends_at=1.0)
           for index in range(n)]
    delivered = sum(plane.resolve(tx) for tx in txs)
    assert delivered <= 1
    if n == 1:
        assert delivered == 1
    counters = plane.counters
    assert (counters.offered == counters.delivered
            + counters.lost_fading + counters.lost_collision == n)


# ----------------------------------------------------------------------
# end-to-end sigma ladders (fixed seeds, wide gaps)
# ----------------------------------------------------------------------
def test_zero_loss_delivery_dominates_every_lossy_profile():
    """On the same seed, no lossy profile ever delivers *more* than
    the zero-loss world — for either router."""
    base_settings = {"duration_s": 240.0, "messages": 6, "ttl_s": 200.0,
                     "size_bytes": 60_000, "rate_Bps": 24_000.0,
                     "routers": ("epidemic", "spray"),
                     "spray_copies": 6}

    def ratios(sigma, seed):
        params = {"count": 12}
        if sigma:
            params.update(shadowing_sigma_db=sigma, phy_collisions=1)
        point = RunPoint(spec="prop_ladder", workload="dtn_phy",
                         index=0, scenario="crowded_festival",
                         params=params, repeat=0, seed=seed,
                         settings=dict(base_settings))
        metrics = get_workload("dtn_phy")(point)
        return (metrics["epidemic_delivery_ratio"],
                metrics["spray_delivery_ratio"])

    for seed in (101, 303):
        clean = ratios(0.0, seed)
        for sigma in (6.0, 14.0):
            lossy = ratios(sigma, seed)
            assert lossy[0] <= clean[0], (seed, sigma)
            assert lossy[1] <= clean[1], (seed, sigma)


# ----------------------------------------------------------------------
# spec identity and worker independence
# ----------------------------------------------------------------------
def test_explicit_zero_phy_params_match_absent_params():
    """A ``dtn_sweep``/``fault_sweep`` cell with the PHY knobs spelled
    out as zeros must be byte-identical to the same cell without them:
    zero knobs build the literal no-PHY world."""
    cells = (
        ("dtn", "commuter_corridor",
         {"duration_s": 240.0, "messages": 8, "ttl_s": 200.0,
          "routers": ("direct", "epidemic", "spray"),
          "spray_copies": 6}),
        ("dtn_faults", "hostile_corridor",
         {"duration_s": 240.0, "messages": 8, "ttl_s": 200.0,
          "routers": ("direct", "spray"), "spray_copies": 4,
          "pattern": "uniform"}),
    )
    zeros = {"shadowing_sigma_db": 0.0, "phy_collisions": 0}
    for workload, scenario, cell_settings in cells:
        def run(params):
            point = RunPoint(
                spec="prop_phy_zero", workload=workload, index=0,
                scenario=scenario, params=dict(params), repeat=0,
                seed=9898, settings=dict(cell_settings))
            return get_workload(workload)(point)

        absent = run({})
        explicit = run(zeros)
        assert (json.dumps(absent, sort_keys=True)
                == json.dumps(explicit, sort_keys=True)), workload


def test_phy_sweep_is_byte_identical_across_worker_counts():
    spec = dataclasses.replace(get_spec("phy_sweep"), repeats=1)
    lines = {}
    for workers in (1, 2):
        results = run_spec(spec, workers=workers)
        lines[workers] = [jsonl_line(r.record) for r in results]
    assert lines[1] == lines[2]
    # And the lossy cells genuinely exercised the plane.
    offered = [json.loads(line)["metrics"]["epidemic_phy_offered"]
               for line in lines[1]]
    assert any(count > 0 for count in offered)
