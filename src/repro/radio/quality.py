"""Link-quality models: distance → the PeerHood 0–255 quality scale.

The thesis stores a single integer "link quality" per neighbour (§3.4.1),
compares route qualities additively (Fig. 3.8/3.9) and uses **230** as the
minimum acceptable per-link value (Fig. 3.9) and as the handover "signal
low" threshold (Fig. 5.8).  Quality 255 is a perfect link; 0 means no link.
"""

from __future__ import annotations

from repro.radio.propagation import LogDistancePathLoss, PathLossModel

#: Top of the PeerHood link-quality scale.
QUALITY_MAX = 255

#: The paper's minimum acceptable per-link quality (Figs. 3.9, 5.8).
PAPER_LOW_QUALITY_THRESHOLD = 230


def clamp_quality(value: float) -> int:
    """Round and clamp a raw quality figure onto the 0–255 scale."""
    return max(0, min(QUALITY_MAX, round(value)))


class QualityModel:
    """Interface: ``quality(distance_m, range_m) -> int`` in 0–255."""

    def quality(self, distance_m: float, range_m: float) -> int:
        """Link quality at the given distance for a radio of given range."""
        raise NotImplementedError


class PiecewiseLinearQuality(QualityModel):
    """Plateau-then-ramp model matching observed Bluetooth behaviour.

    Real Bluetooth link quality sits near 255 until the device approaches
    the coverage edge, then falls quickly (§5.2.1: "the decrease of
    Bluetooth link quality parameter is really fast").  We model:

    * ``quality = 255`` for ``d <= plateau_fraction * range``;
    * linear ramp from 255 down to ``edge_quality`` at ``d = range``;
    * 0 beyond range (no link).

    With the defaults (plateau 0.5, edge quality 180) the paper's 230
    threshold is crossed at two thirds of the radio range — the device is
    "almost leaving the coverage area" (§3.4.1).
    """

    def __init__(self, plateau_fraction: float = 0.5,
                 edge_quality: int = 180):
        if not 0.0 <= plateau_fraction < 1.0:
            raise ValueError(
                f"plateau fraction out of [0,1): {plateau_fraction}")
        if not 0 <= edge_quality < QUALITY_MAX:
            raise ValueError(f"edge quality out of range: {edge_quality}")
        self.plateau_fraction = plateau_fraction
        self.edge_quality = edge_quality

    def quality(self, distance_m: float, range_m: float) -> int:
        if distance_m < 0:
            raise ValueError(f"negative distance: {distance_m}")
        if range_m <= 0:
            raise ValueError(f"non-positive range: {range_m}")
        if distance_m > range_m:
            return 0
        plateau_end = self.plateau_fraction * range_m
        if distance_m <= plateau_end:
            return QUALITY_MAX
        ramp = (distance_m - plateau_end) / (range_m - plateau_end)
        value = QUALITY_MAX - ramp * (QUALITY_MAX - self.edge_quality)
        return clamp_quality(value)

    def distance_for_quality(self, target_quality: int,
                             range_m: float) -> float:
        """Distance at which quality first drops to ``target_quality``."""
        if target_quality >= QUALITY_MAX:
            return 0.0
        if target_quality <= self.edge_quality:
            return range_m
        plateau_end = self.plateau_fraction * range_m
        ramp = (QUALITY_MAX - target_quality) / (
            QUALITY_MAX - self.edge_quality)
        return plateau_end + ramp * (range_m - plateau_end)


class PathLossQuality(QualityModel):
    """RSSI-derived quality: log-distance path loss linearly rescaled.

    ``quality = 255 * (rssi - floor) / (ceiling - floor)``, clamped, and 0
    beyond the radio range.  This is closest to what the thesis actually
    measured (HCI RSSI during discovery fetch connections, §3.4.1).
    """

    def __init__(self, path_loss: PathLossModel | None = None,
                 rssi_ceiling_dbm: float = -45.0,
                 rssi_floor_dbm: float = -90.0):
        if rssi_floor_dbm >= rssi_ceiling_dbm:
            raise ValueError("rssi floor must lie below ceiling")
        self.path_loss = path_loss or LogDistancePathLoss()
        self.rssi_ceiling_dbm = rssi_ceiling_dbm
        self.rssi_floor_dbm = rssi_floor_dbm

    def quality(self, distance_m: float, range_m: float) -> int:
        if distance_m < 0:
            raise ValueError(f"negative distance: {distance_m}")
        if distance_m > range_m:
            return 0
        rssi = self.path_loss.rssi_dbm(distance_m)
        span = self.rssi_ceiling_dbm - self.rssi_floor_dbm
        fraction = (rssi - self.rssi_floor_dbm) / span
        return clamp_quality(QUALITY_MAX * fraction)
