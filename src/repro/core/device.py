"""Device identity and mobility classification.

§2.3: "To be able to distinguish devices from each other, the devices must
contain some unique information.  MAC-Address of network interfaces is the
most appropriate ... Checksum number is also included as device parameter.
Currently checksum is the same as daemon process ID number and is not used."

§3.4.3 classifies devices into static / hybrid / dynamic with the numeric
values {0, 1, 3} "to make easier the comparison during the device discovery
process".

The mobility *class* here is the advertised routing hint (how stable a hop
through this device is); the physical counterpart is the node's mobility
*model* (``repro.mobility``), which drives its position in the radio world
and its spatial-grid cell.  ``docs/ARCHITECTURE.md`` maps both onto the
paper's sections.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib


class MobilityClass(enum.IntEnum):
    """The paper's device mobility classes with their exact values."""

    STATIC = 0
    HYBRID = 1
    DYNAMIC = 3

    @classmethod
    def parse(cls, value: "MobilityClass | str | int") -> "MobilityClass":
        """Accept an enum member, its name (any case) or its value."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls[value.upper()]
            except KeyError:
                raise ValueError(
                    f"unknown mobility class {value!r}; "
                    f"expected static, hybrid or dynamic") from None
        return cls(value)


def mobility_addition(first: MobilityClass, second: MobilityClass) -> int:
    """The §3.4.3 route-stability cost of two hops' mobility classes.

    The paper tabulates all nine combinations; the cost is simply the sum
    of the numeric class values (0+0=0 ... 3+3=6) — "the smaller the
    mobility number is, the better would be the stability of the
    connection".
    """
    return int(first) + int(second)


def address_for(device_name: str) -> str:
    """Deterministic MAC-style address derived from a device name.

    Real PeerHood keys devices by interface MAC; the simulation derives a
    stable pseudo-MAC from the name so traces are readable and runs
    reproducible.
    """
    digest = hashlib.sha256(device_name.encode()).hexdigest()
    pairs = [digest[i:i + 2] for i in range(0, 12, 2)]
    return ":".join(pairs)


@dataclasses.dataclass(frozen=True)
class DeviceIdentity:
    """What a device tells the world about itself during discovery.

    Attributes
    ----------
    address:
        Unique MAC-style identifier (the DeviceStorage key).
    name:
        Human-readable device name.
    mobility:
        §3.4.3 class, set as "a system parameter in the initialization".
    checksum:
        The daemon process id; carried but unused, as in the paper (§2.3).
    """

    address: str
    name: str
    mobility: MobilityClass
    checksum: int = 0

    @classmethod
    def create(cls, name: str,
               mobility: "MobilityClass | str | int" = MobilityClass.DYNAMIC,
               checksum: int = 0) -> "DeviceIdentity":
        """Build an identity with the derived pseudo-MAC address."""
        return cls(address=address_for(name), name=name,
                   mobility=MobilityClass.parse(mobility), checksum=checksum)

    def wire_size(self) -> int:
        """Approximate serialised size in bytes (for traffic accounting)."""
        return 17 + len(self.name) + 4 + 4  # MAC + name + mobility + checksum
