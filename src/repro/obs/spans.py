"""Span-style structured records for the telemetry plane.

A :class:`Span` is one hot-flow occurrence with an open and (usually) a
close edge: a contact window opening and closing, a bundle travelling
from injection to delivery or drop, a handover from the signal-low
trigger to the routing switch, a fault taking a node down and the
reboot bringing it back.  Spans carry a small JSON-safe ``detail``
mapping (bytes/budget, hop lists, durations, reasons).

The :class:`SpanLog` keeps spans in *open order* — the order their
opening edge was observed, which is deterministic because every edge is
driven by a kernel event.  Spans still open when the run ends are
emitted with ``status="open"`` rather than silently dropped.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass
class Span:
    """One open→close flow occurrence."""

    kind: str                      #: "contact" | "bundle" | "handover" | "fault"
    key: str                       #: flow identity within the kind
    opened_at: float               #: sim time of the opening edge
    closed_at: float | None = None
    status: str = "open"           #: "open" until closed
    detail: dict[str, object] = dataclasses.field(default_factory=dict)

    def close(self, when: float, status: str, **detail: object) -> "Span":
        """Record the closing edge (idempotent: first close wins)."""
        if self.closed_at is None:
            self.closed_at = when
            self.status = status
            self.detail.update(detail)
        return self

    def as_record(self, label: str = "") -> dict[str, object]:
        """JSON-safe telemetry row (type-tagged, flat envelope)."""
        record: dict[str, object] = {
            "type": "span",
            "kind": self.kind,
            "key": self.key,
            "t_open": self.opened_at,
            "t_close": self.closed_at,
            "status": self.status,
            "detail": self.detail,
        }
        if label:
            record["leg"] = label
        return record


class SpanLog:
    """Append-only span container, ordered by opening edge."""

    def __init__(self) -> None:
        self._spans: list[Span] = []

    def begin(self, kind: str, key: str, when: float,
              **detail: object) -> Span:
        span = Span(kind=kind, key=key, opened_at=when,
                    detail=dict(detail))
        self._spans.append(span)
        return span

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> typing.Iterator[Span]:
        return iter(self._spans)

    def by_kind(self, kind: str) -> list[Span]:
        return [span for span in self._spans if span.kind == kind]
