"""Composable fault models: sample a schedule, arm it on a plane.

Each model draws its schedule from its own labelled RNG sub-streams
(``faults/crash/<node>``, ``faults/radio/<node>``, ``faults/byz/<node>``,
``faults/jammer/<i>``) so

* the schedule is a pure function of ``(master seed, parameters)`` —
  byte-identical at any worker count, and
* installing faults never perturbs mobility / traffic / latency draws
  (labelled streams are independent; see :mod:`repro.sim.rng`).

:func:`install_scenario_faults` is the scenario-factory entry point: it
composes the standard four models from plain keyword parameters and —
crucially — installs **nothing at all** when every rate is zero, so a
zero-rate configuration runs the literal fault-free code path
(``world.faults is None``; the differential benchmark gates on this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plane import (BYZANTINE, CRASH, DEAF, DEAF_END, JAMMER,
                                MUTE, MUTE_END, REBOOT, FaultEvent,
                                FaultPlane)
from repro.mobility.waypoint import RandomWaypoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.builder import Scenario

#: Traffic terminals the bundled scenarios address by name; fault models
#: never pick them, so workloads always have live endpoints to measure.
SPARE_TERMINALS = frozenset({"home", "work", "kiosk", "depot", "source"})

#: Sampled durations spread uniformly over [0.5, 1.5] × the scale param.
_DURATION_SPREAD = (0.5, 1.5)


class FaultModel:
    """One fault family; ``install`` samples and arms its schedule.

    Models are composable: install any subset onto one
    :class:`~repro.faults.plane.FaultPlane` in any order — each samples
    from its own labelled sub-streams, so composition never changes any
    individual schedule.
    """

    def install(self, plane: FaultPlane, nodes) -> list[FaultEvent]:
        """Sample this model's events for ``nodes`` and arm them.

        ``nodes`` is iterated in sorted order and each node gets its own
        sub-stream, so membership changes elsewhere never shift another
        node's draw.  Returns the armed events.
        """
        raise NotImplementedError


class CrashReboot(FaultModel):
    """Transient node death: dark for a sampled outage, state wiped.

    Each selected node crashes once, at an onset uniform over the fault
    window, for ``[0.5, 1.5] × downtime_s``.  Distinct from permanent
    removal: the node reboots at its mobility position with an empty
    store, cleared summary vector, and no router state — peers must
    rediscover it and may re-infect it with copies it already carried.
    """

    def __init__(self, rate: float, downtime_s: float = 45.0,
                 window_s: float = 480.0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"crash rate out of range: {rate}")
        if downtime_s <= 0 or window_s <= 0:
            raise ValueError("downtime and window must be positive")
        self.rate = rate
        self.downtime_s = downtime_s
        self.window_s = window_s

    def install(self, plane: FaultPlane, nodes) -> list[FaultEvent]:
        events = []
        for node in sorted(nodes):
            rng = plane.sim.rng(f"faults/crash/{node}")
            if not rng.bernoulli(self.rate):
                continue
            onset = rng.uniform(0.0, self.window_s)
            downtime = rng.uniform(*_DURATION_SPREAD) * self.downtime_s
            events.append(FaultEvent(onset, CRASH, node))
            events.append(FaultEvent(onset + downtime, REBOOT, node))
        plane.arm(events)
        return events


class RadioFault(FaultModel):
    """Half-duplex radio failure: deaf (won't receive) or mute (won't
    send) for an interval, chosen per node with equal odds.

    Unlike a crash the node keeps its state and stays discoverable —
    only the affected direction of bundle transfer is suppressed, so a
    mute carrier still *accumulates* custody it cannot shed.
    """

    def __init__(self, rate: float, outage_s: float = 45.0,
                 window_s: float = 480.0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"radio-fault rate out of range: {rate}")
        if outage_s <= 0 or window_s <= 0:
            raise ValueError("outage and window must be positive")
        self.rate = rate
        self.outage_s = outage_s
        self.window_s = window_s

    def install(self, plane: FaultPlane, nodes) -> list[FaultEvent]:
        events = []
        for node in sorted(nodes):
            rng = plane.sim.rng(f"faults/radio/{node}")
            if not rng.bernoulli(self.rate):
                continue
            deaf = rng.random() < 0.5
            start = rng.uniform(0.0, self.window_s)
            duration = rng.uniform(*_DURATION_SPREAD) * self.outage_s
            begin, end = (DEAF, DEAF_END) if deaf else (MUTE, MUTE_END)
            events.append(FaultEvent(start, begin, node))
            events.append(FaultEvent(start + duration, end, node))
        plane.arm(events)
        return events


class ByzantineBeacons(FaultModel):
    """Nodes that advertise false discovery info: an empty summary
    vector ("I carry nothing"), permanently, from t = 0.

    The lie never corrupts ground truth — reception, delivery and
    custody settlement still use real store state — it only attracts
    duplicate offers, burning honest nodes' transmissions and contact
    bytes (counted ``byzantine_beacons``).
    """

    def __init__(self, rate: float):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"byzantine rate out of range: {rate}")
        self.rate = rate

    def install(self, plane: FaultPlane, nodes) -> list[FaultEvent]:
        events = []
        for node in sorted(nodes):
            rng = plane.sim.rng(f"faults/byz/{node}")
            if rng.bernoulli(self.rate):
                events.append(FaultEvent(0.0, BYZANTINE, node))
        plane.arm(events)
        return events


class MobileJammer(FaultModel):
    """Roaming coverage disks that suppress transfer attempts inside.

    Each jammer is a random-waypoint mover (its own ``faults/jammer/i``
    stream) with a fixed radius; it is positional state, not a node —
    zero kernel events, evaluated lazily at transfer-attempt instants.
    """

    def __init__(self, count: int, area, radius_m: float = 10.0,
                 speed_range=(1.0, 3.0), pause_range=(0.0, 10.0)):
        if count < 0:
            raise ValueError(f"jammer count must be >= 0: {count}")
        self.count = count
        self.area = area
        self.radius_m = radius_m
        self.speed_range = speed_range
        self.pause_range = pause_range

    def install(self, plane: FaultPlane, nodes) -> list[FaultEvent]:
        events = []
        for index in range(self.count):
            mobility = RandomWaypoint(
                plane.sim.rng(f"faults/jammer/{index}"), area=self.area,
                speed_range=self.speed_range,
                pause_range=self.pause_range)
            plane.add_jammer(mobility, self.radius_m)
            events.append(FaultEvent(0.0, JAMMER, f"jammer{index}"))
        plane.arm(events)
        return events


def install_scenario_faults(scenario: "Scenario", *,
                            crash_rate: float = 0.0,
                            crash_downtime_s: float = 45.0,
                            radio_fault_rate: float = 0.0,
                            byzantine_rate: float = 0.0,
                            jammer_count: int = 0,
                            fault_window_s: float = 480.0,
                            area=(60.0, 60.0),
                            jammer_radius_m: float = 10.0,
                            spare=SPARE_TERMINALS):
    """Compose the standard fault models onto a freshly built scenario.

    Called by the bundled scenario factories after their topology is in
    place.  Returns the installed :class:`FaultPlane`, or ``None`` —
    installing nothing — when every rate is zero and there are no
    jammers: the zero-rate configuration *is* the fault-free plane
    (``world.faults`` stays unset), which is what the differential
    benchmark gate compares against.

    ``crash_downtime_s`` doubles as the radio-fault outage scale (one
    knob for "how long do outages last").  ``spare`` nodes (the named
    traffic terminals by default) are never selected by node-targeting
    models; the jammer roams ``area`` regardless.
    """
    for name, rate in (("crash_rate", crash_rate),
                       ("radio_fault_rate", radio_fault_rate),
                       ("byzantine_rate", byzantine_rate)):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} out of range: {rate}")
    if jammer_count < 0:
        raise ValueError(f"jammer_count must be >= 0: {jammer_count}")
    if (crash_rate <= 0 and radio_fault_rate <= 0
            and byzantine_rate <= 0 and jammer_count <= 0):
        return None
    plane = FaultPlane(scenario.world)
    eligible = [node for node in scenario.world.node_ids()
                if node not in spare]
    if crash_rate > 0:
        CrashReboot(crash_rate, crash_downtime_s,
                    fault_window_s).install(plane, eligible)
    if radio_fault_rate > 0:
        RadioFault(radio_fault_rate, crash_downtime_s,
                   fault_window_s).install(plane, eligible)
    if byzantine_rate > 0:
        ByzantineBeacons(byzantine_rate).install(plane, eligible)
    if jammer_count > 0:
        MobileJammer(jammer_count, area,
                     jammer_radius_m).install(plane, eligible)
    return plane
