"""Aligned-table and CSV rendering shared by benchmarks and reports.

One implementation serves both consumers: the paper-reproduction
benchmarks (via :mod:`benchmarks.paperbench`, which re-exports
:func:`print_table`) and ``python -m repro.experiments report``.
"""

from __future__ import annotations

import csv
import io
import typing

Rows = typing.Sequence[typing.Sequence[object]]


def format_table(title: str, headers: typing.Sequence[str],
                 rows: Rows) -> str:
    """Render an aligned text table (the benchmark-table format)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    parts = [f"\n== {title} ==", line, "-" * len(line)]
    for row in rendered:
        parts.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(parts)


def print_table(title: str, headers: typing.Sequence[str],
                rows: Rows) -> None:
    """Print an aligned reproduction table."""
    print(format_table(title, headers, rows))


def render_csv(headers: typing.Sequence[str], rows: Rows) -> str:
    """Render rows as CSV text, deterministically (``\\n`` line ends)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow(["" if cell is None else cell for cell in row])
    return buffer.getvalue()
