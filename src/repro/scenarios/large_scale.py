"""Large-N scenario family: dense plaza, sparse highway, flash crowd.

The paper evaluated PeerHood with a handful of laptops and phones; the
ROADMAP's north star is production scale.  These builders generate the
workloads that stress the discovery layer at hundreds of devices — the
regime where the seed's O(N²) pairwise neighbor scan collapsed and the
spatial-grid index (:mod:`repro.radio.spatial`) is load-bearing.

Four regimes, chosen to exercise the geometry layer differently:

* :func:`dense_plaza` — many slow pedestrians packed into a small square;
  high cell occupancy, neighbor lists dominated by genuine neighbors.
* :func:`sparse_highway` — fast vehicles strung along kilometres of road;
  most grid cells empty, neighbor lists short, heavy re-bucketing as
  vehicles cross cell boundaries every few sim-seconds.
* :func:`flash_crowd` — a resident population plus hundreds of transient
  walkers arriving in a burst and leaving again; exercises mid-run
  ``add_node``/``remove_node`` churn, including spatial-grid insertion
  and eviction while discovery loops are running.
* :func:`city_day` — a mixed city-scale population (pedestrians,
  scripted vehicles, static kiosks) at constant *density* regardless of
  N; the 10⁴–10⁵-node regime the numpy batch geometry engine
  (:mod:`repro.radio.vectorized`) exists for.

All builders return an unstarted :class:`~repro.scenarios.builder.
Scenario` (call ``start_all()``); distances in metres, times in
sim-seconds.
"""

from __future__ import annotations

import math
import typing

from repro.core.config import DaemonConfig
from repro.mobility.linear import LinearMovement, PathMovement
from repro.mobility.waypoint import RandomWaypoint
from repro.scenarios.builder import Scenario


def dense_plaza(count: int, area: float = 60.0, seed: int = 0,
                technologies: typing.Sequence[str] = ("bluetooth",),
                speed_range: tuple[float, float] = (0.3, 1.5),
                pause_range: tuple[float, float] = (0.0, 30.0),
                config: DaemonConfig | None = None) -> Scenario:
    """``count`` pedestrians random-waypointing in an ``area`` × ``area``
    metre square (nodes ``p0`` … ``p{count-1}``).

    With the defaults and Bluetooth's 10 m radius, 300 pedestrians on a
    60 m square average ~26 neighbors each — dense enough that discovery
    cost is dominated by genuine neighbors, which is exactly the regime
    where the grid's O(neighbors) query wins over the O(N) scan.
    """
    if count < 1:
        raise ValueError(f"need at least one pedestrian, got {count}")
    if area <= 0:
        raise ValueError(f"area must be positive: {area}")
    scenario = Scenario(seed=seed)
    for index in range(count):
        mobility = RandomWaypoint(
            scenario.sim.rng(f"plaza/{index}"), area=(area, area),
            speed_range=speed_range, pause_range=pause_range)
        scenario.add_node(f"p{index}", mobility=mobility,
                          technologies=technologies,
                          mobility_class="dynamic", config=config)
    return scenario


def sparse_highway(count: int, length_m: float = 2000.0, lanes: int = 2,
                   lane_spacing_m: float = 4.0,
                   speed_range: tuple[float, float] = (22.0, 33.0),
                   seed: int = 0,
                   technologies: typing.Sequence[str] = ("wlan",),
                   config: DaemonConfig | None = None) -> Scenario:
    """``count`` vehicles (``v0`` …) on a straight ``length_m``-metre road.

    Vehicles are scattered uniformly along the road in ``lanes`` lanes
    ``lane_spacing_m`` apart; even lanes drive +x, odd lanes −x, each at
    a constant speed drawn from ``speed_range`` (m/s — the default is
    motorway pace, ~80–120 km/h).  Density is low (tens of metres
    between WLAN-range encounters) and relative speeds are high, so
    neighbor sets are short-lived and the spatial grid re-buckets
    constantly — the opposite stress from :func:`dense_plaza`.
    """
    if count < 1:
        raise ValueError(f"need at least one vehicle, got {count}")
    if length_m <= 0 or lanes < 1:
        raise ValueError("highway needs positive length and >= 1 lane")
    scenario = Scenario(seed=seed)
    rng = scenario.sim.rng("highway/layout")
    for index in range(count):
        lane = index % lanes
        heading = 1.0 if lane % 2 == 0 else -1.0
        start = (rng.uniform(0.0, length_m), lane * lane_spacing_m)
        speed = rng.uniform(*speed_range)
        scenario.add_node(
            f"v{index}",
            mobility=LinearMovement(start, (heading * speed, 0.0)),
            technologies=technologies,
            mobility_class="dynamic", config=config)
    return scenario


def flash_crowd(base_count: int = 20, crowd_count: int = 200,
                area: float = 80.0, arrive_start_s: float = 30.0,
                mean_interarrival_s: float = 1.0,
                dwell_range_s: tuple[float, float] = (60.0, 240.0),
                seed: int = 0,
                technologies: typing.Sequence[str] = ("bluetooth",),
                config: DaemonConfig | None = None) -> Scenario:
    """A resident population plus a transient crowd churning through.

    ``base_count`` residents (``r0`` …) roam the square permanently.
    From ``arrive_start_s`` a churn process injects ``crowd_count``
    walkers (``c0`` …) with exponential inter-arrival times (mean
    ``mean_interarrival_s``); each crowd walker powers on, runs a full
    PeerHood daemon, dwells for a uniform draw from ``dwell_range_s``
    and is then powered off via :meth:`Scenario.remove_node` — the
    world-level eviction path (spatial grids, quality overrides,
    inquiry state) runs under live discovery traffic.

    Start the residents with ``start_all()`` before running; crowd
    walkers start their own daemons on arrival.  The churn process is
    already spawned — just ``run(until=...)``.
    """
    if base_count < 0 or crowd_count < 0:
        raise ValueError("node counts must be non-negative")
    if mean_interarrival_s <= 0:
        raise ValueError(
            f"mean interarrival must be positive: {mean_interarrival_s}")
    scenario = Scenario(seed=seed)
    for index in range(base_count):
        mobility = RandomWaypoint(
            scenario.sim.rng(f"flash/base/{index}"), area=(area, area))
        scenario.add_node(f"r{index}", mobility=mobility,
                          technologies=technologies,
                          mobility_class="dynamic", config=config)

    def depart_later(sim, name: str, dwell_s: float):
        yield sim.timeout(dwell_s)
        if name in scenario.nodes:
            scenario.remove_node(name)

    def churn(sim):
        rng = sim.rng("flash/churn")
        yield sim.timeout(arrive_start_s)
        for index in range(crowd_count):
            name = f"c{index}"
            mobility = RandomWaypoint(
                sim.rng(f"flash/crowd/{index}"), area=(area, area))
            node = scenario.add_node(name, mobility=mobility,
                                     technologies=technologies,
                                     mobility_class="dynamic", config=config)
            node.start()
            sim.spawn(
                depart_later(sim, name, rng.uniform(*dwell_range_s)),
                name=f"flash-depart:{name}")
            yield sim.timeout(rng.expovariate(1.0 / mean_interarrival_s))

    scenario.sim.spawn(churn(scenario.sim), name="flash-crowd-churn")
    return scenario


def city_day(count: int = 10000,
             density_per_m2: float = 500.0 / (120.0 * 120.0),
             seed: int = 0,
             technologies: typing.Sequence[str] = ("bluetooth",),
             pedestrian_fraction: float = 0.7,
             vehicle_fraction: float = 0.2,
             config: DaemonConfig | None = None) -> Scenario:
    """A city-scale mixed population: the batch geometry engine's regime.

    ``count`` devices on a square sized so the area density matches
    ``density_per_m2`` (the default keeps dense-plaza-like occupancy —
    ~500 devices per 120 m square — regardless of ``count``, so the
    *neighbor* structure stays realistic while N scales to 10⁴–10⁵):

    * ``pedestrian_fraction`` random-waypoint pedestrians (``p0`` …) at
      walking pace;
    * ``vehicle_fraction`` vehicles (``v0`` …) shuttling scripted
      east–west lane runs at 8–14 m/s — two round trips, then parked
      (their :class:`~repro.mobility.linear.PathMovement` settles, so
      the contact plane can park their watches);
    * the remainder static kiosks (``k0`` …) on a regular grid.

    At ``count=10000`` the scalar discovery sweep does ~10⁴ Python-level
    neighbor queries per round; this scenario exists to show the
    vectorized path (:mod:`repro.radio.vectorized`) completing the same
    sweep as a handful of array operations.  All distances metres, times
    sim-seconds.
    """
    if count < 3:
        raise ValueError(f"city_day needs at least 3 devices, got {count}")
    if density_per_m2 <= 0:
        raise ValueError(f"density must be positive: {density_per_m2}")
    if not (0.0 <= pedestrian_fraction <= 1.0
            and 0.0 <= vehicle_fraction <= 1.0
            and pedestrian_fraction + vehicle_fraction <= 1.0):
        raise ValueError(
            f"fractions must be in [0, 1] and sum <= 1: "
            f"{pedestrian_fraction}, {vehicle_fraction}")
    area = math.sqrt(count / density_per_m2)
    scenario = Scenario(seed=seed)
    pedestrians = int(count * pedestrian_fraction)
    vehicles = int(count * vehicle_fraction)
    kiosks = count - pedestrians - vehicles
    for index in range(pedestrians):
        mobility = RandomWaypoint(
            scenario.sim.rng(f"city/ped/{index}"), area=(area, area),
            speed_range=(0.5, 2.0), pause_range=(0.0, 30.0))
        scenario.add_node(f"p{index}", mobility=mobility,
                          technologies=technologies,
                          mobility_class="dynamic", config=config)
    lane_rng = scenario.sim.rng("city/lanes")
    for index in range(vehicles):
        lane_y = lane_rng.uniform(0.0, area)
        start_x = lane_rng.uniform(0.0, area)
        speed = lane_rng.uniform(8.0, 14.0)
        # Two east–west round trips from start_x, then parked at home.
        waypoints = [(0.0, (start_x, lane_y))]
        clock = 0.0
        for target_x in (area, 0.0, area, 0.0, start_x):
            previous_x = waypoints[-1][1][0]
            clock += abs(target_x - previous_x) / speed
            waypoints.append((clock, (target_x, lane_y)))
        scenario.add_node(f"v{index}", mobility=PathMovement(waypoints),
                          technologies=technologies,
                          mobility_class="dynamic", config=config)
    if kiosks:
        columns = max(1, math.ceil(math.sqrt(kiosks)))
        spacing = area / columns
        for index in range(kiosks):
            position = ((index % columns + 0.5) * spacing,
                        (index // columns + 0.5) * spacing)
            scenario.add_node(f"k{index}", position=position,
                              technologies=technologies,
                              mobility_class="static", config=config)
    return scenario
