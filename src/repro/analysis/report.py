"""Render bench snapshots + sweep results into one versioned report.

``python -m repro.analysis report`` builds a :class:`Document` — a tiny
format-neutral block model (headings, paragraphs, tables, preformatted
text) rendered to both GitHub-flavoured markdown and standalone HTML —
from four source kinds:

* every ``BENCH_*.json`` snapshot at the root (benchmark-specific
  sections: delivery tables, wakeup/byte breakdowns, plus a generic
  metric dump so unknown snapshots still render);
* a **paper-comparison table** assembling the stack's headline claims
  (grid reduction, wakeup reductions, PRoPHET vs epidemic, fault
  degradation) from whichever snapshots are present;
* each sweep directory's ``runs.jsonl``, folded through the experiment
  aggregator (:mod:`repro.experiments.report`) into mean±CI pivots —
  the committed ``results/fault_sweep/`` is the worked example;
* the ``BENCH_trajectory.jsonl`` log, summarised per benchmark so the
  perf trajectory across PRs is visible in the report itself.

The report is *versioned*: its header records the git SHA and UTC
timestamp it was rendered at.  Rendering is pure read-side work — no
simulator import, no RNG, safe to run anywhere.
"""

from __future__ import annotations

import datetime
import html
import json
import pathlib
import typing

from repro.analysis.gates import numeric_leaves
from repro.analysis.snapshots import (git_sha, load_snapshots,
                                      trajectory_by_benchmark,
                                      trajectory_entries)

Cell = object
Rows = typing.Sequence[typing.Sequence[Cell]]

_HTML_STYLE = """\
body { font-family: sans-serif; max-width: 72rem; margin: 2rem auto;
       padding: 0 1rem; color: #1a1a1a; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #bbb; padding: 0.25rem 0.6rem;
         text-align: left; }
th { background: #f0f0f0; }
pre { background: #f6f6f6; padding: 0.75rem; overflow-x: auto; }
h1, h2, h3 { line-height: 1.2; }
"""


class Document:
    """Ordered blocks rendered to markdown or HTML.

    Blocks are plain tuples so tests can assert on structure without
    parsing either output format.
    """

    def __init__(self, title: str) -> None:
        self.title = title
        self.blocks: list[tuple] = [("heading", 1, title)]

    def heading(self, level: int, text: str) -> None:
        self.blocks.append(("heading", level, text))

    def paragraph(self, text: str) -> None:
        self.blocks.append(("paragraph", text))

    def table(self, headers: typing.Sequence[str], rows: Rows) -> None:
        self.blocks.append(("table", tuple(headers),
                            tuple(tuple(row) for row in rows)))

    def preformatted(self, text: str) -> None:
        self.blocks.append(("pre", text))

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _cell(value: Cell) -> str:
        if value is None:
            return "—"
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)

    def to_markdown(self) -> str:
        out: list[str] = []
        for block in self.blocks:
            if block[0] == "heading":
                _, level, text = block
                out.append("#" * level + " " + text)
            elif block[0] == "paragraph":
                out.append(block[1])
            elif block[0] == "table":
                _, headers, rows = block
                lines = ["| " + " | ".join(headers) + " |",
                         "|" + "|".join(" --- " for _ in headers) + "|"]
                lines.extend("| " + " | ".join(
                    self._cell(cell) for cell in row) + " |"
                    for row in rows)
                out.append("\n".join(lines))
            elif block[0] == "pre":
                out.append("```\n" + block[1].rstrip("\n") + "\n```")
        return "\n\n".join(out) + "\n"

    def to_html(self) -> str:
        out: list[str] = [
            "<!DOCTYPE html>", "<html><head>",
            '<meta charset="utf-8">',
            f"<title>{html.escape(self.title)}</title>",
            f"<style>{_HTML_STYLE}</style>",
            "</head><body>"]
        for block in self.blocks:
            if block[0] == "heading":
                _, level, text = block
                out.append(f"<h{level}>{html.escape(text)}</h{level}>")
            elif block[0] == "paragraph":
                out.append(f"<p>{html.escape(block[1])}</p>")
            elif block[0] == "table":
                _, headers, rows = block
                parts = ["<table>", "<tr>"]
                parts.extend(f"<th>{html.escape(str(h))}</th>"
                             for h in headers)
                parts.append("</tr>")
                for row in rows:
                    parts.append("<tr>")
                    parts.extend(
                        f"<td>{html.escape(self._cell(cell))}</td>"
                        for cell in row)
                    parts.append("</tr>")
                parts.append("</table>")
                out.append("".join(parts))
            elif block[0] == "pre":
                out.append(f"<pre>{html.escape(block[1])}</pre>")
        out.append("</body></html>")
        return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# snapshot sections
# ----------------------------------------------------------------------
def _fmt(value: object, digits: int = 4) -> object:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return round(value, digits)
    return value


def _envelope_line(snapshot: dict) -> str:
    envelope = snapshot.get("envelope")
    if not isinstance(envelope, dict):
        return "no envelope (pre-pipeline snapshot)"
    bits = [f"git {envelope.get('git_sha', '?')}",
            f"generated {envelope.get('generated_at', '?')}"]
    if envelope.get("n") is not None:
        bits.append(f"N={envelope['n']}")
    if envelope.get("repeats") is not None:
        bits.append(f"repeats={envelope['repeats']}")
    return ", ".join(bits)


def _section_scale(doc: Document, snap: dict) -> None:
    rows = snap.get("rows")
    if not isinstance(rows, list):
        return
    doc.table(
        ["N", "grid checks/round", "brute checks/round", "reduction",
         "grid ms/round", "brute ms/round"],
        [[r.get("n"), r.get("grid_distance_checks_per_round"),
          r.get("brute_distance_checks_per_round"), r.get("reduction"),
          r.get("grid_ms_per_round"), r.get("brute_ms_per_round")]
         for r in rows if isinstance(r, dict)])


def _polling_vs_event(doc: Document, snap: dict,
                      reduction_keys: typing.Sequence[str]) -> None:
    polling = snap.get("polling")
    event = snap.get("event_driven")
    if isinstance(polling, dict) and isinstance(event, dict):
        keys = sorted(k for k in set(polling) & set(event)
                      if isinstance(polling.get(k), (int, float))
                      and not isinstance(polling.get(k), bool))
        doc.table(["metric", "polling", "event-driven"],
                  [[k, _fmt(polling[k]), _fmt(event[k])] for k in keys])
    reductions = [[k, _fmt(snap[k])] for k in reduction_keys if k in snap]
    if reductions:
        doc.table(["reduction gate", "measured"], reductions)


def _section_dtn(doc: Document, snap: dict) -> None:
    sweep = snap.get("sweep")
    if isinstance(sweep, dict) and isinstance(
            sweep.get("mean_delivery_ratio"), dict):
        doc.table(["router", "mean delivery ratio"],
                  [[name, _fmt(value)] for name, value in sorted(
                      sweep["mean_delivery_ratio"].items())])
    _polling_vs_event(doc, snap, ["wakeup_reduction"])


def _section_event(doc: Document, snap: dict) -> None:
    _polling_vs_event(doc, snap,
                      ["wakeup_reduction", "kernel_event_reduction"])


def _section_capacity(doc: Document, snap: dict) -> None:
    sweep = snap.get("sweep")
    if isinstance(sweep, dict):
        if isinstance(sweep.get("mean_delivery_ratio"), dict):
            doc.table(["router", "mean delivery ratio (budgeted)"],
                      [[name, _fmt(value)] for name, value in sorted(
                          sweep["mean_delivery_ratio"].items())])
        flag = sweep.get("prophet_beats_epidemic_in_every_run")
        if flag is not None:
            doc.paragraph(
                f"PRoPHET ≥ epidemic in every run: {_fmt(bool(flag))}.")
    constrained = snap.get("constrained")
    infinite = snap.get("infinite")
    if isinstance(constrained, dict) and isinstance(infinite, dict):
        keys = sorted(k for k in set(constrained) & set(infinite)
                      if isinstance(constrained.get(k), (int, float))
                      and not isinstance(constrained.get(k), bool))
        doc.table(["metric", "budgeted contacts", "infinite contacts"],
                  [[k, _fmt(constrained[k]), _fmt(infinite[k])]
                   for k in keys])


def _section_fault(doc: Document, snap: dict) -> None:
    means = snap.get("mean_delivery_ratio")
    if isinstance(means, dict):
        # {router: {rate: ratio}} — pivot to rate rows × router columns.
        routers = sorted(means)
        rates: list[str] = sorted(
            {rate for table in means.values()
             if isinstance(table, dict) for rate in table},
            key=lambda r: float(r))
        if rates:
            doc.table(
                ["crash rate"] + routers,
                [[rate] + [_fmt(means[router].get(rate))
                           for router in routers] for rate in rates])
    for key in ("zero_rate", "workers_identical"):
        if key in snap:
            doc.paragraph(f"{key}: {_fmt(snap[key])}")


_SECTION_RENDERERS = {
    "scale_neighbors": _section_scale,
    "dtn_delivery": _section_dtn,
    "event_handover": _section_event,
    "contact_capacity": _section_capacity,
    "fault_tolerance": _section_fault,
}


def _section_generic(doc: Document, snap: dict) -> None:
    leaves = numeric_leaves({k: v for k, v in snap.items()
                             if k not in ("benchmark", "envelope")})
    if leaves:
        doc.table(["metric", "value"],
                  [[name, _fmt(leaves[name])] for name in sorted(leaves)])


def _snapshot_sections(doc: Document, snapshots: dict[str, dict]) -> None:
    doc.heading(2, "Benchmark snapshots")
    if not snapshots:
        doc.paragraph("No BENCH_*.json snapshots found.")
        return
    for name in sorted(snapshots):
        snap = snapshots[name]
        doc.heading(3, name)
        doc.paragraph(_envelope_line(snap))
        renderer = _SECTION_RENDERERS.get(name)
        if renderer is not None:
            renderer(doc, snap)
        else:
            _section_generic(doc, snap)


# ----------------------------------------------------------------------
# paper-comparison table
# ----------------------------------------------------------------------
def _dig(snapshot: dict | None, *path: str) -> object:
    node: object = snapshot
    for key in path:
        if not isinstance(node, dict):
            return None
        node = node.get(key)
    return node


def _comparison_rows(snapshots: dict[str, dict]) -> list[list[object]]:
    scale = snapshots.get("scale_neighbors")
    event = snapshots.get("event_handover")
    dtn = snapshots.get("dtn_delivery")
    capacity = snapshots.get("contact_capacity")
    fault = snapshots.get("fault_tolerance")
    scale_rows = _dig(scale, "rows")
    reduction = None
    if isinstance(scale_rows, list) and scale_rows:
        last = scale_rows[-1]
        if isinstance(last, dict):
            reduction = last.get("reduction")
    rows = [
        ["spatial grid beats O(N²) discovery (PR 1)",
         "distance-check reduction at top N", _fmt(reduction),
         "BENCH_scale_neighbors.json"],
        ["event-driven handover beats polling (PR 3)",
         "monitor-wakeup reduction",
         _fmt(_dig(event, "wakeup_reduction")),
         "BENCH_event_handover.json"],
        ["event-driven DTN forwarder beats polling (PR 4)",
         "forwarder-wakeup reduction",
         _fmt(_dig(dtn, "wakeup_reduction")),
         "BENCH_dtn_delivery.json"],
        ["epidemic beats direct delivery (PR 4)",
         "mean delivery ratio epidemic vs direct",
         f"{_fmt(_dig(dtn, 'sweep', 'mean_delivery_ratio', 'epidemic'))}"
         f" vs {_fmt(_dig(dtn, 'sweep', 'mean_delivery_ratio', 'direct'))}",
         "BENCH_dtn_delivery.json"],
        ["PRoPHET beats epidemic under byte budgets (PR 5)",
         "mean delivery ratio prophet vs epidemic",
         f"{_fmt(_dig(capacity, 'sweep', 'mean_delivery_ratio', 'prophet'))}"
         f" vs "
         f"{_fmt(_dig(capacity, 'sweep', 'mean_delivery_ratio', 'epidemic'))}",
         "BENCH_contact_capacity.json"],
        ["redundant routers degrade gracefully under crashes (PR 6)",
         "zero-rate runs byte-identical to fault-free",
         _fmt(_dig(fault, "zero_rate", "identical")),
         "BENCH_fault_tolerance.json"],
    ]
    return [row for row in rows if row[2] not in (None, "None vs None")]


# ----------------------------------------------------------------------
# sweep sections
# ----------------------------------------------------------------------
def _sweep_section(doc: Document, sweep_dir: pathlib.Path) -> bool:
    """Render one sweep's ``runs.jsonl``; returns False when absent."""
    jsonl_path = sweep_dir / "runs.jsonl"
    if not jsonl_path.exists():
        return False
    from repro.experiments import report as exp_report
    from repro.experiments import runner as exp_runner
    records = exp_runner.read_jsonl(jsonl_path)
    rows = exp_report.aggregate(records)
    doc.heading(3, f"sweep: {sweep_dir.name}")
    doc.paragraph(f"{len(records)} runs in {jsonl_path.as_posix()}, "
                  f"{len(rows)} configurations.")
    # Pivot: one row per configuration, one column per *_delivery_ratio
    # metric (mean) — the delivery-vs-rate view for DTN/fault sweeps.
    ratio_metrics = sorted({metric for row in rows
                            for metric in row.metrics
                            if metric.endswith("delivery_ratio")})
    if ratio_metrics:
        doc.table(
            ["scenario", "params", "runs"] + [
                m.replace("_delivery_ratio", "") + " mean"
                for m in ratio_metrics],
            [[row.scenario, row.params_json, row.runs] + [
                _fmt(row.metrics[m].mean) if m in row.metrics else None
                for m in ratio_metrics] for row in rows])
    doc.preformatted(exp_report.aggregate_table(
        f"{sweep_dir.name}: full aggregate (mean ± CI95 per metric)",
        rows))
    return True


def _telemetry_section(doc: Document,
                       sweep_dirs: typing.Sequence[pathlib.Path]) -> None:
    shown = False
    for sweep_dir in sweep_dirs:
        path = sweep_dir / "telemetry.jsonl"
        if not path.exists():
            continue
        counts: dict[str, int] = {}
        with open(path, encoding="utf-8") as source:
            for line in source:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue
                kind = str(row.get("type", "?"))
                if kind == "span":
                    kind = f"span/{row.get('kind', '?')}"
                counts[kind] = counts.get(kind, 0) + 1
        if not counts:
            continue
        if not shown:
            doc.heading(2, "Telemetry")
            shown = True
        doc.paragraph(f"{path.as_posix()}: recorded rows by type.")
        doc.table(["row type", "rows"],
                  [[kind, counts[kind]] for kind in sorted(counts)])


# ----------------------------------------------------------------------
# trajectory section
# ----------------------------------------------------------------------
#: The one metric per benchmark the trajectory table tracks.
HEADLINE_METRICS = {
    "scale_neighbors": "rows.2.reduction",
    "event_handover": "wakeup_reduction",
    "dtn_delivery": "wakeup_reduction",
    "contact_capacity": "sweep.mean_delivery_ratio.prophet",
    "fault_tolerance": "mean_delivery_ratio.prophet.0.2",
}


def _trajectory_section(doc: Document, path: pathlib.Path) -> None:
    grouped = trajectory_by_benchmark(trajectory_entries(path))
    if not grouped:
        return
    doc.heading(2, "Perf trajectory")
    doc.paragraph(
        f"Appended on every bench run ({path.name}); last 5 entries per "
        "benchmark, newest last.  The headline metric is "
        "benchmark-specific.")
    rows: list[list[object]] = []
    for benchmark in sorted(grouped):
        headline = HEADLINE_METRICS.get(benchmark)
        for entry in grouped[benchmark][-5:]:
            metrics = entry.get("metrics")
            value = (metrics.get(headline)
                     if isinstance(metrics, dict) and headline else None)
            rows.append([benchmark, entry.get("git_sha"),
                         entry.get("generated_at"), entry.get("n"),
                         headline or "—", _fmt(value)])
    doc.table(["benchmark", "git", "generated", "N",
               "headline metric", "value"], rows)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def build_report(root: str | pathlib.Path = ".",
                 sweep_dirs: typing.Sequence[str | pathlib.Path] | None
                 = None) -> Document:
    """Assemble the full report document from ``root``.

    ``sweep_dirs`` defaults to every ``results/*/`` directory under
    ``root`` that contains a ``runs.jsonl`` (the committed
    ``results/fault_sweep/`` worked example included).
    """
    root = pathlib.Path(root)
    if sweep_dirs is None:
        results = root / "results"
        dirs = (sorted(d for d in results.iterdir() if d.is_dir())
                if results.is_dir() else [])
    else:
        dirs = [pathlib.Path(d) for d in sweep_dirs]
    snapshots = load_snapshots(root)

    doc = Document("Reproduction results & perf report")
    stamp = datetime.datetime.now(
        datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    doc.paragraph(f"Rendered at {stamp} from git {git_sha(root)}. "
                  "Sources: committed BENCH_*.json snapshots, sweep "
                  "runs.jsonl files, BENCH_trajectory.jsonl.")

    comparison = _comparison_rows(snapshots)
    if comparison:
        doc.heading(2, "Headline claims")
        doc.table(["claim", "gate metric", "measured", "source"],
                  comparison)

    _snapshot_sections(doc, snapshots)

    rendered_any = False
    doc.heading(2, "Sweep results")
    for sweep_dir in dirs:
        rendered_any |= _sweep_section(doc, sweep_dir)
    if not rendered_any:
        doc.paragraph("No sweep runs.jsonl found under results/.")

    _telemetry_section(doc, dirs)
    _trajectory_section(doc, root / "BENCH_trajectory.jsonl")
    return doc


def write_report(doc: Document, out_dir: str | pathlib.Path
                 ) -> tuple[pathlib.Path, pathlib.Path]:
    """Write ``REPORT.md`` + ``REPORT.html``; returns both paths."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    md_path = out_dir / "REPORT.md"
    html_path = out_dir / "REPORT.html"
    md_path.write_text(doc.to_markdown(), encoding="utf-8")
    html_path.write_text(doc.to_html(), encoding="utf-8")
    return md_path, html_path
