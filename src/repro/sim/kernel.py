"""The simulator: an event heap and a virtual clock.

The kernel is deliberately small: it schedules :class:`~repro.sim.events.Event`
objects at absolute virtual times, pops them in (time, sequence) order and
runs their callbacks.  Everything else — processes, resources, the radio
world, the PeerHood daemons — is built from events.
"""

from __future__ import annotations

import heapq
import typing

from repro.sim.events import AllOf, AnyOf, Event, SimulationError, Timeout
from repro.sim.process import Process
from repro.sim.rng import RandomStream


class StopSimulation(Exception):
    """Raised internally to abort :meth:`Simulator.run` early."""


class ScheduledCall:
    """Cancellable handle returned by :meth:`Simulator.call_at`.

    The underlying heap entry cannot be removed (binary heaps have no
    efficient delete), so cancellation nulls the callback and the event
    fires as a no-op.  ``cancel()`` is idempotent.
    """

    __slots__ = ("when", "_callback")

    def __init__(self, when: float,
                 callback: typing.Callable[[], None]):
        self.when = when
        self._callback = callback

    @property
    def cancelled(self) -> bool:
        return self._callback is None

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self._callback = None

    def _fire(self, _event: Event) -> None:
        callback = self._callback
        if callback is not None:
            self._callback = None
            callback()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the simulator's random streams.  Every component
        should draw from :meth:`rng` with its own label so that adding a new
        consumer does not perturb others (stream splitting).
    start_time:
        Initial virtual clock value (seconds).
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._seed = seed
        self._streams: dict[str, RandomStream] = {}
        self._active_process: Process | None = None
        self._stopped = False
        #: Events popped and run by :meth:`step` — the kernel-wakeup
        #: figure the event-driven connectivity benchmarks compare.
        #: Observer events (telemetry sampling) are excluded.
        self.events_processed = 0
        #: Observer events still sitting on the heap; maintained so
        #: :meth:`pending_real_events` stays O(1).
        self._observer_pending = 0
        #: Optional :class:`repro.obs.profile.SubsystemProfiler`.  When
        #: attached, :meth:`step` attributes each event's callback work
        #: (count + wall-clock) to a subsystem label derived from the
        #: event name.  Wall-clock rides the timings side-channel only,
        #: never recorded output.
        self.profiler = None

    # ------------------------------------------------------------------
    # clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        """Put a triggered event on the heap ``delay`` seconds from now."""
        heapq.heappush(self._heap, (self._now + delay, self._sequence, event))
        self._sequence += 1

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create an untriggered event."""
        return Event(self, name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Wait for the first of ``events``."""
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Wait for all of ``events``."""
        return AllOf(self, events)

    def call_at(self, when: float, callback: typing.Callable[[], None],
                name: str = "call-at", observer: bool = False) -> ScheduledCall:
        """Schedule a bare callback at absolute virtual time ``when``.

        The connectivity bus uses this to turn predicted link/quality
        crossings into kernel events.  Returns a :class:`ScheduledCall`
        whose ``cancel()`` voids the callback (the heap entry stays and
        fires as a no-op — O(1) cancellation).  ``when`` may equal the
        current time; scheduling in the past raises.

        ``observer=True`` marks the event as belonging to the telemetry
        plane: it is excluded from :attr:`events_processed` and from
        :meth:`pending_real_events`, so recorders can sample on the heap
        without perturbing the wakeup counts the benchmarks gate on.
        """
        if when < self._now:
            raise SimulationError(
                f"call_at({when}) is in the past (now={self._now})")
        handle = ScheduledCall(when, callback)
        event = Event(self, name)
        event.callbacks.append(handle._fire)
        event._triggered = True
        if observer:
            event.observer = True
            self._observer_pending += 1
        self._schedule(event, delay=when - self._now)
        return handle

    def spawn(self, generator: typing.Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    process = spawn  # simpy-compatible alias

    # ------------------------------------------------------------------
    # random streams
    # ------------------------------------------------------------------
    def rng(self, label: str) -> RandomStream:
        """Return the named random stream, creating it on first use.

        Streams are derived from the master seed and the label, so two
        simulators with the same seed produce identical streams regardless
        of creation order.
        """
        stream = self._streams.get(label)
        if stream is None:
            stream = RandomStream(self._seed, label)
            self._streams[label] = stream
        return stream

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the next event on the heap."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        when, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError(
                f"time went backwards: {when} < {self._now}")
        self._now = when
        if event.observer:
            self._observer_pending -= 1
        else:
            self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        profiler = self.profiler
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            with profiler.measure(event.name, observer=event.observer):
                for callback in callbacks:
                    callback(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def pending_real_events(self) -> int:
        """Heap entries that are *not* telemetry observer events.

        Periodic samplers use this to decide whether to re-arm: once only
        observer events remain, the simulated workload has drained and a
        self-rescheduling sampler must stop or ``run(until=None)`` would
        never terminate.
        """
        return len(self._heap) - self._observer_pending

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the heap is empty,
        * a number — run until that virtual time (the clock is advanced to
          exactly that time),
        * an :class:`Event` — run until it is processed and return its value.
        """
        self._stopped = False
        if until is None:
            self._run_all()
            return None
        if isinstance(until, Event):
            return self._run_until_event(until)
        return self._run_until_time(float(until))

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def _run_all(self) -> None:
        while self._heap and not self._stopped:
            self.step()

    def _run_until_time(self, deadline: float) -> None:
        if deadline < self._now:
            raise SimulationError(
                f"cannot run until {deadline}: clock is at {self._now}")
        while self._heap and self._heap[0][0] <= deadline and not self._stopped:
            self.step()
        if not self._stopped:
            self._now = max(self._now, deadline)

    def _run_until_event(self, event: Event) -> object:
        while not event.processed:
            if self._stopped:
                raise StopSimulation("simulator stopped before event fired")
            if not self._heap:
                raise SimulationError(
                    f"event heap empty before {event!r} triggered")
            self.step()
        return event.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self._now:.3f} pending={len(self._heap)} "
                f"seed={self._seed}>")
