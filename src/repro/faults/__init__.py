"""Composable fault injection: crash-reboot, deaf/mute radios,
byzantine beaconers, mobile jammers.

See :mod:`repro.faults.plane` for the live state machine and
:mod:`repro.faults.models` for the schedule samplers; the determinism
contract and taxonomy live in ``docs/FAULTS.md``.
"""

from repro.faults.models import (SPARE_TERMINALS, ByzantineBeacons,
                                 CrashReboot, FaultModel, MobileJammer,
                                 RadioFault, install_scenario_faults)
from repro.faults.plane import (BYZANTINE, CRASH, DEAF, DEAF_END, JAMMER,
                                MUTE, MUTE_END, REBOOT, FaultEvent,
                                FaultPlane)

__all__ = [
    "BYZANTINE",
    "ByzantineBeacons",
    "CRASH",
    "CrashReboot",
    "DEAF",
    "DEAF_END",
    "FaultEvent",
    "FaultModel",
    "FaultPlane",
    "JAMMER",
    "MUTE",
    "MUTE_END",
    "MobileJammer",
    "REBOOT",
    "RadioFault",
    "SPARE_TERMINALS",
    "install_scenario_faults",
]
