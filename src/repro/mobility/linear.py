"""Constant-velocity and scripted-waypoint movement."""

from __future__ import annotations

import math
import typing

from repro.mobility.base import MobilityModel, Point, distance


class LinearMovement(MobilityModel):
    """Motion at constant velocity from a starting point.

    ``position(t) = start + velocity * (t - start_time)`` with ``t`` clamped
    below ``start_time`` (the node waits at the start until then).
    """

    def __init__(self, start: Point, velocity: Point,
                 start_time: float = 0.0):
        self.start = (float(start[0]), float(start[1]))
        self.velocity = (float(velocity[0]), float(velocity[1]))
        self.start_time = float(start_time)

    def position(self, t: float) -> Point:
        elapsed = max(0.0, t - self.start_time)
        return (self.start[0] + self.velocity[0] * elapsed,
                self.start[1] + self.velocity[1] * elapsed)

    def is_mobile(self) -> bool:
        return self.velocity != (0.0, 0.0)

    def linear_segments(self, t0: float, t1: float):
        still = (0.0, 0.0)
        if t1 <= self.start_time or self.velocity == still:
            return [(t0, t1, self.position(t0), still)]
        if t0 >= self.start_time:
            return [(t0, t1, self.position(t0), self.velocity)]
        return [(t0, self.start_time, self.start, still),
                (self.start_time, t1, self.start, self.velocity)]

    def settled_after(self) -> float | None:
        return 0.0 if self.velocity == (0.0, 0.0) else None

    def active_piece(self, t: float, horizon_s: float = 600.0):
        still = (0.0, 0.0)
        if self.velocity == still:
            return (t, math.inf, self.start, still)
        if t < self.start_time:
            return (t, self.start_time, self.start, still)
        return (t, math.inf, self.position(t), self.velocity)

    def __repr__(self) -> str:
        return (f"LinearMovement(start={self.start}, "
                f"velocity={self.velocity}, t0={self.start_time})")


class PathMovement(MobilityModel):
    """Scripted waypoints: ``[(t0, p0), (t1, p1), ...]``, interpolated.

    Before ``t0`` the node sits at ``p0``; after the last waypoint it stays
    there.  Between waypoints the position is linear in time.  Used to
    script the exact walks of the paper's scenarios (Figs. 5.3, 5.6, 5.7).
    """

    def __init__(self, waypoints: typing.Sequence[tuple[float, Point]]):
        if not waypoints:
            raise ValueError("PathMovement requires at least one waypoint")
        times = [t for t, _ in waypoints]
        if times != sorted(times):
            raise ValueError("waypoint times must be non-decreasing")
        self.waypoints = [(float(t), (float(p[0]), float(p[1])))
                          for t, p in waypoints]

    def position(self, t: float) -> Point:
        first_time, first_point = self.waypoints[0]
        if t <= first_time:
            return first_point
        for (t0, p0), (t1, p1) in zip(self.waypoints, self.waypoints[1:]):
            if t <= t1:
                if t1 == t0:
                    return p1
                fraction = (t - t0) / (t1 - t0)
                return (p0[0] + fraction * (p1[0] - p0[0]),
                        p0[1] + fraction * (p1[1] - p0[1]))
        return self.waypoints[-1][1]

    def is_mobile(self) -> bool:
        points = {p for _, p in self.waypoints}
        return len(points) > 1

    def linear_segments(self, t0: float, t1: float):
        segments: list = []
        cursor = t0
        first_time = self.waypoints[0][0]
        if cursor < first_time:
            end = min(first_time, t1)
            segments.append((cursor, end, self.waypoints[0][1], (0.0, 0.0)))
            cursor = end
        for (a_t, a_p), (b_t, b_p) in zip(self.waypoints,
                                          self.waypoints[1:]):
            if cursor >= t1:
                break
            if b_t <= cursor or b_t == a_t:
                continue
            end = min(b_t, t1)
            if end <= cursor:
                continue
            velocity = ((b_p[0] - a_p[0]) / (b_t - a_t),
                        (b_p[1] - a_p[1]) / (b_t - a_t))
            segments.append((cursor, end, self.position(cursor), velocity))
            cursor = end
        if cursor < t1:
            segments.append((cursor, t1, self.waypoints[-1][1], (0.0, 0.0)))
        return segments

    def settled_after(self) -> float:
        return self.waypoints[-1][0]

    def active_piece(self, t: float, horizon_s: float = 600.0):
        last_time = self.waypoints[-1][0]
        if t >= last_time:
            return (t, math.inf, self.waypoints[-1][1], (0.0, 0.0))
        return self.linear_segments(t, last_time)[0]

    def total_distance(self) -> float:
        """Length of the scripted path in metres."""
        legs = zip(self.waypoints, self.waypoints[1:])
        return sum(distance(p0, p1) for (_, p0), (_, p1) in legs)
