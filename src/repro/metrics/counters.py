"""Traffic counters: who sent how many messages and bytes, by category.

Categories used by the stack:

* ``discovery`` — inquiry fetches and their responses (Ch. 3);
* ``control`` — connection handshakes, acks, disconnects (Ch. 4);
* ``data`` — application payload (including bridge re-transmissions, so a
  two-hop message counts twice — the paper's "double amount of time" for
  interconnection shows up here as double volume);
* ``query`` — the Gnutella baseline's flooded queries (§3.2).

:class:`BusCounters` instruments the connectivity-event bus
(:mod:`repro.radio.bus`) — it lives here so the metrics layer owns every
benchmark-asserted counter shape, and surfaces as ``world.stats.bus``.
"""

from __future__ import annotations

import collections
import dataclasses


@dataclasses.dataclass
class BusCounters:
    """Connectivity-event-bus activity (``world.stats.bus``).

    Attributes
    ----------
    scheduled:
        Predicted crossings turned into kernel events (``call_at``).
    fired:
        Connectivity events delivered to watch callbacks.
    cancelled:
        Watches cancelled before their next event fired (power-off,
        node removal, link teardown, monitor stop).
    rescheduled:
        Re-arms without a firing: horizon rollover re-checks plus
        re-predictions after a quality-override change invalidated the
        outstanding schedule.
    """

    scheduled: int = 0
    fired: int = 0
    cancelled: int = 0
    rescheduled: int = 0

    def reset(self) -> None:
        """Zero all counters (between benchmark rounds)."""
        self.scheduled = 0
        self.fired = 0
        self.cancelled = 0
        self.rescheduled = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot for JSON benchmark artifacts."""
        return {
            "scheduled": self.scheduled,
            "fired": self.fired,
            "cancelled": self.cancelled,
            "rescheduled": self.rescheduled,
        }


@dataclasses.dataclass
class _Bucket:
    messages: int = 0
    bytes: int = 0


class TrafficMeter:
    """Nested counters: (node, category) → messages / bytes."""

    def __init__(self) -> None:
        self._buckets: dict[tuple[str, str], _Bucket] = (
            collections.defaultdict(_Bucket))

    def count(self, node: str, category: str, size_bytes: int,
              messages: int = 1) -> None:
        """Record ``messages`` messages totalling ``size_bytes`` bytes."""
        if size_bytes < 0:
            raise ValueError(f"negative byte count: {size_bytes}")
        bucket = self._buckets[(node, category)]
        bucket.messages += messages
        bucket.bytes += size_bytes

    def messages(self, node: str | None = None,
                 category: str | None = None) -> int:
        """Total messages, filtered by node and/or category."""
        return sum(bucket.messages
                   for (n, c), bucket in self._buckets.items()
                   if (node is None or n == node)
                   and (category is None or c == category))

    def bytes(self, node: str | None = None,
              category: str | None = None) -> int:
        """Total bytes, filtered by node and/or category."""
        return sum(bucket.bytes
                   for (n, c), bucket in self._buckets.items()
                   if (node is None or n == node)
                   and (category is None or c == category))

    def nodes(self) -> list[str]:
        """Every node that has sent anything, sorted."""
        return sorted({n for n, _ in self._buckets})

    def categories(self) -> list[str]:
        """Every category seen, sorted."""
        return sorted({c for _, c in self._buckets})

    def per_node(self, category: str | None = None) -> dict[str, int]:
        """Message counts keyed by node."""
        return {node: self.messages(node=node, category=category)
                for node in self.nodes()}

    def reset(self) -> None:
        """Zero all counters (between benchmark repetitions)."""
        self._buckets.clear()
