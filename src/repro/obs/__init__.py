"""Telemetry plane: structured run traces and profiling hooks.

The observability layer the analysis pipeline (:mod:`repro.analysis`)
consumes.  Public surface:

* :class:`~repro.obs.telemetry.Telemetry` — the per-world recorder
  (samples, spans, profile counts);
* :class:`~repro.obs.runtime.TelemetryContext` + activate/deactivate —
  the process-local switch the experiments runner flips so scenarios
  built inside workloads adopt recorders;
* :class:`~repro.obs.profile.SubsystemProfiler` — kernel-event and
  wall-clock attribution (``Simulator.profiler``);
* :class:`~repro.obs.spans.Span` / :class:`~repro.obs.spans.SpanLog` —
  the open→close flow records.

See ``docs/OBSERVABILITY.md`` for the schema and the determinism
contract (attaching a recorder never changes recorded metrics).
"""

from repro.obs.profile import SubsystemProfiler, subsystem_label
from repro.obs.runtime import (TelemetryContext, activate, active,
                               deactivate)
from repro.obs.spans import Span, SpanLog
from repro.obs.telemetry import DEFAULT_INTERVAL_S, TIMELINE_FIELDS, Telemetry

__all__ = [
    "DEFAULT_INTERVAL_S",
    "TIMELINE_FIELDS",
    "Span",
    "SpanLog",
    "SubsystemProfiler",
    "Telemetry",
    "TelemetryContext",
    "activate",
    "active",
    "deactivate",
    "subsystem_label",
]
