"""E3 — Fig. 3.9: the link-quality equity rule.

Paper artifact: routes A-B-D and A-C-D both sum to 460, but A-C (210) is
below the 230 per-link minimum, so "the route A-C-D won't be accepted".
"""

from repro.core.config import RoutingPolicy
from repro.core.device import MobilityClass
from repro.core.routing import RouteMetrics, is_better_route
from repro.scenarios import fig_3_9_quality_equity
from paperbench import print_table


def run_stack_level(seed=10, settle_s=240.0):
    """Full-stack: which bridge does A store for D?"""
    scenario = fig_3_9_quality_equity(seed=seed)
    scenario.start_all()
    scenario.run(until=settle_s)
    node_a = scenario.node("A")
    entry = node_a.daemon.storage.get(scenario.node("D").address)
    if entry is None or entry.bridge is None:
        return None
    bridge_peer = scenario.fabric.node_by_address(entry.bridge)
    return {
        "bridge": bridge_peer.node_id,
        "quality_sum": entry.route.quality_sum,
        "min_link": entry.route.min_link_quality,
    }


def test_e3_fig_3_9_stack_chooses_abd(benchmark):
    result = benchmark.pedantic(run_stack_level, rounds=1, iterations=1,
                                warmup_rounds=0)
    assert result is not None, "A never learnt a route to D"
    rows = [
        ["A-B-D", "230+230=460", "accepted (all links >= 230)",
         "chosen" if result["bridge"] == "B" else ""],
        ["A-C-D", "210+250=460", "rejected (A-C < 230)",
         "chosen" if result["bridge"] == "C" else ""],
    ]
    print_table("E3: Fig. 3.9 equity (equal sums, threshold tie-break)",
                ["route", "paper sum", "paper verdict", "measured"], rows)
    assert result["bridge"] == "B", (
        f"paper picks A-B-D; stack picked via {result['bridge']}")
    assert result["min_link"] >= 230
    benchmark.extra_info.update(result)


def run_rule_level():
    policy = RoutingPolicy()
    abd = RouteMetrics(jump=1, first_hop_mobility=MobilityClass.STATIC,
                       quality_sum=460, min_link_quality=230)
    acd = RouteMetrics(jump=1, first_hop_mobility=MobilityClass.STATIC,
                       quality_sum=460, min_link_quality=210)
    return {
        "abd_beats_acd": is_better_route(abd, acd, policy),
        "acd_beats_abd": is_better_route(acd, abd, policy),
        "tie_without_threshold": not is_better_route(
            abd, acd, RoutingPolicy(use_quality_threshold=False)),
    }


def test_e3_fig_3_9_rule_level(benchmark):
    verdict = benchmark(run_rule_level)
    assert verdict["abd_beats_acd"]
    assert not verdict["acd_beats_abd"]
    assert verdict["tie_without_threshold"]  # ablation: rule off => tie
    benchmark.extra_info.update(verdict)
