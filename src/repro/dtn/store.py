"""Per-node message stores: bounded custody over the shared buffer.

Each DTN node owns a :class:`MessageStore` — a thin, bundle-aware facade
over the repo's single buffering implementation
(:class:`repro.core.buffering.BoundedBuffer`, the same class that backs
the PeerHood service plane's §6.1 retransmission window).  The store
adds what custody needs on top:

* **TTL eviction** — every bundle enters with its own lifetime and is
  dropped by *lazy* sweeps (:meth:`expire`) at contact/send instants,
  so expiry costs no timer wakeups;
* **capacity eviction** — a byte budget with the shared policies
  (drop-oldest, drop-largest, drop-soonest-expiry);
* **summary vectors** — the epidemic-routing dedup set: ids this node
  currently carries *plus* ids it has already seen (received, relayed
  onward, or delivered as destination), so a contact never re-sends
  what the peer already processed;
* **partial fragments** — receiver-side byte counts of transfers the
  bandwidth-limited plane (:mod:`repro.dtn.capacity`) had to truncate
  at a window edge.  The fragment belongs to the *receiver* (reactive
  fragmentation, RFC 4838 flavour): any later custodian of the same
  bundle can resume from the recorded offset, including after the
  original sender died.

All counts feed the plane-wide
:class:`~repro.metrics.counters.DtnCounters`.  Units: bytes,
sim-seconds.
"""

from __future__ import annotations

import typing

from repro.core.buffering import (
    BoundedBuffer,
    EVICT_OLDEST,
)
from repro.dtn.bundle import Bundle
from repro.metrics.counters import DtnCounters


class MessageStore:
    """One node's bundle custody: a keyed, bounded, TTL-aware buffer.

    ``capacity_bytes=None`` means unbounded.  Insertion order is
    preserved (offers iterate oldest-first).  All operations are O(1)
    amortised except the sweeps/scans inherited from the shared buffer
    (O(n) in stored bundles).
    """

    def __init__(self, node_id: str, capacity_bytes: int | None = None,
                 policy: str = EVICT_OLDEST,
                 counters: DtnCounters | None = None):
        self.node_id = node_id
        self.counters = counters if counters is not None else DtnCounters()
        self._buffer = BoundedBuffer(capacity_bytes=capacity_bytes,
                                     policy=policy)
        #: Every bundle id this node has ever held or delivered — the
        #: summary-vector memory that prevents epidemic re-infection.
        self._seen: set[str] = set()
        #: bundle id → bytes received so far of a truncated transfer
        #: (the partial-resume ledger; cleared on completed custody).
        self._partials: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._buffer)

    def __contains__(self, bundle_id: str) -> bool:
        return bundle_id in self._buffer

    @property
    def used_bytes(self) -> int:
        """Bytes currently under custody."""
        return self._buffer.used_bytes

    @property
    def capacity_bytes(self) -> int | None:
        return self._buffer.capacity_bytes

    @property
    def policy(self) -> str:
        return self._buffer.policy

    def bundles(self) -> list[Bundle]:
        """Buffered bundles in insertion (custody) order."""
        return [entry.item for entry in self._buffer.entries()]

    def get(self, bundle_id: str) -> Bundle | None:
        """The buffered bundle under ``bundle_id``, or None.  O(1)."""
        entry = self._buffer.get(bundle_id)
        return None if entry is None else entry.item

    def has_seen(self, bundle_id: str) -> bool:
        """True if this node ever held or delivered the bundle.  O(1)."""
        return bundle_id in self._seen

    def mark_seen(self, bundle_id: str) -> None:
        """Record an id in the summary vector without taking custody.

        The destination marks delivered bundles this way, so later
        custodians of the same bundle never re-offer it.  O(1).
        """
        self._seen.add(bundle_id)

    def summary_vector(self) -> frozenset[str]:
        """The epidemic dedup set: carried ∪ previously-seen ids."""
        return frozenset(self._seen)

    # ------------------------------------------------------------------
    # partial fragments (bandwidth-limited transfers)
    # ------------------------------------------------------------------
    def partial_received(self, bundle_id: str) -> int:
        """Bytes of ``bundle_id`` already received across truncated
        transfers (0 when no fragment is held).  O(1)."""
        return self._partials.get(bundle_id, 0)

    def record_partial(self, bundle_id: str, received_bytes: int) -> int:
        """Credit ``received_bytes`` more of a truncated transfer.

        Returns the accumulated total.  Any custodian may contribute —
        the fragment is keyed by bundle id, not by sender.  O(1);
        negative credits raise.
        """
        if received_bytes < 0:
            raise ValueError(f"negative credit: {received_bytes}")
        total = self._partials.get(bundle_id, 0) + received_bytes
        self._partials[bundle_id] = total
        return total

    def clear_partial(self, bundle_id: str) -> None:
        """Forget a fragment (transfer completed or abandoned).  O(1)."""
        self._partials.pop(bundle_id, None)

    # ------------------------------------------------------------------
    def add(self, bundle: Bundle, now: float) -> bool:
        """Take custody of ``bundle``; True if it is buffered afterwards.

        An already-expired bundle is refused (counted ``expired``).
        Capacity pressure evicts per the policy (counted ``evicted``);
        the incoming bundle itself may be the reject when it can never
        fit.  Re-adding a carried id replaces the stored value (spray
        token updates) without touching the counters.
        """
        if bundle.expired(now):
            self.counters.expired += 1
            return False
        self._seen.add(bundle.bundle_id)
        evicted = self._buffer.add(
            bundle.bundle_id, bundle, bundle.size_bytes, now=now,
            ttl_s=bundle.expires_at - now)
        self.counters.evicted += len(evicted)
        return bundle.bundle_id in self._buffer

    def replace(self, bundle: Bundle, now: float) -> None:
        """Update a carried bundle in place (spray-token bookkeeping)."""
        if bundle.bundle_id not in self._buffer:
            raise KeyError(f"{self.node_id} does not carry "
                           f"{bundle.bundle_id!r}")
        self._buffer.add(bundle.bundle_id, bundle, bundle.size_bytes,
                         now=now, ttl_s=max(bundle.expires_at - now,
                                            1e-9))

    def remove(self, bundle_id: str) -> Bundle | None:
        """Release custody deliberately (delivered/acked).  O(1)."""
        entry = self._buffer.remove(bundle_id)
        return None if entry is None else entry.item

    def expire(self, now: float) -> list[Bundle]:
        """Drop every bundle whose TTL has passed (lazy sweep).  O(n)."""
        dropped = [entry.item
                   for entry in self._buffer.drop_expired(now)]
        self.counters.expired += len(dropped)
        return dropped

    def drop_all(self) -> list[Bundle]:
        """Custodian death: every carried bundle is lost.  O(n).

        Counted ``dropped_dead`` — the churn invariant (a bundle whose
        custodian powered off is never delivered post-mortem) is
        observable through this counter.
        """
        victims = self._buffer.drop_matching(lambda entry: True)
        self.counters.dropped_dead += len(victims)
        self._partials.clear()   # fragments die with the node
        return [entry.item for entry in victims]

    def wipe(self) -> list[Bundle]:
        """Crash-reboot state loss: custody *and* memory are gone.

        :meth:`drop_all` plus clearing the summary vector — a rebooted
        node remembers nothing it ever carried, relayed or received.
        It can be re-infected with epidemic copies it already relayed
        and re-receive bundles it already got (the plane's delivery
        ledger still counts each bundle once — first arrival wins).
        Counted ``dropped_dead`` like any custodian death.  O(n).
        """
        victims = self.drop_all()
        self._seen.clear()
        return victims

    def __repr__(self) -> str:
        cap = ("∞" if self._buffer.capacity_bytes is None
               else self._buffer.capacity_bytes)
        return (f"<MessageStore {self.node_id} bundles={len(self)} "
                f"bytes={self.used_bytes}/{cap} policy={self.policy}>")
