"""PeerHoodLibrary: the application-facing API (§2.2.2, §2.3).

"Library is the main class and we can summarize it in 4 fields: connection
establishment, requesting neighbourhood information from the daemon,
connection quality monitoring and incoming connection listening."

The daemon⇄library local-socket hop of the real stack is a direct method
call here (both live in the same simulated device); the latency of that hop
is negligible next to radio times and does not affect any result shape.
"""

from __future__ import annotations

import typing

from repro.core.connection import PeerHoodConnection
from repro.core.device_storage import StoredDevice
from repro.core.engine import Engine, ServiceCallback
from repro.core.errors import (
    BridgeRefusedError,
    NoRouteError,
    ServiceNotFoundError,
    TargetNotAvailableError,
)
from repro.core.protocol import (
    Ack,
    BridgeRequest,
    ClientParams,
    ConnectRequest,
    Frame,
    ReconnectRequest,
)
from repro.core.service import ServiceRecord
from repro.radio.channel import ChannelClosed
from repro.radio.technologies import Technology, get_technology

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import PeerHoodNode


class PeerHoodLibrary:
    """Per-node library instance (the paper's singleton)."""

    def __init__(self, node: "PeerHoodNode"):
        self.node = node
        self.sim = node.sim
        self.fabric = node.fabric
        self.engine = Engine(node)
        self._next_connection_id = 1
        #: The paper's iThreadList: client-side connections by id.
        self.connections: dict[int, PeerHoodConnection] = {}

    @property
    def node_id(self) -> str:
        return self.node.node_id

    # ------------------------------------------------------------------
    # daemon queries (GetDeviceList / GetServiceList, §2.2.2)
    # ------------------------------------------------------------------
    def get_device_list(self) -> list[StoredDevice]:
        """Snapshot of every known device, direct and remote."""
        return self.node.daemon.storage.devices()

    def get_service_list(
            self, service_name: str | None = None,
    ) -> list[tuple[StoredDevice, ServiceRecord]]:
        """(device, service) pairs known in the environment."""
        pairs = []
        for device in self.node.daemon.storage.devices():
            for service in device.services:
                if service_name is None or service.name == service_name:
                    pairs.append((device, service))
        return pairs

    def register_service(self, name: str, callback: ServiceCallback,
                         attribute: str = "", port: int = 0,
                         hidden: bool = False) -> ServiceRecord:
        """Advertise a service and attach its connection handler."""
        record = self.node.daemon.registry.register(
            ServiceRecord(name=name, attribute=attribute, port=port,
                          hidden=hidden))
        self.engine.set_service_callback(name, callback)
        return record

    def unregister_service(self, name: str) -> None:
        """Withdraw a service."""
        self.node.daemon.registry.unregister(name)
        self.engine.remove_service_callback(name)

    # ------------------------------------------------------------------
    # connection establishment (§2.3, §4.1)
    # ------------------------------------------------------------------
    def connect(self, destination_address: str, service_name: str,
                reply_service: str = "",
                retries: int | None = None) -> typing.Generator:
        """Process generator: open a connection, direct or bridged.

        Follows Fig. 2.5 / Fig. 4.3: route lookup in the DeviceStorage,
        physical link to the destination or its bridge, opening command,
        end-to-end acknowledgement.  Returns a
        :class:`~repro.core.connection.PeerHoodConnection`.
        """
        entry, target_node_id, tech = self._resolve_route(destination_address)
        connection_id = self._next_connection_id
        self._next_connection_id += 1
        params = self._client_params(tech, reply_service)
        if retries is None:
            retries = self.node.config.connect_retries
        link = yield from self.fabric.connect(
            self.node_id, target_node_id, tech, retries=retries)
        opening: Frame
        if entry.is_direct():
            opening = ConnectRequest(service_name=service_name,
                                     connection_id=connection_id,
                                     client_params=params)
        else:
            opening = BridgeRequest(destination=destination_address,
                                    service_name=service_name,
                                    connection_id=connection_id,
                                    client_params=params)
        self.fabric.transmit(link, self.node_id, opening, "control")
        ack = yield from self._await_ack(link, destination_address)
        if not ack.ok:
            link.close()
            raise self._ack_error(entry, ack)
        connection = PeerHoodConnection(
            fabric=self.fabric,
            local_node_id=self.node_id,
            link=link,
            connection_id=connection_id,
            remote_address=destination_address,
            service_name=service_name,
        )
        self.connections[connection_id] = connection
        self.fabric.trace.record(
            self.sim.now, self.node_id, "connection-opened",
            destination=destination_address, service=service_name,
            bridged=not entry.is_direct(), connection_id=connection_id)
        return connection

    def reconnect(self, connection: PeerHoodConnection,
                  via_address: str | None = None,
                  retries: int | None = None) -> typing.Generator:
        """Process generator: substitute the transport of ``connection``.

        ``via_address`` forces a specific first hop (the HandoverThread's
        stored route); None re-resolves from the DeviceStorage.  On success
        the connection's link is swapped in place (the server receives
        PH_RECONNECT and does the same, §2.3/§5.2.1).  Returns the
        connection.
        """
        destination = connection.remote_address
        if via_address is None:
            entry, target_node_id, tech = self._resolve_route(destination)
            direct = entry.is_direct()
        else:
            via_entry = self.node.daemon.storage.get(via_address)
            if via_entry is None or not via_entry.is_direct():
                raise NoRouteError(
                    f"handover bridge {via_address!r} is not a direct "
                    "neighbour")
            direct = via_address == destination
            target_node_id = via_entry.name
            tech = get_technology(via_entry.prototype)
        if retries is None:
            retries = self.node.config.handover.connect_retries
        params = self._client_params(tech, reply_service="")
        link = yield from self.fabric.connect(
            self.node_id, target_node_id, tech, retries=retries)
        opening: Frame
        if direct:
            opening = ReconnectRequest(
                connection_id=connection.connection_id,
                client_params=params)
        else:
            opening = BridgeRequest(
                destination=destination,
                service_name=connection.service_name,
                connection_id=connection.connection_id,
                client_params=params,
                reconnect=True)
        self.fabric.transmit(link, self.node_id, opening, "control")
        ack = yield from self._await_ack(link, destination)
        if not ack.ok:
            link.close()
            raise BridgeRefusedError(
                f"reconnect refused: {ack.reason}")
        connection.replace_link(link)
        self.fabric.trace.record(
            self.sim.now, self.node_id, "handover-complete",
            destination=destination,
            connection_id=connection.connection_id,
            via=via_address or "direct")
        return connection

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _resolve_route(
            self, destination_address: str,
    ) -> tuple[StoredDevice, str, Technology]:
        storage = self.node.daemon.storage
        entry = storage.get(destination_address)
        if entry is None:
            raise NoRouteError(
                f"{destination_address!r} not in DeviceStorage of "
                f"{self.node_id!r}")
        if entry.is_direct():
            return entry, entry.name, get_technology(entry.prototype)
        assert entry.bridge is not None
        bridge_entry = storage.get(entry.bridge)
        if bridge_entry is None or not bridge_entry.is_direct():
            raise NoRouteError(
                f"bridge {entry.bridge!r} for {destination_address!r} is "
                "not a direct neighbour any more")
        return entry, bridge_entry.name, get_technology(
            bridge_entry.prototype)

    def _client_params(self, tech: Technology,
                       reply_service: str) -> ClientParams:
        return ClientParams(
            address=self.node.address,
            name=self.node.identity.name,
            prototype=tech.name,
            reply_service=reply_service,
            mobility=self.node.identity.mobility,
            pid=self.node.identity.checksum,
        )

    def _await_ack(self, link, destination: str) -> typing.Generator:
        try:
            ack = yield link.receive(self.node_id)
        except ChannelClosed:
            raise TargetNotAvailableError(
                f"link to {destination!r} died during handshake") from None
        if not isinstance(ack, Ack):
            link.close()
            raise TargetNotAvailableError(
                f"expected PH_OK/PH_ERROR, got {ack!r}")
        return ack

    def _ack_error(self, entry: StoredDevice, ack: Ack) -> Exception:
        if entry.is_direct():
            return ServiceNotFoundError(ack.reason)
        return BridgeRefusedError(ack.reason)
