"""Bundles: the store-carry-forward unit of data.

A :class:`Bundle` is an immutable application message in DTN terms
(RFC 4838 vocabulary): source, destination, creation instant, lifetime
and declared size.  It carries no route — custody moves it hop by hop
whenever a contact makes progress possible — and no custodian-local
state except ``copies``, the spray-and-wait token count, which changes
via :func:`dataclasses.replace` when a binary spray splits custody
(bundles stay hashable and comparable by identity, see ``key``).

Units: ``created_at`` and ``ttl_s`` in sim-seconds, ``size_bytes`` in
bytes.
"""

from __future__ import annotations

import dataclasses

#: Default bundle lifetime, sim-seconds.
DEFAULT_TTL_S = 300.0

#: Default declared payload size, bytes.
DEFAULT_SIZE_BYTES = 512


@dataclasses.dataclass(frozen=True)
class Bundle:
    """One application message in flight through the DTN plane.

    ``bundle_id`` is globally unique (the plane derives it from the
    source and a per-source sequence number); two Bundle values with the
    same id but different ``copies`` are the *same* message under
    different custody — summary vectors, delivery records and dedup all
    key on ``bundle_id`` alone.
    """

    bundle_id: str
    source: str
    destination: str
    created_at: float
    ttl_s: float = DEFAULT_TTL_S
    size_bytes: int = DEFAULT_SIZE_BYTES
    copies: int = 1

    def __post_init__(self) -> None:
        if self.ttl_s <= 0:
            raise ValueError(f"ttl must be positive: {self.ttl_s}")
        if self.size_bytes < 0:
            raise ValueError(f"negative size: {self.size_bytes}")
        if self.copies < 1:
            raise ValueError(f"copies must be >= 1: {self.copies}")
        if self.source == self.destination:
            raise ValueError(
                f"bundle {self.bundle_id!r} sent to its own source")

    @property
    def expires_at(self) -> float:
        """The instant (sim-seconds) this bundle's lifetime ends."""
        return self.created_at + self.ttl_s

    def expired(self, now: float) -> bool:
        """True once ``now`` has reached the expiry instant.  O(1)."""
        return now >= self.expires_at

    def with_copies(self, copies: int) -> "Bundle":
        """The same message under a different spray token count."""
        return dataclasses.replace(self, copies=copies)

    def age(self, now: float) -> float:
        """Seconds since creation (the delivery latency when delivered)."""
        return now - self.created_at
