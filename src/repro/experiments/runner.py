"""The sweep runner: execute an expanded grid, serially or in parallel.

Each :class:`~repro.experiments.spec.RunPoint` is executed by
:func:`execute_point` — a module-level function taking and returning
plain dicts, so it crosses process boundaries untouched.  With
``workers > 1`` the grid fans out over a ``ProcessPoolExecutor``
(simulations are CPU-bound pure Python; processes sidestep the GIL).

Determinism: a run's result depends only on its :class:`RunPoint` (the
seed is derived from the run's label, not its schedule), results are
collected in grid order (``Executor.map`` preserves input order), and
records are serialised with sorted keys — so JSONL and aggregate output
are byte-identical for 1 and N workers.  Wall-clock measurements never
enter records; they ride the :attr:`RunResult.timings` side channel.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import json
import pathlib
import time
import typing

from repro.experiments.spec import ExperimentSpec, RunPoint
from repro.experiments.workloads import get_workload


@dataclasses.dataclass(frozen=True)
class RunResult:
    """One finished run: the deterministic record + timing side channel."""

    record: dict[str, object]    #: JSON-safe, deterministic result row
    timings: dict[str, float]    #: wall-clock info (never serialised)


def execute_point(point_dict: dict) -> tuple[dict, dict]:
    """Execute one run; the unit of work shipped to worker processes.

    Returns ``(record, timings)``.  A workload's reserved ``"timings"``
    metric is stripped into the timing side channel along with the
    measured ``wall_s``, keeping the record deterministic.
    """
    point = RunPoint.from_dict(point_dict)
    workload = get_workload(point.workload)
    started = time.perf_counter()
    metrics = dict(workload(point))
    timings = {"wall_s": time.perf_counter() - started}
    extra = metrics.pop("timings", None)
    if extra:
        timings.update(extra)
    record = {
        "spec": point.spec,
        "workload": point.workload,
        "run": point.index,
        "scenario": point.scenario,
        "params": point.params,
        "repeat": point.repeat,
        "seed": point.seed,
        "metrics": metrics,
    }
    return record, timings


def run_spec(spec: ExperimentSpec, workers: int = 1,
             progress: typing.Callable[[dict], None] | None = None
             ) -> list[RunResult]:
    """Execute every run of ``spec``; results come back in grid order.

    ``progress``, if given, is called with each finished record (in grid
    order).  ``workers=1`` runs inline — no pool, easiest to debug.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    point_dicts = [point.as_dict() for point in spec.expand()]
    results: list[RunResult] = []
    if workers == 1:
        for point_dict in point_dicts:
            record, timings = execute_point(point_dict)
            if progress is not None:
                progress(record)
            results.append(RunResult(record, timings))
        return results
    with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers) as pool:
        for record, timings in pool.map(execute_point, point_dicts):
            if progress is not None:
                progress(record)
            results.append(RunResult(record, timings))
    return results


# ----------------------------------------------------------------------
# JSONL sink
# ----------------------------------------------------------------------
def jsonl_line(record: dict) -> str:
    """Canonical single-line rendering of one record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_jsonl(records: typing.Iterable[dict],
                path: str | pathlib.Path) -> pathlib.Path:
    """Write records (one JSON object per line) deterministically."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as sink:
        for record in records:
            sink.write(jsonl_line(record) + "\n")
    return path


def read_jsonl(path: str | pathlib.Path) -> list[dict]:
    """Read a JSONL result file back into records."""
    records = []
    with open(path, encoding="utf-8") as source:
        for line in source:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
