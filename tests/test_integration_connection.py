"""Integration tests: connections, the engine and the bridge service."""

import pytest

from repro.core.config import DaemonConfig
from repro.core.errors import (
    BridgeRefusedError,
    ConnectionClosedError,
    NoRouteError,
    ServiceNotFoundError,
)
from repro.core.service import BRIDGE_SERVICE_NAME
from repro.scenarios import Scenario, fig_4_5_bridge_test, line_topology

SETTLE_S = 180.0


def echo_service(node):
    """Register an echo service on a node; returns the received list."""
    received = []

    def handler(connection):
        def serve(connection=connection):
            while True:
                try:
                    message = yield from connection.read()
                except ConnectionClosedError:
                    return
                received.append(message)
                connection.write(("echo", message), 64)
        return serve()

    node.library.register_service("echo", handler)
    return received


def settled_pair(seed=1):
    scenario = Scenario(seed=seed)
    client = scenario.add_node("client", position=(0, 0))
    server = scenario.add_node("server", position=(5, 0),
                               mobility_class="static")
    received = echo_service(server)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")
    return scenario, client, server, received


def test_direct_connect_and_round_trip():
    scenario, client, server, received = settled_pair()

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "echo", retries=4)
        connection.write("hello", 64)
        reply = yield from connection.read()
        return connection, reply

    connection, reply = scenario.run_process(run(scenario.sim))
    assert reply == ("echo", "hello")
    assert received == ["hello"]
    assert connection.is_open
    assert not connection.is_server_side


def test_connect_unknown_service_raises():
    scenario, client, server, _ = settled_pair(seed=2)

    def run(sim):
        yield from client.library.connect(
            server.address, "no-such-service", retries=4)

    with pytest.raises(ServiceNotFoundError):
        scenario.run_process(run(scenario.sim))


def test_connect_unknown_device_raises_no_route():
    scenario, client, server, _ = settled_pair(seed=3)

    def run(sim):
        yield from client.library.connect("00:00:00:00:00:00", "echo")

    with pytest.raises(NoRouteError):
        scenario.run_process(run(scenario.sim))


def test_client_params_reach_the_server():
    scenario, client, server, _ = settled_pair(seed=4)
    captured = []

    def capture_handler(connection):
        captured.append(connection.remote_params)
        return None

    server.library.register_service("capture", capture_handler)

    def run(sim):
        yield from client.library.connect(
            server.address, "capture", reply_service="client.reply",
            retries=4)

    scenario.run_process(run(scenario.sim))
    params = captured[0]
    assert params.address == client.address
    assert params.name == "client"
    assert params.reply_service == "client.reply"
    assert params.prototype == "bluetooth"


def test_bridged_connection_over_fig_4_5():
    scenario = fig_4_5_bridge_test(seed=5)
    client = scenario.node("client")
    server = scenario.node("server")
    bridge = scenario.node("bridge")
    received = echo_service(server)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    entry = client.daemon.storage.get(server.address)
    assert entry.jump == 1  # must be bridged: 16 m > Bluetooth range

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "echo", retries=6)
        connection.write("via-bridge", 64)
        reply = yield from connection.read()
        return reply

    reply = scenario.run_process(run(scenario.sim))
    assert reply == ("echo", "via-bridge")
    assert received == ["via-bridge"]
    assert bridge.daemon.bridge_service.relayed_frames >= 2


def test_bridged_round_trip_takes_double_single_hop_time():
    """§4.1: 'the interconnection consumes double amount of time'."""
    scenario = fig_4_5_bridge_test(seed=6)
    client = scenario.node("client")
    server = scenario.node("server")
    echo_service(server)
    scenario.start_all()
    scenario.run(until=SETTLE_S)

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "echo", retries=6)
        started = sim.now
        connection.write("ping", 64)
        yield from connection.read()
        return sim.now - started

    round_trip = scenario.run_process(run(scenario.sim))
    from repro.radio.technologies import BLUETOOTH
    single_hop = BLUETOOTH.transmit_time(64 + 8)
    # Two hops out + two hops back, against one out + one back direct.
    assert round_trip == pytest.approx(4 * single_hop, rel=0.2)


def test_three_hop_chain_connection():
    scenario = line_topology(4, seed=7)
    client = scenario.node("n0")
    server = scenario.node("n3")
    received = echo_service(server)
    scenario.start_all()
    scenario.run(until=300.0)
    assert client.daemon.storage.get(server.address).jump == 2

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "echo", retries=8)
        connection.write("far-call", 64)
        reply = yield from connection.read()
        return reply

    reply = scenario.run_process(run(scenario.sim))
    assert reply == ("echo", "far-call")
    assert received == ["far-call"]


def test_bridge_disabled_refuses_relay():
    config = DaemonConfig(bridge_enabled=False)
    scenario = fig_4_5_bridge_test(seed=8)
    # Rebuild the bridge node with bridging off: easiest is a new scenario.
    scenario = Scenario(seed=8)
    client = scenario.add_node("client", position=(0, 0))
    scenario.add_node("bridge", position=(8, 0), mobility_class="static",
                      config=config)
    server = scenario.add_node("server", position=(16, 0),
                               mobility_class="static")
    echo_service(server)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")

    def run(sim):
        yield from client.library.connect(server.address, "echo", retries=6)

    with pytest.raises(BridgeRefusedError):
        scenario.run_process(run(scenario.sim))


def test_bridge_capacity_limit_refuses_excess():
    config = DaemonConfig(bridge_max_connections=1)
    scenario = Scenario(seed=9)
    client = scenario.add_node("client", position=(0, 0))
    bridge = scenario.add_node("bridge", position=(8, 0),
                               mobility_class="static", config=config)
    server = scenario.add_node("server", position=(16, 0),
                               mobility_class="static")
    echo_service(server)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")

    def run(sim):
        first = yield from client.library.connect(
            server.address, "echo", retries=8)
        try:
            yield from client.library.connect(
                server.address, "echo", retries=8)
        except BridgeRefusedError as error:
            return first, str(error)
        return first, None

    first, refusal = scenario.run_process(run(scenario.sim))
    assert first.is_open
    assert refusal is not None and "capacity" in refusal
    assert bridge.daemon.bridge_service.active_connections == 1


def test_disconnect_propagates_through_bridge():
    scenario = fig_4_5_bridge_test(seed=10)
    client = scenario.node("client")
    server = scenario.node("server")
    bridge = scenario.node("bridge")
    server_errors = []

    def handler(connection):
        def serve(connection=connection):
            try:
                while True:
                    yield from connection.read()
            except ConnectionClosedError:
                server_errors.append(scenario.sim.now)
        return serve()

    server.library.register_service("sink", handler)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "sink", retries=6)
        connection.write("one", 64)
        yield sim.timeout(2.0)
        connection.close("done")
        yield sim.timeout(5.0)
        return connection

    scenario.run_process(run(scenario.sim))
    assert server_errors, "server never observed the disconnect"
    assert bridge.daemon.bridge_service.active_connections == 0


def test_connection_to_stopped_daemon_fails():
    scenario, client, server, _ = settled_pair(seed=11)
    server.stop()

    def run(sim):
        yield from client.library.connect(server.address, "echo", retries=4)

    from repro.core.errors import TargetNotAvailableError
    from repro.radio.channel import ConnectFault
    with pytest.raises((TargetNotAvailableError, ConnectFault)):
        scenario.run_process(run(scenario.sim))


def test_write_on_closed_connection_raises():
    scenario, client, server, _ = settled_pair(seed=12)

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "echo", retries=4)
        connection.close()
        try:
            connection.write("late", 64)
        except ConnectionClosedError:
            return "raised"
        return "silent"

    assert scenario.run_process(run(scenario.sim)) == "raised"


def test_read_after_peer_close_drains_then_raises():
    scenario, client, server, _ = settled_pair(seed=13)
    results = []

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "echo", retries=4)
        connection.write("only", 64)
        reply = yield from connection.read()
        results.append(reply)
        connection.close()
        try:
            yield from connection.read()
        except ConnectionClosedError:
            results.append("closed")

    scenario.run_process(run(scenario.sim))
    assert results == [("echo", "only"), "closed"]


def test_bridge_request_to_unknown_destination_refused():
    scenario = fig_4_5_bridge_test(seed=14)
    client = scenario.node("client")
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    # Forge a bridge request for a device nobody knows.
    from repro.core.protocol import BridgeRequest, ClientParams
    from repro.core.device import MobilityClass
    from repro.radio.technologies import BLUETOOTH

    def run(sim):
        link = yield from scenario.fabric.connect(
            "client", "bridge", BLUETOOTH, retries=6)
        request = BridgeRequest(
            destination="de:ad:be:ef:00:00", service_name="echo",
            connection_id=99,
            client_params=ClientParams(
                address=client.address, name="client",
                prototype="bluetooth", reply_service="",
                mobility=MobilityClass.DYNAMIC))
        scenario.fabric.transmit(link, "client", request, "control")
        ack = yield link.receive("client")
        return ack

    ack = scenario.run_process(run(scenario.sim))
    assert not ack.ok
    assert "unknown" in ack.reason


def test_engine_counts_accepts_and_rejects():
    scenario, client, server, _ = settled_pair(seed=15)

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "echo", retries=4)
        try:
            yield from client.library.connect(
                server.address, "missing", retries=4)
        except ServiceNotFoundError:
            pass
        return connection

    scenario.run_process(run(scenario.sim))
    engine = server.library.engine
    assert engine.accepted == 1
    assert engine.rejected == 1


def test_bridge_service_name_reserved():
    assert BRIDGE_SERVICE_NAME == "peerhood.bridge"
