"""The hostile corridor: the commuter corridor under active faults.

The DTN/bandwidth families measure routers under best-case failure
semantics (clean churn only).  This scenario is the adversarial
counterpart and the substrate of the ``fault_sweep`` campaign: the same
``home`` — commuters — ``work`` corridor as
:func:`~repro.scenarios.dtn.commuter_corridor`, but with every fault
model from :mod:`repro.faults` switched on by default — a fifth of the
commuters crash-reboot mid-run (custody and summary vectors wiped), a
tenth suffer deaf/mute radio intervals, a tenth beacon byzantine
summary vectors, and one mobile jammer roams the corridor.

All defaults are overridable, so the sweep's ``crash_rate`` axis can
drive just one dimension while the rest stay fixed.  The terminals are
never faulted (``SPARE_TERMINALS``), keeping the workload's endpoints
measurable.
"""

from __future__ import annotations

import typing

from repro.scenarios.builder import Scenario
from repro.scenarios.dtn import commuter_corridor


def hostile_corridor(count: int = 10, length_m: float = 120.0,
                     width_m: float = 8.0,
                     speed_range: tuple[float, float] = (0.8, 2.0),
                     pause_range: tuple[float, float] = (0.0, 30.0),
                     crash_rate: float = 0.2,
                     crash_downtime_s: float = 120.0,
                     radio_fault_rate: float = 0.1,
                     byzantine_rate: float = 0.1,
                     jammer_count: int = 1,
                     fault_window_s: float = 360.0,
                     shadowing_sigma_db: float = 0.0,
                     phy_collisions: int = 0,
                     capture_margin_db: float = 6.0,
                     seed: int = 0,
                     technologies: typing.Sequence[str] = ("bluetooth",),
                     ) -> Scenario:
    """:func:`~repro.scenarios.dtn.commuter_corridor` with hostile
    fault defaults; see the module docstring.

    A pure delegation — with identical parameters and seed the two
    factories build byte-identical worlds and fault schedules, which is
    exactly what the zero-rate differential gate in
    ``benchmarks/bench_fault_tolerance.py`` relies on.
    """
    return commuter_corridor(
        count=count, length_m=length_m, width_m=width_m,
        speed_range=speed_range, pause_range=pause_range,
        crash_rate=crash_rate, crash_downtime_s=crash_downtime_s,
        radio_fault_rate=radio_fault_rate,
        byzantine_rate=byzantine_rate, jammer_count=jammer_count,
        fault_window_s=fault_window_s,
        shadowing_sigma_db=shadowing_sigma_db,
        phy_collisions=phy_collisions,
        capture_margin_db=capture_margin_db, seed=seed,
        technologies=technologies)
