"""GPRSPlugin: cellular reach, low bitrate, high latency."""

from __future__ import annotations

import typing

from repro.plugins.base import AbstractPlugin
from repro.radio.technologies import GPRS

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import PeerHoodNode


class GprsPlugin(AbstractPlugin):
    """General Packet Radio Service plugin (§2.1)."""

    def __init__(self, node: "PeerHoodNode"):
        super().__init__(node, GPRS)
