"""Base types for mobility models."""

from __future__ import annotations

import math
import typing

#: A 2-D position in metres.
Point = typing.Tuple[float, float]


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


class MobilityModel:
    """Interface: position as a pure function of virtual time.

    Implementations must be deterministic: calling ``position(t)`` twice
    with the same ``t`` returns the same point, and queries may arrive out
    of time order (the discovery loops of different devices sample the world
    at their own cadence).
    """

    def position(self, t: float) -> Point:
        """The node's position at virtual time ``t`` (seconds)."""
        raise NotImplementedError

    def is_mobile(self) -> bool:
        """True if the model ever changes position (for trace labelling)."""
        return True
