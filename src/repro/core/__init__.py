"""PeerHood core: the paper's primary contribution.

This package implements the middleware described in the thesis:

* the **daemon** (§2.2.1) — per-device process owning the network plugins,
  the :class:`~repro.core.device_storage.DeviceStorage` routing table and
  the hidden bridge service;
* the **library** (§2.2.2) — the application-facing API
  (``connect``, ``get_device_list``, ``get_service_list``,
  ``register_service``) plus the :class:`~repro.core.engine.Engine`
  that listens for incoming connections;
* **dynamic device discovery** (Ch. 3) — Gnutella-inspired neighbourhood
  propagation building a whole-network routing table with per-device
  ``bridge``/``jump``/quality/mobility metadata;
* the **interconnection system** (Ch. 4) — the bridge service relaying
  traffic between remote devices over multi-hop chains;
* **task-migration support** (Ch. 5) — routing handover, service
  reconnection and result routing.
"""

from repro.core.config import DaemonConfig, HandoverConfig, RoutingPolicy
from repro.core.connection import PeerHoodConnection
from repro.core.daemon import Daemon
from repro.core.device import (
    DeviceIdentity,
    MobilityClass,
    address_for,
)
from repro.core.device_storage import DeviceStorage, StoredDevice
from repro.core.errors import (
    ConnectionClosedError,
    NoRouteError,
    PeerHoodError,
    ServiceNotFoundError,
    TargetNotAvailableError,
)
from repro.core.fabric import Fabric
from repro.core.library import PeerHoodLibrary
from repro.core.node import PeerHoodNode
from repro.core.service import ServiceRecord, ServiceRegistry

__all__ = [
    "ConnectionClosedError",
    "Daemon",
    "DaemonConfig",
    "DeviceIdentity",
    "DeviceStorage",
    "Fabric",
    "HandoverConfig",
    "MobilityClass",
    "NoRouteError",
    "PeerHoodConnection",
    "PeerHoodError",
    "PeerHoodLibrary",
    "PeerHoodNode",
    "RoutingPolicy",
    "ServiceNotFoundError",
    "ServiceRecord",
    "ServiceRegistry",
    "StoredDevice",
    "TargetNotAvailableError",
    "address_for",
]
