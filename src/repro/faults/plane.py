"""The fault plane: live injected-fault state attached to a world.

One :class:`FaultPlane` per :class:`~repro.radio.world.World` (installed
as ``world.faults``).  Fault *models* (:mod:`repro.faults.models`)
sample schedules and arm them here; consumers — the DTN planes, the
connectivity bus, the world's query surface — ask the plane three
questions:

* :meth:`is_crashed` — is this node dark right now?
* :meth:`can_transmit` — may a copy move from sender to receiver at
  this instant (crash / deaf / mute / jammer gates, in that order)?
* :meth:`advertised_vector` — what does this node *claim* to carry
  (the byzantine-beacon lie)?

Everything is event-driven: timed faults are kernel events armed once
at install (``call_at``), the jammer is a pure function of time via its
mobility model, and byzantine behaviour is a per-exchange predicate.
No component polls the plane on a timer.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.metrics.counters import FaultCounters
from repro.mobility.base import MobilityModel, distance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.world import World

#: Fault-event kinds, in schedule-sort order within an instant.
CRASH = "crash"
REBOOT = "reboot"
DEAF = "deaf"
DEAF_END = "deaf-end"
MUTE = "mute"
MUTE_END = "mute-end"
BYZANTINE = "byzantine"
JAMMER = "jammer"


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault transition: ``node`` does ``kind`` at ``time``.

    Frozen and orderable so a plane's :attr:`FaultPlane.schedule` can be
    compared across runs — the determinism property tests assert two
    same-seed builds produce identical tuples.
    """

    time: float
    kind: str
    node: str

    def sort_key(self) -> tuple[float, str, str]:
        """Deterministic ordering: time, then kind, then node."""
        return (self.time, self.kind, self.node)


class FaultPlane:
    """Injected-fault state for one world; see the module docstring.

    Parameters
    ----------
    world:
        The world to attach to.  ``world.faults`` must still be unset —
        composing several fault *models* onto one plane is supported,
        stacking two planes is a configuration error.
    """

    def __init__(self, world: "World"):
        if getattr(world, "faults", None) is not None:
            raise ValueError("a FaultPlane is already installed on "
                             "this world; compose models onto it "
                             "instead of stacking planes")
        self.world = world
        self.sim = world.sim
        self.counters = FaultCounters()
        #: Every armed :class:`FaultEvent`, in sort order — the
        #: deterministic schedule the property tests compare.
        self.schedule: list[FaultEvent] = []
        self._crashed: set[str] = set()
        self._deaf: set[str] = set()
        self._mute: set[str] = set()
        self._byzantine: set[str] = set()
        self._jammers: list[tuple[MobilityModel, float]] = []
        self._listeners: list = []
        world.faults = self

    # ------------------------------------------------------------------
    # installation surface (used by repro.faults.models)
    # ------------------------------------------------------------------
    def add_listener(self, listener) -> None:
        """Register an ``on_crash(node)`` / ``on_reboot(node)`` consumer.

        DTN planes register themselves so custody state dies *before*
        the world suspends the node (ordering documented in
        :meth:`crash_now`).  Idempotent per listener object.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def arm(self, events) -> None:
        """Record sampled fault events and schedule their transitions.

        Timed kinds become kernel events at ``max(now, time)``;
        ``byzantine`` applies immediately (the lie is permanent);
        ``jammer`` entries are bookkeeping only (jamming is positional,
        installed via :meth:`add_jammer`).
        """
        for event in sorted(events, key=FaultEvent.sort_key):
            self.schedule.append(event)
            if event.kind == BYZANTINE:
                self._byzantine.add(event.node)
            elif event.kind != JAMMER:
                self.sim.call_at(
                    max(self.sim.now, event.time),
                    lambda event=event: self._apply(event),
                    name=f"fault:{event.kind}:{event.node}")
        # Models install one after another; keep the composed schedule
        # globally sorted so it reads (and diffs) as one timeline.
        self.schedule.sort(key=FaultEvent.sort_key)

    def add_jammer(self, mobility: MobilityModel, radius_m: float) -> None:
        """Install a mobile jammer: a roaming coverage disk.

        The jammer is not a world node — it has no radio, no identity,
        and costs zero events; :meth:`jammed` evaluates its mobility
        model at query time.
        """
        if radius_m <= 0:
            raise ValueError(f"jammer radius must be positive: {radius_m}")
        self._jammers.append((mobility, radius_m))

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == CRASH:
            self.crash_now(event.node)
        elif kind == REBOOT:
            self.reboot_now(event.node)
        elif kind == DEAF:
            self._deaf.add(event.node)
        elif kind == DEAF_END:
            self._deaf.discard(event.node)
        elif kind == MUTE:
            self._mute.add(event.node)
        elif kind == MUTE_END:
            self._mute.discard(event.node)
        else:  # pragma: no cover - arm() filters the other kinds
            raise ValueError(f"unknown fault kind: {kind}")

    # ------------------------------------------------------------------
    # crash-reboot transitions
    # ------------------------------------------------------------------
    def crash_now(self, node_id: str) -> None:
        """Begin a crash outage: state loss, then the radio goes dark.

        Listeners (DTN planes) run *first* so in-flight transfers close
        as churn cancellations and stores wipe while the world still
        reports pre-fault geometry; only then does
        ``World.suspend_node`` fire the synthetic LinkDowns that other
        consumers (links, overlays) observe.  No-op for an unknown or
        already-crashed node — a schedule sampled before a removal must
        not resurrect anything.
        """
        if not self.world.has_node(node_id) or node_id in self._crashed:
            return
        self._crashed.add(node_id)
        self.counters.crashes += 1
        telemetry = getattr(self.world, "telemetry", None)
        if telemetry is not None:
            telemetry.fault_down(node_id, "crash")
        for listener in self._listeners:
            listener.on_crash(node_id)
        self.world.suspend_node(node_id)

    def reboot_now(self, node_id: str) -> None:
        """End a crash outage: the node returns, empty-handed.

        The state loss already happened at crash time; here the world
        resumes the node (grid re-index, held watches re-arm, synthetic
        LinkUps for in-range pairs) and listeners get ``on_reboot``.
        A node removed mid-outage stays gone.
        """
        if node_id not in self._crashed:
            return
        self._crashed.discard(node_id)
        if not self.world.has_node(node_id):
            return
        self.counters.reboots += 1
        telemetry = getattr(self.world, "telemetry", None)
        if telemetry is not None:
            telemetry.fault_up(node_id)
        for listener in self._listeners:
            listener.on_reboot(node_id)
        self.world.resume_node(node_id)

    def on_node_removed(self, node_id: str) -> None:
        """Forget all fault state for a permanently removed node.

        Called by ``World.remove_node`` so a node crashed at removal
        time leaves no orphaned flags; its pending reboot event fires
        as a guarded no-op (``reboot_now`` checks membership first).
        """
        self._crashed.discard(node_id)
        self._deaf.discard(node_id)
        self._mute.discard(node_id)
        self._byzantine.discard(node_id)

    # ------------------------------------------------------------------
    # query surface
    # ------------------------------------------------------------------
    def is_crashed(self, node_id: str) -> bool:
        """True while the node is mid-outage.  O(1)."""
        return node_id in self._crashed

    def jammed(self, node_id: str) -> bool:
        """True if the node sits inside any jammer's disk right now.

        O(jammers); pure function of virtual time (mobility models are
        closed-form), so repeated queries at one instant agree.
        """
        if not self._jammers or not self.world.has_node(node_id):
            return False
        now = self.sim.now
        position = self.world.position(node_id)
        return any(distance(position, mobility.position(now)) <= radius
                   for mobility, radius in self._jammers)

    def can_transmit(self, sender: str, receiver: str) -> bool:
        """May a bundle copy move sender → receiver at this instant?

        Gate order: crash (either endpoint dark), mute sender / deaf
        receiver, then jammer coverage.  Only jammer suppressions are
        counted (``jammed_deliveries``) — crash and deaf/mute losses
        surface through the contact and custody counters instead.

        With a lossy PHY plane installed (``world.phy``) the binary
        jammer gate is skipped entirely: jammers instead raise the
        receiver's noise floor inside :mod:`repro.radio.phy`, so a
        strong nearby signal can still punch through while a marginal
        one fades out — and ``jammed_deliveries`` stays zero, the
        suppressions surfacing as PHY ``lost_fading`` instead.
        """
        if sender in self._crashed or receiver in self._crashed:
            return False
        if sender in self._mute or receiver in self._deaf:
            return False
        if (self._jammers
                and getattr(self.world, "phy", None) is None
                and (self.jammed(sender) or self.jammed(receiver))):
            self.counters.jammed_deliveries += 1
            return False
        return True

    def advertised_vector(self, node_id: str,
                          vector: frozenset) -> frozenset:
        """The summary vector ``node_id`` *advertises* to a peer.

        A byzantine beaconer lies by omission: it advertises the empty
        vector ("I have seen nothing"), so honest peers waste
        transmissions and contact bytes re-offering everything it
        already holds.  Ground-truth checks (``has_seen``, delivery,
        custody settlement) never go through here — the lie is about
        advertisement, not about reception.
        """
        if node_id in self._byzantine and vector:
            self.counters.byzantine_beacons += 1
            return frozenset()
        return vector
