"""Fault-plane determinism properties (hypothesis; the slow tier).

The contract under test, end to end:

* a fault schedule is a pure function of ``(seed, parameters)`` —
  byte-identical across rebuilds;
* fault models draw only from their own labelled RNG sub-streams, so
  installing faults never perturbs mobility (or any other draw);
* zero-rate fault parameters run the literal fault-free code path, so
  the ``dtn_faults`` workload degenerates to the ``dtn`` workload; and
* the ``fault_sweep`` campaign is byte-identical at 1 and 2 workers.

These run whole scenario builds (and, for the sweep, whole campaigns)
per example, so they are ``@pytest.mark.slow`` — deselected from
tier-1, reselected by ``make test-all`` and the CI slow job.
"""

import dataclasses
import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.experiments.runner import run_spec, jsonl_line
from repro.experiments.spec import RunPoint
from repro.experiments.specs import get_spec
from repro.experiments.workloads import get_workload
from repro.scenarios import commuter_corridor, hostile_corridor

pytestmark = pytest.mark.slow

seeds = st.integers(min_value=0, max_value=2**16)


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_same_seed_builds_the_same_fault_schedule(seed):
    first = hostile_corridor(seed=seed).world.faults
    second = hostile_corridor(seed=seed).world.faults
    assert first.schedule == second.schedule
    assert [e.sort_key() for e in first.schedule] == sorted(
        e.sort_key() for e in first.schedule)


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_fault_streams_never_perturb_mobility(seed):
    """Cranking every fault rate must not move a single commuter:
    fault models draw from ``faults/*`` sub-streams only."""
    clean = commuter_corridor(seed=seed)
    faulted = commuter_corridor(
        crash_rate=0.9, radio_fault_rate=0.7, byzantine_rate=0.5,
        jammer_count=2, seed=seed)
    clean.run(until=200.0)
    faulted.run(until=200.0)
    for name in sorted(clean.nodes):
        assert (clean.world.position(name)
                == faulted.world.position(name)), name


def test_zero_rate_workload_degenerates_to_the_fault_free_one():
    """Shared metric keys of ``dtn_faults`` at all-zero rates must be
    byte-identical to ``dtn`` on the same scenario, seed and settings."""
    settings_dict = {
        "duration_s": 240.0, "messages": 8, "ttl_s": 200.0,
        "routers": ("direct", "spray"), "spray_copies": 4,
        "pattern": "uniform",
    }

    def run(workload):
        point = RunPoint(
            spec="prop_zero_rate", workload=workload, index=0,
            scenario="commuter_corridor", params={}, repeat=0,
            seed=4242, settings=dict(settings_dict))
        return get_workload(workload)(point)

    plain = run("dtn")
    faulted = run("dtn_faults")
    shared = sorted(set(plain) & set(faulted))
    assert shared                                 # non-vacuous diff
    assert (json.dumps({k: plain[k] for k in shared}, sort_keys=True)
            == json.dumps({k: faulted[k] for k in shared},
                          sort_keys=True))
    assert faulted["fault_events"] == 0


def test_fault_sweep_is_byte_identical_across_worker_counts():
    spec = dataclasses.replace(get_spec("fault_sweep"), repeats=1)
    lines = {}
    for workers in (1, 2):
        results = run_spec(spec, workers=workers)
        lines[workers] = [jsonl_line(r.record) for r in results]
    assert lines[1] == lines[2]
    # And the runs genuinely exercised the fault plane.
    faulted = [json.loads(line)["metrics"]["fault_events"]
               for line in lines[1]]
    assert any(count > 0 for count in faulted)
