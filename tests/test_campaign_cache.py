"""Property tests for the campaign cache-key contract.

The key (:func:`repro.experiments.cache.cache_key`) must be a pure
function of a cell's *identity*: stable under param-dict insertion
order, across processes and across repeated runs of the same spec —
and injective over distinct ``(seed, params, scenario)`` (and every
other component), because a collision would silently serve one cell's
result as another's.
"""

import json
import os
import pathlib
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ExperimentSpec
from repro.experiments.cache import CampaignCache, cache_key, point_key
from repro.experiments.spec import canonical
from repro.experiments.workloads import workload_fingerprint

_SCALARS = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(max_size=8),
)
_VALUES = st.one_of(_SCALARS, st.lists(_SCALARS, max_size=3).map(tuple))
_PARAMS = st.dictionaries(st.text(min_size=1, max_size=8), _VALUES,
                          max_size=5)


def _key_kwargs(**overrides):
    base = dict(
        spec="spec", version=1, scenario="scenario",
        params={"count": 4, "technologies": ("bluetooth", "wlan")},
        repeat=0, seed=42, workload="discovery", fingerprint="f" * 64,
        settings={"settle_s": 40.0})
    base.update(overrides)
    return base


def _identity_canon(triple) -> str:
    """Canonical serialisation of (seed, params, scenario) — exactly
    the equivalence the key is allowed (and required) to respect."""
    seed, params, scenario = triple
    return json.dumps(
        [seed, {k: canonical(v) for k, v in params.items()}, scenario],
        sort_keys=True)


# ----------------------------------------------------------------------
# stability
# ----------------------------------------------------------------------
@settings(max_examples=60)
@given(params=_PARAMS, data=st.data())
def test_key_independent_of_param_insertion_order(params, data):
    order = data.draw(st.permutations(sorted(params)))
    shuffled = {name: params[name] for name in order}
    assert (cache_key(**_key_kwargs(params=params))
            == cache_key(**_key_kwargs(params=shuffled)))


@settings(max_examples=60)
@given(params=_PARAMS, settings_map=_PARAMS, seed=st.integers(0, 2**63))
def test_key_stable_under_repeated_computation(params, settings_map,
                                               seed):
    kwargs = _key_kwargs(params=params, settings=settings_map, seed=seed)
    first = cache_key(**kwargs)
    assert cache_key(**kwargs) == first
    assert len(first) == 64 and int(first, 16) >= 0


def test_key_stable_across_processes():
    """A fresh interpreter derives the same key for the same cell."""
    kwargs = _key_kwargs()
    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    program = ("import json, sys\n"
               "from repro.experiments.cache import cache_key\n"
               "print(cache_key(**json.load(sys.stdin)))\n")
    proc = subprocess.run(
        [sys.executable, "-c", program], input=json.dumps(kwargs),
        capture_output=True, text=True, env=env, timeout=60)
    assert proc.returncode == 0, proc.stderr
    # JSON shipping turned the tuples into lists; canonicalisation must
    # erase exactly that difference.
    assert proc.stdout.strip() == cache_key(**kwargs)


def test_keys_of_a_spec_stable_across_expansions_and_axis_order():
    """Same cells, same keys — however the axes dict was declared."""
    fingerprint = workload_fingerprint("discovery")
    axes_ab = {"count": (3, 4), "technologies": (("bluetooth",),)}
    axes_ba = {"technologies": (("bluetooth",),), "count": (3, 4)}
    by_label = {}
    for axes in (axes_ab, axes_ba, axes_ab):
        spec = ExperimentSpec(
            name="keyspec", workload="discovery",
            scenarios=("random_disc",), axes=axes, repeats=2,
            master_seed=9, settings={"settle_s": 40.0})
        keys = {p.label(): point_key(p, fingerprint) for p in spec.expand()}
        by_label.setdefault("expected", keys)
        assert keys == by_label["expected"]


# ----------------------------------------------------------------------
# injectivity
# ----------------------------------------------------------------------
@settings(max_examples=60)
@given(st.lists(
    st.tuples(st.integers(0, 2**63), _PARAMS,
              st.text(min_size=1, max_size=8)),
    min_size=2, max_size=6, unique_by=_identity_canon))
def test_distinct_seed_params_scenario_never_collide(identities):
    keys = [cache_key(**_key_kwargs(seed=seed, params=params,
                                    scenario=scenario))
            for seed, params, scenario in identities]
    assert len(set(keys)) == len(keys)


def test_every_key_component_separates():
    base = _key_kwargs()
    for field, changed in [
            ("spec", "other"), ("version", 2), ("scenario", "other"),
            ("repeat", 1), ("seed", 43), ("workload", "other"),
            ("fingerprint", "0" * 64),
            ("settings", {"settle_s": 41.0}),
            ("extras", {"telemetry": True})]:
        assert cache_key(**_key_kwargs(**{field: changed})) \
            != cache_key(**base), f"{field} did not enter the key"
    # absent extras and empty extras are the same (default) identity
    assert cache_key(**_key_kwargs(extras={})) == cache_key(**base)


def test_expanded_spec_cells_have_distinct_keys():
    spec = ExperimentSpec(
        name="inj", workload="discovery",
        scenarios=("line_topology", "random_disc"),
        axes={"count": (3, 4)}, repeats=2, master_seed=5,
        settings={"settle_s": 40.0})
    fingerprint = workload_fingerprint(spec.workload)
    keys = [point_key(p, fingerprint) for p in spec.expand()]
    assert len(set(keys)) == len(keys) == spec.size()


# ----------------------------------------------------------------------
# workload fingerprints
# ----------------------------------------------------------------------
def test_workload_fingerprint_stable_and_distinct():
    assert workload_fingerprint("discovery") \
        == workload_fingerprint("discovery")
    assert workload_fingerprint("discovery") \
        != workload_fingerprint("line_delay")
    assert len(workload_fingerprint("discovery")) == 64


# ----------------------------------------------------------------------
# the store itself
# ----------------------------------------------------------------------
def test_cache_roundtrip_and_counters(tmp_path):
    cache = CampaignCache(tmp_path / "cache")
    key = cache_key(**_key_kwargs())
    assert cache.get(key) is None and cache.misses == 1
    entry = {"record": {"run": 3, "metrics": {"x": 1.5}},
             "telemetry": [{"run": 3, "type": "sample"}]}
    cache.put(key, entry)
    assert key in cache
    assert cache.get(key) == entry
    assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)


def test_cache_corrupt_entry_reads_as_miss(tmp_path):
    cache = CampaignCache(tmp_path)
    key = cache_key(**_key_kwargs())
    cache.put(key, {"record": {"run": 0}})
    path = cache._path(key)
    path.write_text("{torn", encoding="utf-8")
    assert cache.get(key) is None
    path.write_text(json.dumps({"no_record": True}), encoding="utf-8")
    assert cache.get(key) is None
