"""PeerHood services: records and the per-daemon registry.

§2.3: "PeerHood service is described by the following parameters:
ServiceName, ServiceAttribute and Port Number."  Any registered service is
discoverable by other devices' inquiries and connectable over the mesh.
"""

from __future__ import annotations

import dataclasses
import typing

#: The well-known port of the hidden bridge service every daemon runs (§4.0).
BRIDGE_SERVICE_NAME = "peerhood.bridge"
BRIDGE_SERVICE_PORT = 1


@dataclasses.dataclass(frozen=True)
class ServiceRecord:
    """One advertised service.

    ``hidden`` marks services excluded from discovery responses — the
    bridge service is installed on every daemon but is addressed directly
    by the interconnection machinery, not browsed by applications.
    """

    name: str
    attribute: str = ""
    port: int = 0
    hidden: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service name must be non-empty")
        if self.port < 0:
            raise ValueError(f"negative port: {self.port}")

    def wire_size(self) -> int:
        """Approximate serialised size in bytes."""
        return len(self.name) + len(self.attribute) + 4


class ServiceRegistry:
    """The daemon's table of locally registered services."""

    def __init__(self) -> None:
        self._services: dict[str, ServiceRecord] = {}
        self._next_port = 1024

    def register(self, record: ServiceRecord) -> ServiceRecord:
        """Add a service; a zero port is auto-assigned."""
        if record.name in self._services:
            raise ValueError(f"service already registered: {record.name!r}")
        if record.port == 0:
            record = dataclasses.replace(record, port=self._next_port)
            self._next_port += 1
        self._services[record.name] = record
        return record

    def unregister(self, name: str) -> None:
        """Remove a service by name."""
        if name not in self._services:
            raise KeyError(f"service not registered: {name!r}")
        del self._services[name]

    def lookup(self, name: str) -> typing.Optional[ServiceRecord]:
        """Find a service by name, hidden ones included."""
        return self._services.get(name)

    def visible_services(self) -> list[ServiceRecord]:
        """Services advertised to discovery inquiries (hidden excluded)."""
        return [record for record in self._services.values()
                if not record.hidden]

    def all_services(self) -> list[ServiceRecord]:
        """Every registered service, hidden included."""
        return list(self._services.values())

    def __len__(self) -> int:
        return len(self._services)

    def __contains__(self, name: str) -> bool:
        return name in self._services
