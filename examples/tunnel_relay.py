#!/usr/bin/env python
"""Coverage amplification: GPRS in a tunnel over Bluetooth relays.

Reproduces Fig. 6.1: a gateway with a GPRS antenna stands at the tunnel
mouth; Bluetooth relay boxes line the tunnel; a phone deep inside — far
beyond any direct radio reach of the gateway — browses the cellular
network through the PeerHood bridge chain.

Run with::

    python examples/tunnel_relay.py
"""

from repro.apps.coverage_amplification import GprsGateway, TunnelPhone
from repro.scenarios import tunnel_topology


def main() -> None:
    scenario = tunnel_topology(bridge_count=3, seed=13)
    gateway = GprsGateway(scenario.node("gateway"), upstream_latency_s=0.8)
    phone = TunnelPhone(scenario.node("phone"), request_count=5)

    scenario.start_all()
    print("relays are discovering each other along the tunnel...")
    scenario.run(until=420.0)
    if not scenario.wait_for_route("phone", "gateway"):
        print("discovery did not converge; try another seed")
        return

    entry = scenario.node("phone").daemon.storage.get(
        scenario.node("gateway").address)
    print(f"phone's route to the gateway: {entry.jump} jump(s) via "
          f"{entry.bridge}")

    outcome = scenario.run_process(phone.run(gateway, retries=10))

    print("== tunnel session ==")
    print(f"  connected:     {outcome.connected} "
          f"in {outcome.connect_time_s:.1f} s "
          f"over {outcome.hops} hop(s)")
    print(f"  requests:      {outcome.requests_sent} sent, "
          f"{outcome.responses_received} answered")
    if outcome.mean_round_trip_s is not None:
        print(f"  mean RTT:      {outcome.mean_round_trip_s:.2f} s "
              f"(includes {gateway.upstream_latency_s:.1f} s of cellular "
              f"latency)")
    relays = [scenario.node(f"relay{i}") for i in range(3)]
    for relay in relays:
        frames = relay.daemon.bridge_service.relayed_frames
        print(f"  {relay.node_id} relayed {frames} frames")


if __name__ == "__main__":
    main()
