"""Tests for the telemetry plane (:mod:`repro.obs`).

The load-bearing property is the **non-perturbation contract**: a run
with a recorder attached produces byte-identical recorded metrics —
including the kernel-wakeup counts every benchmark gates on — to the
same run without one.  The recorder samples on observer events
(excluded from ``events_processed``), taps the bus and trace passively,
and never draws from any RNG stream.

Also covered: sample-row schema, contact/bundle/fault spans, the
subsystem profiler's two-grade outputs (deterministic counts vs
side-channel wall-clock), the runner integration (``telemetry=True``)
and 1-vs-2-worker byte-identity of ``telemetry.jsonl``.
"""

import json

import pytest

from repro.dtn import DtnOverlay, make_router
from repro.experiments import ExperimentSpec, run_spec
from repro.experiments.runner import execute_point, write_telemetry
from repro.mobility.linear import LinearMovement
from repro.obs import (
    Span,
    SubsystemProfiler,
    Telemetry,
    TelemetryContext,
    TIMELINE_FIELDS,
    activate,
    active,
    deactivate,
    subsystem_label,
)
from repro.scenarios import Scenario
from repro.sim.kernel import Simulator


def _relay_world(seed=4):
    """Static src and dst 60 m apart; a mule drives past both."""
    scenario = Scenario(seed=seed)
    scenario.add_node("src", position=(0, 0), mobility_class="static")
    scenario.add_node("dst", position=(60, 0), mobility_class="static")
    scenario.add_node("mule",
                      mobility=LinearMovement((0.0, 5.0), (1.0, 0.0)))
    return scenario


def _run_relay(telemetry=None, seed=4):
    scenario = _relay_world(seed=seed)
    if telemetry is not None:
        telemetry.attach(scenario.world, trace=scenario.trace,
                         meter=scenario.meter)
    plane = DtnOverlay(scenario.world, make_router("epidemic"))
    plane.send("src", "dst", ttl_s=500.0)
    scenario.run(until=200.0)
    return scenario, plane


# ----------------------------------------------------------------------
# subsystem labels + profiler
# ----------------------------------------------------------------------
def test_subsystem_label_strips_instance_suffixes():
    assert subsystem_label("bus#12:link-up") == "bus"
    assert subsystem_label("dtn-contact#3") == "dtn-contact"
    assert subsystem_label("timeout(5.0)") == "timeout"
    assert subsystem_label("plain") == "plain"
    assert subsystem_label("") == "anonymous"
    assert subsystem_label("#weird") == "anonymous"


def test_profiler_buckets_counts_and_wall_clock():
    profiler = SubsystemProfiler()
    with profiler.measure("bus#1:link-up"):
        pass
    with profiler.measure("bus#2:link-down"):
        pass
    with profiler.measure("telemetry-sample", observer=True):
        pass
    assert profiler.count_rows() == {"bus": 2, "telemetry": 1}
    timings = profiler.timing_entries()
    assert set(timings) == {"profile_bus_wall_s",
                            "profile_telemetry_wall_s"}
    assert all(value >= 0.0 for value in timings.values())


def test_profiler_attributes_even_when_callback_raises():
    profiler = SubsystemProfiler()
    with pytest.raises(RuntimeError):
        with profiler.measure("boom#1"):
            raise RuntimeError("x")
    assert profiler.count_rows() == {"boom": 1}


# ----------------------------------------------------------------------
# kernel observer events
# ----------------------------------------------------------------------
def test_observer_events_excluded_from_events_processed():
    sim = Simulator()
    fired = []
    sim.call_at(1.0, lambda: fired.append("real"), name="real")
    sim.call_at(2.0, lambda: fired.append("obs"), name="obs",
                observer=True)
    assert sim.pending_real_events() == 1
    sim.run(until=None)
    assert fired == ["real", "obs"]
    assert sim.events_processed == 1          # the observer never counted
    assert sim.pending_real_events() == 0


def test_self_rescheduling_sampler_does_not_block_run_to_completion():
    scenario = Scenario(seed=1)
    scenario.add_node("a", position=(0, 0), mobility_class="static")
    scenario.add_node("b", position=(5, 0), mobility_class="static")
    telemetry = Telemetry(interval_s=10.0)
    telemetry.attach(scenario.world, trace=scenario.trace)
    fired = []
    scenario.sim.call_at(35.0, lambda: fired.append(True), name="work")
    scenario.run(until=None)     # must terminate despite the sampler
    assert fired == [True]
    assert scenario.sim.pending_real_events() == 0
    # The sampler stood down once only observer events remained: it did
    # not tick the clock past the last real event plus one interval.
    assert scenario.sim.now <= 45.0


# ----------------------------------------------------------------------
# recorder lifecycle + sample rows
# ----------------------------------------------------------------------
def test_attach_twice_refused_and_interval_validated():
    with pytest.raises(ValueError, match="interval_s"):
        Telemetry(interval_s=0.0)
    scenario = _relay_world()
    telemetry = Telemetry()
    telemetry.attach(scenario.world)
    with pytest.raises(RuntimeError, match="attached"):
        telemetry.attach(scenario.world)
    telemetry.detach()
    telemetry.detach()           # idempotent


def test_sample_rows_have_the_fixed_timeline_schema():
    telemetry = Telemetry(label="leg0", interval_s=60.0)
    _run_relay(telemetry)
    telemetry.finalize()
    samples = telemetry.timeline_rows()
    assert len(samples) >= 3                   # attach + periodic + final
    times = [row["t"] for row in samples]
    assert times == sorted(times)
    for row in samples:
        assert row["type"] == "sample"
        assert row["leg"] == "leg0"
        assert set(row) == {"type", "leg"} | set(TIMELINE_FIELDS)
    # Counters are cumulative, so every column is monotone.
    for field in ("kernel_events", "bus_fired", "dtn_created"):
        column = [row[field] for row in samples]
        assert column == sorted(column)
    # The DTN plane registered itself: the bundle shows up.
    assert samples[-1]["dtn_created"] == 1
    assert samples[-1]["dtn_delivered"] == 1


def test_records_order_samples_then_spans_then_profile():
    telemetry = Telemetry(label="leg0")
    _run_relay(telemetry)
    telemetry.finalize()
    rows = telemetry.records()
    kinds = [row["type"] for row in rows]
    assert kinds == (["sample"] * kinds.count("sample")
                     + ["span"] * kinds.count("span")
                     + ["profile"])
    profile = rows[-1]
    assert profile["event_counts"]            # non-empty, deterministic
    json.dumps(rows)                          # JSON-safe throughout
    # Wall-clock rides the timings side channel, never the records.
    assert not any("wall" in key for row in rows for key in row)
    timings = telemetry.timing_entries()
    assert timings and all(key.startswith("profile_leg0_")
                           for key in timings)


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
def test_contact_and_bundle_spans_from_a_relay_run():
    telemetry = Telemetry()
    _run_relay(telemetry)
    contacts = telemetry.spans.by_kind("contact")
    # src|mule are in range at t=0 — no crossing, no span.  The mule's
    # drive past dst is a genuine link-up/link-down window.
    [window] = [span for span in contacts if span.status == "closed"]
    assert window.key == "dst|mule|bluetooth"
    assert window.closed_at > window.opened_at
    bundles = telemetry.spans.by_kind("bundle")
    assert len(bundles) == 1
    journey = bundles[0]
    assert journey.status == "delivered"
    assert journey.detail["source"] == "src"
    assert journey.detail["destination"] == "dst"
    hops = journey.detail["hops"]
    assert [(h[1], h[2]) for h in hops] == [("src", "mule"),
                                            ("mule", "dst")]
    assert journey.detail["final_custodian"] == "mule"   # delivering hop


def test_bundle_drop_span_closes_only_on_terminal_loss():
    scenario = _relay_world()
    telemetry = Telemetry()
    telemetry.attach(scenario.world, trace=scenario.trace)
    plane = DtnOverlay(scenario.world, make_router("epidemic"))
    plane.send("src", "dst", ttl_s=500.0)
    scenario.run(until=20.0)      # mule has the copy, src still does too
    scenario.remove_node("mule")  # one copy lost, src's copy survives
    [journey] = telemetry.spans.by_kind("bundle")
    assert journey.status == "open"
    scenario.remove_node("src")   # last living copy gone
    assert journey.status == "dropped"
    assert journey.detail["reason"] == "custodian-removed"


def test_fault_span_hooks():
    scenario = _relay_world()
    telemetry = Telemetry()
    telemetry.attach(scenario.world)
    telemetry.fault_down("src", "crash")
    telemetry.fault_down("src", "crash")      # duplicate down: one span
    telemetry.fault_up("src")
    telemetry.fault_up("src")                 # duplicate up: no-op
    [outage] = telemetry.spans.by_kind("fault")
    assert outage.status == "recovered"
    assert outage.detail["fault_kind"] == "crash"


def test_span_close_is_idempotent():
    span = Span(kind="contact", key="a|b|bt", opened_at=1.0)
    span.close(2.0, "closed", bytes_used=5)
    span.close(9.0, "other", bytes_used=99)
    assert span.closed_at == 2.0
    assert span.status == "closed"
    assert span.detail == {"bytes_used": 5}
    record = span.as_record("leg1")
    assert record["type"] == "span"
    assert record["leg"] == "leg1"


# ----------------------------------------------------------------------
# the non-perturbation contract
# ----------------------------------------------------------------------
def test_recorder_never_changes_recorded_metrics():
    bare_scenario, bare_plane = _run_relay(None)
    telemetry = Telemetry()
    obs_scenario, obs_plane = _run_relay(telemetry)
    # Same wakeup counts (the benchmark gate figures), same counters,
    # same deliveries, same bus stats, same trace.
    assert (obs_scenario.sim.events_processed
            == bare_scenario.sim.events_processed)
    assert obs_plane.counters.as_dict() == bare_plane.counters.as_dict()
    assert obs_plane.wakeups == bare_plane.wakeups
    assert sorted(obs_plane.delivered) == sorted(bare_plane.delivered)
    assert (obs_scenario.world.stats.bus.as_dict()
            == bare_scenario.world.stats.bus.as_dict())
    assert ([repr(e) for e in obs_scenario.trace]
            == [repr(e) for e in bare_scenario.trace])


# ----------------------------------------------------------------------
# runner integration
# ----------------------------------------------------------------------
def _tiny_spec():
    return ExperimentSpec(
        name="tiny_obs", workload="discovery",
        scenarios=("line_topology",),
        axes={"count": (3,)}, repeats=2, master_seed=5,
        settings={"settle_s": 40.0})


def test_execute_point_with_telemetry_keeps_records_identical():
    point = _tiny_spec().expand()[0].as_dict()
    record_off, _, rows_off = execute_point(point)
    record_on, timings_on, rows_on = execute_point(point, telemetry=True)
    assert record_on == record_off            # the contract, end to end
    assert rows_off == []
    assert rows_on
    assert all(row["run"] == record_on["run"] for row in rows_on)
    assert active() is None                   # context cleaned up
    # Profiler wall-clock joined the timings side channel.
    assert any(key.startswith("profile_") for key in timings_on)


def test_telemetry_jsonl_byte_identical_at_1_vs_2_workers(tmp_path):
    spec = _tiny_spec()
    outputs = {}
    for workers in (1, 2):
        results = run_spec(spec, workers=workers, telemetry=True)
        jsonl_path, csv_path = write_telemetry(
            results, tmp_path / f"w{workers}")
        outputs[workers] = (jsonl_path.read_bytes(),
                            csv_path.read_bytes())
    assert outputs[1][0] == outputs[2][0]     # telemetry.jsonl
    assert outputs[1][1] == outputs[2][1]     # timeline.csv
    assert outputs[1][0]                      # and they are non-empty


def test_context_adopts_every_scenario_built_while_active():
    context = activate(TelemetryContext(interval_s=30.0))
    try:
        with pytest.raises(RuntimeError, match="already active"):
            activate(TelemetryContext())
        first = _relay_world()
        second = _relay_world()
        assert first.world.telemetry is context.telemetries[0]
        assert second.world.telemetry is context.telemetries[1]
        assert [t.label for t in context.telemetries] == ["leg0", "leg1"]
    finally:
        deactivate()
    rows, _ = context.collect()
    assert {row["leg"] for row in rows} == {"leg0", "leg1"}
    # Recorders detached at collect: worlds no longer reference them.
    assert first.world.telemetry is None
    assert second.world.telemetry is None
    # And with no context active, new scenarios stay recorder-free.
    assert _relay_world().world.telemetry is None
