"""Interrupt/resume differential smoke: SIGTERM a sweep, resume, diff.

The CI-facing end-to-end check of the campaign layer's two headline
guarantees, exercised through the real CLI as separate OS processes:

1. **Crash/resume byte identity** — a campaign SIGTERM-killed
   mid-flight and then resumed produces ``runs.jsonl`` +
   ``summary.csv`` byte-identical to an uninterrupted run, and the
   resume executes exactly the cells the kill left uncommitted
   (asserted against ``campaign.json`` using the journal's commit
   count at the moment of death).
2. **Cache-hit rate** — re-running the sweep against the clean run's
   cache executes zero cells (100% hits) and still emits identical
   bytes.

The kill is synchronised on the journal itself: the driver polls
``runs.journal.jsonl`` until at least one cell has committed, then
terminates the child — a deterministic "mid-flight", not a sleep race.
If the sweep finishes before the signal lands (fast hardware), the
run degrades to a resume-is-a-no-op check and says so.

Usage: ``python tools/resume_smoke.py [--spec delay_sweep]``
(run from the repo root; ``make resume-smoke``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    return env


def _cmd(spec: str, out: pathlib.Path, cache: pathlib.Path,
         workers: int) -> list[str]:
    return [sys.executable, "-m", "repro.experiments", "run", spec,
            "--workers", str(workers), "--out", str(out),
            "--cache-dir", str(cache)]


def _run(cmd: list[str]) -> None:
    proc = subprocess.run(cmd, env=_env(), cwd=REPO_ROOT)
    if proc.returncode != 0:
        sys.exit(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")


def _journal_commits(path: pathlib.Path) -> int:
    """Committed cells in a journal (tolerant of a torn tail)."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return 0
    count = 0
    for raw in text.splitlines():
        try:
            line = json.loads(raw)
        except json.JSONDecodeError:
            continue
        if isinstance(line, dict) and line.get("type") == "commit":
            count += 1
    return count


def _stats(out: pathlib.Path) -> dict:
    return json.loads((out / "campaign.json").read_text(encoding="utf-8"))


def _assert_same_bytes(a: pathlib.Path, b: pathlib.Path) -> None:
    for name in ("runs.jsonl", "summary.csv"):
        if (a / name).read_bytes() != (b / name).read_bytes():
            sys.exit(f"FAIL: {name} differs between {a} and {b}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", default="delay_sweep",
                        help="bundled spec to sweep (default delay_sweep)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="seconds to wait for the first commit")
    args = parser.parse_args()

    base = pathlib.Path(tempfile.mkdtemp(prefix="resume_smoke_"))
    clean, interrupted, hits = base / "clean", base / "resumed", base / "hits"
    print(f"resume smoke for spec {args.spec!r} under {base}")

    # --- reference: uninterrupted, 2 workers, fresh cache ------------
    _run(_cmd(args.spec, clean, clean / "cache", workers=2))
    total = _stats(clean)["total"]

    # --- interrupted leg: SIGTERM after the first journal commit -----
    journal = interrupted / "runs.journal.jsonl"
    child = subprocess.Popen(
        _cmd(args.spec, interrupted, interrupted / "cache", workers=1),
        env=_env(), cwd=REPO_ROOT)
    deadline = time.monotonic() + args.timeout
    while (child.poll() is None and _journal_commits(journal) < 1
           and time.monotonic() < deadline):
        time.sleep(0.02)
    if child.poll() is None:
        child.send_signal(signal.SIGTERM)
        child.wait(timeout=120)
        print(f"sent SIGTERM after {_journal_commits(journal)} commits "
              f"(child exited {child.returncode})")
    else:
        print("note: sweep finished before SIGTERM landed; "
              "checking resume-as-no-op instead")
    committed = _journal_commits(journal)

    # --- resume: must execute exactly the uncommitted cells ----------
    _run(_cmd(args.spec, interrupted, interrupted / "cache", workers=1))
    stats = _stats(interrupted)
    if stats["journal_hits"] != committed:
        sys.exit(f"FAIL: resume adopted {stats['journal_hits']} cells, "
                 f"journal held {committed}")
    if stats["executed"] != total - committed:
        sys.exit(f"FAIL: resume executed {stats['executed']} cells, "
                 f"expected {total - committed} of {total}")
    _assert_same_bytes(clean, interrupted)
    print(f"resume ok: {committed} committed before kill, "
          f"{stats['executed']} executed on resume, bytes identical")

    # --- cache-hit rate: clean cache serves the whole sweep ----------
    _run(_cmd(args.spec, hits, clean / "cache", workers=1))
    stats = _stats(hits)
    if stats["executed"] != 0 or stats["cache_hits"] != total:
        sys.exit(f"FAIL: cached re-run was not 100% hits: {stats}")
    _assert_same_bytes(clean, hits)
    print(f"cache ok: {stats['cache_hits']}/{total} hits, "
          f"0 executed, bytes identical")
    print("resume smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
