"""Tests for :mod:`repro.metrics.trace` — query helpers, repr, taps.

The trace is the oldest metrics module and, until the telemetry plane
started tapping it, the least tested: these tests pin the query-helper
contracts (filtering, ordering, first/last/count/times/kinds) and the
tap mechanism the :class:`repro.obs.Telemetry` recorder rides.
"""

import pytest

from repro.metrics.trace import EventTrace, TraceEvent


@pytest.fixture
def trace():
    t = EventTrace()
    t.record(1.0, "a", "signal-low", quality=3)
    t.record(2.0, "b", "routing-handover", via="wlan")
    t.record(3.0, "a", "signal-low", quality=2)
    t.record(4.0, "a", "link-up")
    return t


def test_record_returns_the_appended_event(trace):
    event = trace.record(5.0, "c", "custom", flag=True)
    assert isinstance(event, TraceEvent)
    assert event.time == 5.0
    assert event.node == "c"
    assert event.detail == {"flag": True}
    assert len(trace) == 5
    assert list(trace)[-1] is event


def test_events_filters_by_kind_and_node(trace):
    assert len(trace.events()) == 4
    assert [e.time for e in trace.events(kind="signal-low")] == [1.0, 3.0]
    assert [e.time for e in trace.events(node="a")] == [1.0, 3.0, 4.0]
    assert [e.time for e in trace.events(kind="signal-low", node="a")] \
        == [1.0, 3.0]
    assert trace.events(kind="nope") == []


def test_first_last_count_times(trace):
    assert trace.first("signal-low").time == 1.0
    assert trace.last("signal-low").time == 3.0
    assert trace.first("nope") is None
    assert trace.last("nope") is None
    assert trace.count("signal-low") == 2
    assert trace.count("signal-low", node="b") == 0
    assert trace.times("signal-low") == [1.0, 3.0]
    assert trace.times("nope") == []


def test_kinds_sorted_and_deduplicated(trace):
    assert trace.kinds() == ["link-up", "routing-handover", "signal-low"]
    assert EventTrace().kinds() == []


def test_clear_empties_the_trace(trace):
    trace.clear()
    assert len(trace) == 0
    assert trace.events() == []
    assert trace.kinds() == []


def test_trace_event_repr_is_human_readable():
    event = TraceEvent(time=12.5, node="n1", kind="signal-low",
                       detail={"quality": 3})
    text = repr(event)
    assert "12.500" in text
    assert "n1" in text
    assert "signal-low" in text
    assert "quality" in text


def test_trace_event_is_frozen():
    event = TraceEvent(time=0.0, node="n", kind="k")
    with pytest.raises(Exception):
        event.time = 1.0


# ----------------------------------------------------------------------
# taps (the telemetry plane's feed)
# ----------------------------------------------------------------------
def test_tap_sees_each_event_after_it_is_appended():
    trace = EventTrace()
    seen = []

    def tap(event):
        # The event must already be queryable when the tap runs.
        assert trace.last(event.kind) is event
        seen.append(event)

    trace.add_tap(tap)
    first = trace.record(1.0, "a", "x")
    second = trace.record(2.0, "b", "y")
    assert seen == [first, second]


def test_remove_tap_stops_delivery_and_is_idempotent():
    trace = EventTrace()
    seen = []
    tap = seen.append
    trace.add_tap(tap)
    trace.record(1.0, "a", "x")
    trace.remove_tap(tap)
    trace.record(2.0, "a", "y")
    assert [e.kind for e in seen] == ["x"]
    trace.remove_tap(tap)          # absent: no-op, no raise


def test_taps_do_not_change_recorded_events():
    plain = EventTrace()
    tapped = EventTrace()
    tapped.add_tap(lambda event: None)
    for t in (plain, tapped):
        t.record(1.0, "a", "x", k=1)
        t.record(2.0, "b", "y")
    assert [repr(e) for e in plain] == [repr(e) for e in tapped]
