"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips one knob the thesis argues for and shows the
consequence:

* A1 — Fig. 3.9 per-link quality threshold on/off (route choice);
* A2 — §3.4.3 mobility preference on/off (static-backbone routing);
* A3 — §4.3 connection-attempt repetition on/off (chain success rate);
* A4 — §5.2.1 low-count limit sweep (handover trigger latency);
* A5 — §5.3 sending flag on/off (spurious handovers while idle);
* A6 — jump-first vs quality-first route ranking.
"""

from repro.core.config import (
    DaemonConfig,
    HandoverConfig,
    RoutingPolicy,
)
from repro.core.device import MobilityClass
from repro.core.errors import ConnectionClosedError
from repro.core.handover import HandoverThread
from repro.core.routing import RouteMetrics, is_better_route
from repro.radio.technologies import BLUETOOTH
from repro.scenarios import fig_4_5_bridge_test, fig_5_8_handover
from paperbench import print_table

SETTLE_S = 200.0
S = MobilityClass.STATIC
D = MobilityClass.DYNAMIC


# ----------------------------------------------------------------------
# A1 + A2 + A6: pure routing-policy ablations (fast, rule-level)
# ----------------------------------------------------------------------
def run_policy_ablations():
    clean = RouteMetrics(1, S, 460, 230)       # Fig. 3.9's A-B-D
    tainted = RouteMetrics(1, S, 460, 210)     # Fig. 3.9's A-C-D
    via_static = RouteMetrics(1, S, 400, 240)
    via_dynamic = RouteMetrics(1, D, 480, 240)
    short_weak = RouteMetrics(1, S, 250, 250)
    long_strong = RouteMetrics(3, S, 900, 255)
    return {
        "threshold_on_prefers_clean": is_better_route(
            clean, tainted, RoutingPolicy()),
        "threshold_off_ties": not is_better_route(
            clean, tainted, RoutingPolicy(use_quality_threshold=False)),
        "mobility_on_prefers_static": is_better_route(
            via_static, via_dynamic, RoutingPolicy()),
        "mobility_off_prefers_quality": is_better_route(
            via_dynamic, via_static, RoutingPolicy(use_mobility=False)),
        "jump_first_prefers_short": is_better_route(
            short_weak, long_strong, RoutingPolicy()),
        "quality_first_prefers_strong": is_better_route(
            long_strong, short_weak, RoutingPolicy(quality_first=True)),
    }


def test_ablation_routing_policy(benchmark):
    verdict = benchmark(run_policy_ablations)
    rows = [[name, value] for name, value in verdict.items()]
    print_table("A1/A2/A6: routing-policy ablations", ["check", "holds"],
                rows)
    assert all(verdict.values()), verdict


# ----------------------------------------------------------------------
# A3: §4.3 connection-attempt repetition
# ----------------------------------------------------------------------
def run_retry_ablation(attempts=16):
    results = {}
    for retries in (0, 2):
        failures = 0
        for seed in range(attempts):
            config = DaemonConfig(connect_retries=retries)
            scenario = fig_4_5_bridge_test(seed=seed, config=config)
            server = scenario.node("server")
            client = scenario.node("client")

            def handler(connection):
                return None

            server.library.register_service("probe", handler)
            scenario.start_all()
            scenario.run(until=SETTLE_S)
            if not scenario.wait_for_route("client", "server"):
                failures += 1
                continue

            def run(sim, client=client, server=server, retries=retries):
                try:
                    yield from client.library.connect(
                        server.address, "probe", retries=retries)
                except Exception:
                    return False
                return True

            if not scenario.run_process(run(scenario.sim)):
                failures += 1
        results[retries] = failures / attempts
    return results


def test_ablation_connect_retries(benchmark):
    results = benchmark.pedantic(run_retry_ablation, rounds=1,
                                 iterations=1, warmup_rounds=0)
    rows = [[retries, f"{rate:.0%}"] for retries, rate in results.items()]
    print_table("A3: §4.3 bridge-chain failure rate vs retries",
                ["retries", "failure rate"], rows)
    assert results[2] < results[0], (
        "retrying must reduce chain failures (the §4.3 recommendation): "
        f"{results}")
    benchmark.extra_info["failure_rates"] = {
        str(k): round(v, 3) for k, v in results.items()}


# ----------------------------------------------------------------------
# A4 + A5: handover knobs on the Fig. 5.8 rig
# ----------------------------------------------------------------------
def run_handover_knob(config, sending, seed=5, messages=90):
    scenario = fig_5_8_handover(seed=seed)
    server, client = scenario.node("A"), scenario.node("B")

    def handler(connection):
        def serve(connection=connection):
            while True:
                try:
                    yield from connection.read()
                except ConnectionClosedError:
                    return
        return serve()

    server.library.register_service("print", handler)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    if not scenario.wait_for_route("B", "A"):
        return None

    def client_run(sim):
        connection = yield from client.library.connect(
            server.address, "print", retries=6)
        decay_start = sim.now
        scenario.world.install_linear_decay(
            "A", "B", BLUETOOTH, initial_quality=240)
        connection.set_sending(sending)
        thread = HandoverThread(client.library, connection,
                                config=config).start()
        for index in range(messages):
            connection.write(f"m{index}", 64)
            yield sim.timeout(1.0)
        thread.stop()
        return decay_start, thread

    decay_start, thread = scenario.run_process(client_run(scenario.sim))
    handover = scenario.trace.first("routing-handover")
    return {
        "fired": thread.handovers_done >= 1,
        "trigger_delay": (handover.time - decay_start
                          if handover else None),
    }


def test_ablation_low_count_limit(benchmark):
    def sweep():
        results = {}
        for limit in (1, 3, 8):
            outcome = run_handover_knob(
                HandoverConfig(low_count_limit=limit), sending=True)
            results[limit] = outcome
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1,
                                 warmup_rounds=0)
    rows = [[limit,
             outcome["fired"],
             f"{outcome['trigger_delay']:.0f} s"
             if outcome and outcome["trigger_delay"] else "-"]
            for limit, outcome in results.items()]
    print_table("A4: handover trigger delay vs low-count limit "
                "(paper uses 3)", ["limit", "fired", "delay after decay"],
                rows)
    assert all(outcome["fired"] for outcome in results.values())
    delays = [results[limit]["trigger_delay"] for limit in (1, 3, 8)]
    assert delays == sorted(delays), (
        f"a stricter limit must delay the trigger: {delays}")
    benchmark.extra_info["delays"] = [round(d, 1) for d in delays]


def test_ablation_sending_flag(benchmark):
    def compare():
        active = run_handover_knob(HandoverConfig(), sending=True)
        idle = run_handover_knob(HandoverConfig(), sending=False)
        return active, idle

    active, idle = benchmark.pedantic(compare, rounds=1, iterations=1,
                                      warmup_rounds=0)
    rows = [
        ["sending=True (streaming)", "handover fires", active["fired"]],
        ["sending=False (waiting for result)", "no handover (§5.3)",
         not idle["fired"]],
    ]
    print_table("A5: the §5.3 sending flag", ["mode", "paper", "holds"],
                rows)
    assert active["fired"]
    assert not idle["fired"]
