"""The lossy PHY plane: per-packet delivery fate from received power.

Until this module, links were binary — in range meant every packet
arrived, so epidemic flooding was free.  :class:`PhyPlane` makes the
physical layer probabilistic, deciding each delivery's fate **at
delivery time** (event-driven, never polled) from three ingredients:

* **path loss + shadowing** — the existing
  :class:`~repro.radio.propagation.LogDistancePathLoss` law gives the
  mean received power; a per-packet log-normal shadowing term (Gaussian
  in dB, ``sigma`` configurable) models obstructions.  Shadowing draws
  come from a dedicated ``phy/shadowing/<sender>-><receiver>`` RNG
  sub-stream per directed pair, so installing a PHY plane never
  perturbs mobility, traffic, or fault draws (labelled streams are
  independent — see :mod:`repro.sim.rng`) and the loss decisions are a
  pure function of ``(master seed, transmission sequence)``;
* **per-technology sensitivity** — each technology's receive threshold
  is *calibrated to its nominal range*: ``sensitivity_dbm =
  path_loss.rssi_dbm(range_m)``, so with ``sigma = 0`` the plane
  reproduces today's binary in-range behaviour exactly (every in-range
  packet clears the threshold) and raising sigma strictly raises the
  per-packet loss probability at every in-range distance;
* **collision / capture** — when transmissions to one receiver overlap
  in time, the stronger survives only if it beats every rival by the
  capture margin, else all overlapped packets are lost.  In-flight
  transmissions are tracked per receiver and pruned lazily (no
  timers).

Jammers (:mod:`repro.faults`) couple in as *noise*, not as a binary
gate: with a PHY plane installed, :meth:`~repro.faults.plane.
FaultPlane.can_transmit` skips its jammer check and the plane instead
raises the effective receive threshold by ``jammer_noise_db`` while an
endpoint sits in a jammer disk — a strong nearby signal still punches
through, a marginal one drowns.

The analytic loss curve is closed-form: a packet at distance *d* is
lost iff ``rssi(d) + X < threshold`` with ``X ~ N(0, sigma)``, so

    ``P(loss) = Phi((threshold - rssi(d)) / sigma)``

which :meth:`PhyPlane.loss_probability` evaluates via ``math.erf`` —
the statistical convergence property tests compare measured rates
against it.

Determinism contract (tested in ``tests/test_phy*.py``):

* a world without a plane (``world.phy is None``) runs the literal
  pre-PHY code path — :func:`install_scenario_phy` installs **nothing**
  when every knob is zero, mirroring the fault plane's zero-rate
  identity;
* same seed ⇒ same per-packet fates at any worker count;
* PHY randomness never moves a walker: mobility streams are untouched.

Units: metres, sim-seconds, bytes, dB/dBm throughout.
"""

from __future__ import annotations

import math
import typing

from repro.metrics.counters import PhyCounters
from repro.mobility.base import distance
from repro.radio.propagation import LogDistancePathLoss, PathLossModel
from repro.radio.technologies import Technology, get_technology

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.world import World
    from repro.scenarios.builder import Scenario
    from repro.sim.rng import RandomStream

#: Transmit power per technology (dBm) for the default calibrated
#: profiles: Bluetooth class 2, WLAN station, GPRS handset.  Unknown
#: technologies fall back to the Bluetooth figure.
_TX_POWER_DBM = {"bluetooth": 4.0, "wlan": 16.0, "gprs": 33.0}

#: Default SNR a technology needs above its noise floor to decode.
DEFAULT_REQUIRED_SNR_DB = 10.0

#: Default advantage (dB) a packet needs over every overlapping rival
#: to be captured instead of collided (classic capture-effect figure).
DEFAULT_CAPTURE_MARGIN_DB = 6.0

#: Default noise a jammer adds to the floor at an affected endpoint.
DEFAULT_JAMMER_NOISE_DB = 20.0

#: Threshold comparison slack.  Contact events fire with the pair at
#: *exactly* the nominal range, where the calibrated ``rssi ==
#: sensitivity`` holds only up to floating-point noise (~1e-13 dB
#: observed); without slack the zero-sigma plane would lose boundary
#: packets on rounding, breaking the binary-identity contract.  1e-9 dB
#: is ~1e-10 m of position error — far below any physical knob.
_BOUNDARY_EPSILON_DB = 1e-9

#: Resolution fates (``PhyTransmission.fate``).
DELIVERED = "delivered"
CAPTURED = "captured"            # delivered despite overlapping rivals
LOST_FADING = "lost-fading"      # below the (possibly jammed) threshold
LOST_COLLISION = "lost-collision"


class PhyProfile:
    """One technology's receive characteristics, calibrated to range.

    ``sensitivity_dbm`` — the clean-air decode threshold — is derived
    from the path-loss law at the technology's nominal range, so the
    zero-shadowing plane is *exactly* the binary in-range model: every
    geometric contact clears the threshold, nothing outside it does.
    ``noise_floor_dbm`` sits ``required_snr_db`` below sensitivity;
    jammer noise raises the floor (and with it the effective
    threshold) at query time.
    """

    __slots__ = ("tech_name", "path_loss", "sensitivity_dbm",
                 "required_snr_db", "noise_floor_dbm")

    def __init__(self, tech_name: str, path_loss: PathLossModel,
                 sensitivity_dbm: float,
                 required_snr_db: float = DEFAULT_REQUIRED_SNR_DB):
        self.tech_name = tech_name
        self.path_loss = path_loss
        self.sensitivity_dbm = sensitivity_dbm
        self.required_snr_db = required_snr_db
        self.noise_floor_dbm = sensitivity_dbm - required_snr_db

    @classmethod
    def for_technology(cls, tech: Technology,
                       path_loss: PathLossModel | None = None,
                       required_snr_db: float = DEFAULT_REQUIRED_SNR_DB
                       ) -> "PhyProfile":
        """Calibrated profile: sensitivity = rssi at nominal range."""
        if path_loss is None:
            path_loss = LogDistancePathLoss(
                tx_power_dbm=_TX_POWER_DBM.get(tech.name, 4.0))
        return cls(tech.name, path_loss,
                   path_loss.rssi_dbm(tech.range_m), required_snr_db)


class PhyTransmission:
    """One packet on the air: its window, power and (eventual) fate."""

    __slots__ = ("sender", "receiver", "tech_name", "kind", "size_bytes",
                 "started_at", "ends_at", "rssi_dbm", "contenders",
                 "resolved", "fate")

    def __init__(self, sender: str, receiver: str, tech_name: str,
                 kind: str, size_bytes: int, started_at: float,
                 ends_at: float, rssi_dbm: float):
        self.sender = sender
        self.receiver = receiver
        self.tech_name = tech_name
        self.kind = kind
        self.size_bytes = size_bytes
        self.started_at = started_at
        self.ends_at = ends_at
        self.rssi_dbm = rssi_dbm
        #: Overlapping transmissions to the same receiver (mutual).
        self.contenders: list["PhyTransmission"] = []
        self.resolved = False
        self.fate: str | None = None

    @property
    def delivered(self) -> bool:
        """True once resolved with a surviving fate."""
        return self.fate in (DELIVERED, CAPTURED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PhyTransmission {self.sender}->{self.receiver} "
                f"{self.kind} [{self.started_at:.3f},{self.ends_at:.3f}] "
                f"{self.rssi_dbm:.1f}dBm {self.fate or 'in-flight'}>")


class PhyPlane:
    """Per-world lossy physical layer (installed as ``world.phy``).

    Parameters
    ----------
    world:
        The world to attach to.  ``world.phy`` must still be unset —
        stacking two planes is a configuration error (mirroring
        :class:`~repro.faults.plane.FaultPlane`).
    shadowing_sigma_db:
        Log-normal shadowing standard deviation in dB; ``0`` disables
        fading loss entirely (no RNG draw is made, so a
        collisions-only plane is fully deterministic).
    collisions:
        Enable the per-receiver overlap/capture model.
    capture_margin_db:
        Advantage over the strongest rival needed to survive overlap.
    jammer_noise_db:
        Threshold raise while an endpoint is inside a jammer disk.
    profiles:
        Optional ``{tech_name: PhyProfile}`` overrides; unknown
        technologies get a calibrated default on first use.
    """

    def __init__(self, world: "World", *,
                 shadowing_sigma_db: float = 0.0,
                 collisions: bool = True,
                 capture_margin_db: float = DEFAULT_CAPTURE_MARGIN_DB,
                 jammer_noise_db: float = DEFAULT_JAMMER_NOISE_DB,
                 profiles: dict[str, PhyProfile] | None = None):
        if getattr(world, "phy", None) is not None:
            raise ValueError("a PhyPlane is already installed on this "
                             "world; configure the existing plane "
                             "instead of stacking planes")
        if shadowing_sigma_db < 0:
            raise ValueError(
                f"negative shadowing sigma: {shadowing_sigma_db}")
        if capture_margin_db < 0:
            raise ValueError(
                f"negative capture margin: {capture_margin_db}")
        if jammer_noise_db < 0:
            raise ValueError(f"negative jammer noise: {jammer_noise_db}")
        self.world = world
        self.sim = world.sim
        self.shadowing_sigma_db = float(shadowing_sigma_db)
        self.collisions = bool(collisions)
        self.capture_margin_db = float(capture_margin_db)
        self.jammer_noise_db = float(jammer_noise_db)
        self.counters = PhyCounters()
        self._profiles: dict[str, PhyProfile] = dict(profiles or {})
        # Per-directed-pair shadowing streams, created lazily; the
        # labels are stable, so a pair's draw sequence depends only on
        # its own transmission history.
        self._streams: dict[tuple[str, str], "RandomStream"] = {}
        # In-flight transmissions per receiver (collision tracking),
        # pruned lazily at each begin — no timers, no polling.
        self._in_flight: dict[str, list[PhyTransmission]] = {}
        # Per-sender air-serialisation cursor for transmit(): one radio
        # sends one packet at a time, so a cascade's same-instant
        # offers occupy consecutive air windows instead of colliding
        # with themselves.
        self._sender_busy: dict[str, float] = {}
        world.phy = self

    # ------------------------------------------------------------------
    # profiles and the analytic curve
    # ------------------------------------------------------------------
    def profile(self, tech: Technology | str | None = None) -> PhyProfile:
        """The (cached) profile for ``tech`` (default Bluetooth)."""
        tech_obj = self._tech(tech)
        profile = self._profiles.get(tech_obj.name)
        if profile is None:
            profile = PhyProfile.for_technology(tech_obj)
            self._profiles[tech_obj.name] = profile
        return profile

    @staticmethod
    def _tech(tech: Technology | str | None) -> Technology:
        if tech is None:
            return get_technology("bluetooth")
        return get_technology(tech) if isinstance(tech, str) else tech

    def loss_probability(self, distance_m: float, *,
                         tech: Technology | str | None = None,
                         jammed: bool = False) -> float:
        """Analytic fading-loss probability at ``distance_m``.

        ``P(loss) = Phi((threshold - rssi(d)) / sigma)`` — the curve
        the measured loss rate converges to (property-tested).  With
        ``sigma = 0`` this is the exact binary threshold.  Collisions
        are not modelled here (they depend on traffic, not geometry).
        """
        profile = self.profile(tech)
        mu = profile.path_loss.rssi_dbm(distance_m)
        threshold = profile.sensitivity_dbm
        if jammed:
            threshold += self.jammer_noise_db
        sigma = self.shadowing_sigma_db
        if sigma <= 0:
            return 0.0 if mu >= threshold - _BOUNDARY_EPSILON_DB else 1.0
        z = (threshold - mu) / (sigma * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))

    # ------------------------------------------------------------------
    # the transmission registry
    # ------------------------------------------------------------------
    def begin(self, sender: str, receiver: str, size_bytes: int, *,
              kind: str = "data",
              tech: Technology | str | None = None,
              started_at: float | None = None,
              ends_at: float | None = None) -> PhyTransmission:
        """Register one packet on the air; fate is decided at
        :meth:`resolve`.

        Callers that serialise their own air (the bandwidth plane's
        session cursor, a :class:`~repro.radio.channel.Link`'s
        per-direction busy-until) pass their computed window via
        ``started_at`` / ``ends_at``; both default to an immediate
        window of the technology's transmit time.  ``started_at`` must
        not precede the current instant (the lazy pruning invariant).
        """
        tech_obj = self._tech(tech)
        now = self.sim.now
        if started_at is None:
            started_at = now
        if ends_at is None:
            ends_at = started_at + tech_obj.transmit_time(size_bytes)
        rssi = self._draw_rssi(sender, receiver, tech_obj)
        tx = PhyTransmission(sender, receiver, tech_obj.name, kind,
                             size_bytes, started_at, ends_at, rssi)
        self.counters.offered += 1
        if self.collisions:
            self._register(tx, now)
        return tx

    def resolve(self, tx: PhyTransmission) -> bool:
        """Decide (once) whether ``tx`` survived; True if delivered.

        Fading is checked first — a packet below the effective
        threshold is lost regardless of rivals; then the capture rule:
        survive overlap only by beating the strongest rival's received
        power by the capture margin.  Jammer state is sampled here, at
        the delivery instant.
        """
        if tx.resolved:
            return tx.delivered
        tx.resolved = True
        counters = self.counters
        if tx.rssi_dbm < self._threshold_dbm(tx) - _BOUNDARY_EPSILON_DB:
            tx.fate = LOST_FADING
            counters.lost_fading += 1
            return False
        if tx.contenders:
            strongest = max(rival.rssi_dbm for rival in tx.contenders)
            if tx.rssi_dbm >= strongest + self.capture_margin_db:
                tx.fate = CAPTURED
                counters.captured += 1
                counters.delivered += 1
                return True
            tx.fate = LOST_COLLISION
            counters.lost_collision += 1
            return False
        tx.fate = DELIVERED
        counters.delivered += 1
        return True

    def transmit(self, sender: str, receiver: str, size_bytes: int, *,
                 kind: str = "data",
                 tech: Technology | str | None = None,
                 duration_s: float | None = None) -> bool:
        """Instantaneous-plane convenience: begin + resolve now.

        The packet's custody fate is decided at the current instant,
        but its *air window* is serialised through the sender's busy
        cursor — a cascade offering many bundles in one instant
        occupies consecutive windows (one radio), while different
        senders reaching one receiver at the same instant genuinely
        overlap and collide.
        """
        tech_obj = self._tech(tech)
        if duration_s is None:
            duration_s = tech_obj.transmit_time(size_bytes)
        start = max(self.sim.now, self._sender_busy.get(sender, 0.0))
        end = start + duration_s
        self._sender_busy[sender] = end
        tx = self.begin(sender, receiver, size_bytes, kind=kind,
                        tech=tech_obj, started_at=start, ends_at=end)
        return self.resolve(tx)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _draw_rssi(self, sender: str, receiver: str,
                   tech: Technology) -> float:
        profile = self.profile(tech)
        gap = distance(self.world.position(sender),
                       self.world.position(receiver))
        rssi = profile.path_loss.rssi_dbm(gap)
        sigma = self.shadowing_sigma_db
        if sigma > 0:
            rssi += self._stream(sender, receiver).gauss(0.0, sigma)
        return rssi

    def _stream(self, sender: str, receiver: str) -> "RandomStream":
        key = (sender, receiver)
        stream = self._streams.get(key)
        if stream is None:
            stream = self.sim.rng(f"phy/shadowing/{sender}->{receiver}")
            self._streams[key] = stream
        return stream

    def _threshold_dbm(self, tx: PhyTransmission) -> float:
        """Effective decode threshold at this resolution instant.

        The clean-air sensitivity, raised by ``jammer_noise_db`` while
        either endpoint sits inside a jammer disk (the noise-floor
        coupling that replaces the fault plane's binary jammer gate).
        """
        profile = self.profile(tx.tech_name)
        threshold = profile.sensitivity_dbm
        faults = getattr(self.world, "faults", None)
        if faults is not None and (faults.jammed(tx.sender)
                                   or faults.jammed(tx.receiver)):
            threshold += self.jammer_noise_db
        return threshold

    def _register(self, tx: PhyTransmission, now: float) -> None:
        """Track ``tx`` per receiver and cross-link genuine overlaps.

        Entries whose window ended by ``now`` are pruned first — safe
        because every later registration starts at or after its own
        call instant, so nothing registered in the future can overlap
        an already-ended window.  Overlap is strict interval
        intersection (touching endpoints do not collide).
        """
        in_flight = self._in_flight.setdefault(tx.receiver, [])
        if in_flight:
            alive = [t for t in in_flight if t.ends_at > now]
            if len(alive) != len(in_flight):
                in_flight[:] = alive
            for other in in_flight:
                if (other.ends_at > tx.started_at
                        and tx.ends_at > other.started_at):
                    other.contenders.append(tx)
                    tx.contenders.append(other)
        in_flight.append(tx)


def install_scenario_phy(scenario: "Scenario", *,
                         shadowing_sigma_db: float = 0.0,
                         phy_collisions: int = 0,
                         capture_margin_db: float =
                         DEFAULT_CAPTURE_MARGIN_DB,
                         jammer_noise_db: float =
                         DEFAULT_JAMMER_NOISE_DB) -> PhyPlane | None:
    """Install a PHY plane on a freshly built scenario, knob-driven.

    The scenario-factory entry point, mirroring
    :func:`repro.faults.install_scenario_faults`: with
    ``shadowing_sigma_db == 0`` and ``phy_collisions == 0`` it installs
    **nothing at all** (``world.phy`` stays ``None``), so the all-zero
    configuration runs the literal pre-PHY code path — the byte-identity
    the differential tests and ``benchmarks/bench_phy.py`` gate on.

    ``phy_collisions`` is an int switch (0/1) because the experiment
    registry's parameter schema is numeric; any positive value enables
    the collision/capture model.
    """
    if shadowing_sigma_db < 0:
        raise ValueError(
            f"negative shadowing sigma: {shadowing_sigma_db}")
    if phy_collisions < 0:
        raise ValueError(f"negative phy_collisions: {phy_collisions}")
    if shadowing_sigma_db <= 0 and phy_collisions <= 0:
        return None
    return PhyPlane(scenario.world,
                    shadowing_sigma_db=shadowing_sigma_db,
                    collisions=bool(phy_collisions),
                    capture_margin_db=capture_margin_db,
                    jammer_noise_db=jammer_noise_db)
