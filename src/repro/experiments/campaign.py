"""Resumable, memoized campaign execution over dispatch backends.

:func:`run_campaign` is the durable superset of
:func:`~repro.experiments.runner.run_spec`: same spec, same grid, same
byte-identical ``runs.jsonl`` + ``summary.csv`` — plus a write-ahead
journal that makes any interrupted sweep resumable at cell granularity,
and a content-addressed cache (:mod:`~repro.experiments.cache`) so a
re-run — or a *grown* re-run — computes only cells never finished
before.

Execution protocol, per cell (key = :func:`~repro.experiments.cache.
point_key`):

1. **journal hit** — a committed entry for the key already sits in this
   output directory's ``runs.journal.jsonl``: adopt it, execute
   nothing.
2. **cache hit** — the cross-campaign cache holds the key: adopt the
   entry *and* commit it to the journal (the journal converges to a
   complete transcript even when every cell came from cache).
3. **execute** — dispatch the cell through the backend; on completion
   append a ``commit`` line to the journal (flushed before the next
   cell is consumed) and store the entry in the cache; on workload
   failure append a ``failure`` line (key + exception repr) and keep
   going — one poisoned cell costs one cell, never the sweep.

Only after every cell resolves are ``runs.jsonl`` and ``summary.csv``
written, in grid order, from the accumulated records.  Because records
are pure functions of their cells and the grid order is deterministic,
the final bytes are identical whether the campaign ran once, was
interrupted and resumed five times, or was served entirely from cache —
the worker-count byte-identity contract extended across interruptions
and cache states (``tests/test_campaign.py`` proves it differentially).

The journal is append-only JSONL: a header line binding it to
``(spec, version, workload, code fingerprint, master seed, grid
size)``, then one line per commit/failure.  A header mismatch (grown
grid, edited workload) retires the journal wholesale — the *cache*
still deduplicates unchanged cells, so nothing is recomputed that
doesn't have to be.  A torn final line (SIGKILL mid-write) is skipped
on load; at most one cell's work is lost.  Failure lines are never
adopted on resume — failed cells retry.

Wall-clock discipline: journal lines, records and ``campaign.json``
stats hold no timestamps; wall-clock rides the in-memory
:attr:`~repro.experiments.runner.RunResult.timings` side channel only,
so every persisted byte is deterministic.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import pathlib
import typing

from repro.experiments import report as report_mod
from repro.experiments.cache import CampaignCache, point_key
from repro.experiments.dispatch import DispatchBackend, make_backend
from repro.experiments.runner import (
    RunResult,
    execute_point_outcome,
    jsonl_line,
    write_jsonl,
)
from repro.experiments.spec import ExperimentSpec, RunPoint
from repro.experiments.workloads import workload_fingerprint

JOURNAL_SCHEMA = 1

#: Events passed to the campaign ``progress`` callback.
ProgressFn = typing.Callable[[dict], None]


@dataclasses.dataclass
class CampaignStats:
    """Deterministic cell accounting (no wall-clock anywhere)."""

    total: int = 0          #: cells in the expanded grid
    executed: int = 0       #: workload calls dispatched this invocation
    cache_hits: int = 0     #: cells adopted from the cross-campaign cache
    journal_hits: int = 0   #: cells adopted from this out-dir's journal
    #: one ``{"key", "index", "label", "error"}`` per failed cell
    failures: list[dict] = dataclasses.field(default_factory=list)

    def as_dict(self) -> dict[str, int]:
        """JSON-safe counts (for ``campaign.json`` and BENCH envelopes)."""
        return {
            "total": self.total,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "journal_hits": self.journal_hits,
            "failures": len(self.failures),
        }


@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """A finished (or failed-but-complete) campaign."""

    results: list[RunResult]        #: successful cells, grid order
    stats: CampaignStats
    jsonl_path: pathlib.Path
    csv_path: pathlib.Path
    journal_path: pathlib.Path

    @property
    def records(self) -> list[dict]:
        return [result.record for result in self.results]


class CampaignError(RuntimeError):
    """Raised after a campaign finishes with failed cells.

    Loud by contract, lossless by construction: every other cell's
    result is already journaled, cached and written to ``runs.jsonl``
    before this raises — re-running the campaign retries only the
    failed cells.  ``result`` carries the partial
    :class:`CampaignResult`.
    """

    def __init__(self, result: CampaignResult):
        self.result = result
        failures = result.stats.failures
        preview = "; ".join(
            f"{f['label']}: {f['error']}" for f in failures[:3])
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        super().__init__(
            f"{len(failures)} of {result.stats.total} cells failed: "
            f"{preview}{more}")


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------
class Journal:
    """Append-only per-output-directory commit log.

    ``open(header)`` loads committed entries if the existing file's
    header matches, else truncates and starts fresh; ``commit``/
    ``failure`` append one flushed line each.  Use as a context manager
    so the handle closes even when the backend dies mid-sweep.
    """

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        self._sink: typing.IO[str] | None = None

    # -- read side ----------------------------------------------------
    @staticmethod
    def _parse_lines(path: pathlib.Path) -> list[dict]:
        """Every parseable JSON object line; a torn tail is skipped."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return []
        lines = []
        for raw in text.splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                entry = json.loads(raw)
            except json.JSONDecodeError:
                continue    # torn by a crash mid-write; drop it
            if isinstance(entry, dict):
                lines.append(entry)
        return lines

    def open(self, header: dict) -> dict[str, dict]:
        """Open for appending; return committed entries keyed by cell.

        The existing journal is adopted only when its header line
        matches ``header`` exactly (same spec identity, workload
        fingerprint, master seed and grid size) — anything else is a
        different campaign and the file restarts.  Later lines for the
        same key win (a cell re-committed after a retried failure).
        """
        committed: dict[str, dict] = {}
        adopt = False
        lines = self._parse_lines(self.path)
        if lines and lines[0].get("type") == "campaign":
            head = {k: v for k, v in lines[0].items() if k != "type"}
            adopt = head == header
        if adopt:
            for line in lines[1:]:
                if line.get("type") == "commit" and "key" in line:
                    committed[line["key"]] = {
                        "record": line.get("record", {}),
                        "telemetry": line.get("telemetry", []),
                    }
            self._sink = open(self.path, "a", encoding="utf-8",
                              newline="\n")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = open(self.path, "w", encoding="utf-8",
                              newline="\n")
            self._append({"type": "campaign", **header})
        return committed

    # -- write side ---------------------------------------------------
    def _append(self, line: dict) -> None:
        assert self._sink is not None, "journal not opened"
        self._sink.write(jsonl_line(line) + "\n")
        self._sink.flush()    # must hit the OS before the next cell runs

    def commit(self, key: str, index: int, entry: dict) -> None:
        """Durably record one finished cell."""
        line = {"type": "commit", "key": key, "index": index,
                "record": entry["record"]}
        if entry.get("telemetry"):
            line["telemetry"] = entry["telemetry"]
        self._append(line)

    def failure(self, key: str, index: int, label: str,
                error: str) -> None:
        """Durably record one failed cell (retried on resume)."""
        self._append({"type": "failure", "key": key, "index": index,
                      "label": label, "error": error})

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# the campaign loop
# ----------------------------------------------------------------------
def _adopt(entry: dict, point: RunPoint) -> RunResult:
    """Rebuild a RunResult from a stored entry, re-stamped to ``point``.

    Stored entries are position-independent; the grid index is the one
    positional field, so a cell adopted into a *grown* grid (where its
    index moved) gets ``record["run"]`` and the telemetry rows' ``run``
    tags re-stamped here.  Timings are empty — nothing was measured.
    """
    record = dict(entry["record"])
    record["run"] = point.index
    rows = [{**row, "run": point.index}
            for row in entry.get("telemetry", [])]
    return RunResult(record=record, timings={}, telemetry=rows)


def campaign_header(spec: ExperimentSpec, fingerprint: str,
                    total: int) -> dict:
    """The journal-binding identity of one campaign."""
    return {
        "schema": JOURNAL_SCHEMA,
        "spec": spec.name,
        "version": spec.version,
        "workload": spec.workload,
        "fingerprint": fingerprint,
        "master_seed": spec.master_seed,
        "total": total,
    }


def run_campaign(spec: ExperimentSpec,
                 out_dir: str | pathlib.Path, *,
                 workers: int = 1,
                 backend: DispatchBackend | None = None,
                 cache: CampaignCache | None = None,
                 cache_dir: str | pathlib.Path | None = None,
                 telemetry: bool = False,
                 progress: ProgressFn | None = None) -> CampaignResult:
    """Execute ``spec`` durably; see the module docstring for protocol.

    ``cache_dir`` builds a :class:`CampaignCache` unless ``cache`` is
    passed directly; both ``None`` disables memoization (the journal
    alone still makes the run resumable).  ``progress`` receives one
    dict per resolved cell — ``{"done", "total", "source", "record"}``
    with source ``"journal" | "cache" | "run" | "failure"`` — strictly
    presentation-side, like the runner's.

    Raises :class:`CampaignError` (after writing all output) if any
    cell failed; propagates ``BaseException`` from the backend
    (interruption) with the journal intact for resume.
    """
    out_dir = pathlib.Path(out_dir)
    if backend is None:
        backend = make_backend(workers=workers)
    if cache is None and cache_dir is not None:
        cache = CampaignCache(cache_dir)

    points = spec.expand()
    fingerprint = workload_fingerprint(spec.workload)
    extras = {"telemetry": True} if telemetry else None
    keys = [point_key(point, fingerprint, version=spec.version,
                      extras=extras) for point in points]

    stats = CampaignStats(total=len(points))
    outcomes: dict[int, RunResult] = {}
    done = 0

    def emit(source: str, record: dict | None) -> None:
        if progress is not None:
            progress({"done": done, "total": stats.total,
                      "source": source, "record": record})

    with Journal(out_dir / "runs.journal.jsonl") as journal:
        committed = journal.open(
            campaign_header(spec, fingerprint, len(points)))

        pending: list[tuple[RunPoint, str]] = []
        for point, key in zip(points, keys):
            entry = committed.get(key)
            if entry is not None:
                outcomes[point.index] = _adopt(entry, point)
                stats.journal_hits += 1
                done += 1
                emit("journal", outcomes[point.index].record)
                continue
            entry = cache.get(key) if cache is not None else None
            if entry is not None:
                outcomes[point.index] = _adopt(entry, point)
                stats.cache_hits += 1
                journal.commit(key, point.index, entry)
                done += 1
                emit("cache", outcomes[point.index].record)
                continue
            pending.append((point, key))

        execute = functools.partial(execute_point_outcome,
                                    telemetry=telemetry)
        payloads = [point.as_dict() for point, _ in pending]
        for (point, key), outcome in zip(
                pending, backend.dispatch(execute, payloads)):
            stats.executed += 1
            done += 1
            if outcome["ok"]:
                entry = {"record": outcome["record"],
                         "telemetry": outcome["telemetry"]}
                journal.commit(key, point.index, entry)
                if cache is not None:
                    cache.put(key, entry)
                outcomes[point.index] = RunResult(
                    record=outcome["record"],
                    timings=outcome["timings"],
                    telemetry=outcome["telemetry"])
                emit("run", outcome["record"])
            else:
                journal.failure(key, point.index, point.label(),
                                outcome["error"])
                stats.failures.append({
                    "key": key, "index": point.index,
                    "label": point.label(), "error": outcome["error"]})
                emit("failure", None)

    # Every cell resolved (some possibly as failures): write the final
    # artifacts in grid order.  Deterministic bytes by construction.
    results = [outcomes[index] for index in sorted(outcomes)]
    records = [result.record for result in results]
    jsonl_path = write_jsonl(records, out_dir / "runs.jsonl")
    rows = report_mod.aggregate(records)
    csv_path = report_mod.write_csv(rows, out_dir / "summary.csv")
    stats_path = out_dir / "campaign.json"
    stats_path.write_text(
        json.dumps(stats.as_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8")

    result = CampaignResult(
        results=results, stats=stats, jsonl_path=jsonl_path,
        csv_path=csv_path,
        journal_path=out_dir / "runs.journal.jsonl")
    if stats.failures:
        raise CampaignError(result)
    return result
