"""Unit tests for device identity and the §3.4.3 mobility classes."""

import pytest

from repro.core.device import (
    DeviceIdentity,
    MobilityClass,
    address_for,
    mobility_addition,
)


def test_mobility_class_paper_values():
    """§3.4.3: {Static, hybrid, dynamic} = {0, 1, 3}."""
    assert MobilityClass.STATIC == 0
    assert MobilityClass.HYBRID == 1
    assert MobilityClass.DYNAMIC == 3


def test_mobility_class_parse_accepts_names_any_case():
    assert MobilityClass.parse("static") is MobilityClass.STATIC
    assert MobilityClass.parse("Hybrid") is MobilityClass.HYBRID
    assert MobilityClass.parse("DYNAMIC") is MobilityClass.DYNAMIC


def test_mobility_class_parse_accepts_values_and_members():
    assert MobilityClass.parse(0) is MobilityClass.STATIC
    assert MobilityClass.parse(MobilityClass.DYNAMIC) is (
        MobilityClass.DYNAMIC)


def test_mobility_class_parse_rejects_unknown():
    with pytest.raises(ValueError):
        MobilityClass.parse("nomadic")
    with pytest.raises(ValueError):
        MobilityClass.parse(2)


def test_mobility_addition_full_paper_table():
    """The §3.4.3 table: all nine combinations and their sums."""
    S, H, D = MobilityClass.STATIC, MobilityClass.HYBRID, (
        MobilityClass.DYNAMIC)
    expected = {
        (S, S): 0,
        (S, H): 1,
        (H, S): 1,
        (H, H): 2,
        (S, D): 3,
        (D, S): 3,
        (H, D): 4,
        (D, H): 4,
        (D, D): 6,
    }
    for (first, second), total in expected.items():
        assert mobility_addition(first, second) == total


def test_mobility_addition_is_symmetric():
    for first in MobilityClass:
        for second in MobilityClass:
            assert mobility_addition(first, second) == (
                mobility_addition(second, first))


def test_address_for_is_deterministic_and_mac_shaped():
    address = address_for("laptop-d")
    assert address == address_for("laptop-d")
    parts = address.split(":")
    assert len(parts) == 6
    assert all(len(p) == 2 for p in parts)


def test_address_for_distinct_names_distinct_addresses():
    assert address_for("alpha") != address_for("beta")


def test_identity_create_derives_address():
    identity = DeviceIdentity.create("phone-a", "dynamic", checksum=42)
    assert identity.address == address_for("phone-a")
    assert identity.name == "phone-a"
    assert identity.mobility is MobilityClass.DYNAMIC
    assert identity.checksum == 42


def test_identity_default_mobility_is_dynamic():
    assert DeviceIdentity.create("x").mobility is MobilityClass.DYNAMIC


def test_identity_wire_size_scales_with_name():
    short = DeviceIdentity.create("a").wire_size()
    long = DeviceIdentity.create("a-much-longer-device-name").wire_size()
    assert long > short
