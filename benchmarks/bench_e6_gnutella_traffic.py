"""E6 — §3.2: Gnutella flooding traffic vs PeerHood neighbour exchange.

Paper artifact: "One of the biggest performance problems is the huge
network traffic generated due to the high number of query messages ...
the same inquiry process of Gnutella won't work appropriately in
PeerHood", whereas PeerHood's inquiry "is not repeated like Gnutella
network, but only sent to the direct neighbours".

Method: on the same random-disc worlds, count (a) Gnutella query
messages per search as searches accumulate, against (b) the PeerHood
stack's total discovery messages over the same wall-clock — after
convergence every PeerHood search is a free local table lookup.
"""

from repro.baselines.gnutella import GnutellaNetwork
from repro.radio.technologies import BLUETOOTH
from repro.scenarios import random_disc
from paperbench import print_table

NODE_COUNT = 12
AREA = 26.0
SETTLE_S = 300.0
SEARCH_COUNTS = (1, 5, 20, 50)


def run_comparison(seed=3):
    # PeerHood: run the real stack and meter its discovery traffic.
    scenario = random_disc(NODE_COUNT, area=AREA, seed=seed,
                           mobility_class="static")
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    peerhood_messages = scenario.meter.messages(category="discovery")
    peerhood_bytes = scenario.meter.bytes(category="discovery")
    # After convergence a "search" is a DeviceStorage lookup: 0 messages.
    # Gnutella: same geometry, flood per search.
    overlay = GnutellaNetwork(scenario.world, BLUETOOTH)
    for name in scenario.nodes:
        overlay.add_node(name)
    overlay.nodes[f"n{NODE_COUNT - 1}"].add_resource("file.dat")
    search = overlay.search("n0", "file.dat")
    per_search = search.query_messages
    rows = {}
    for searches in SEARCH_COUNTS:
        rows[searches] = {
            "gnutella": per_search * searches,
            "peerhood": peerhood_messages,  # flat: periodic exchange only
        }
    return {
        "per_search": per_search,
        "nodes_reached": search.nodes_reached,
        "peerhood_total": peerhood_messages,
        "peerhood_bytes": peerhood_bytes,
        "rows": rows,
    }


def test_e6_gnutella_vs_peerhood_traffic(benchmark):
    result = benchmark.pedantic(run_comparison, rounds=1, iterations=1,
                                warmup_rounds=0)
    rows = [[searches,
             values["gnutella"],
             values["peerhood"],
             f"{values['gnutella'] / max(1, values['peerhood']):.2f}x"]
            for searches, values in result["rows"].items()]
    print_table(
        "E6: §3.2 cumulative messages vs number of searches "
        f"({NODE_COUNT} nodes; PeerHood column is its total periodic "
        f"discovery traffic over {SETTLE_S:.0f} s — searches are free)",
        ["searches", "gnutella msgs", "peerhood msgs", "ratio"], rows)
    # Shape: flooding cost grows linearly with searches; PeerHood's cost
    # is flat, so Gnutella overtakes it within a bounded search count.
    gnutella_50 = result["rows"][50]["gnutella"]
    assert gnutella_50 > result["peerhood_total"], (
        "by 50 searches the flooding traffic must exceed PeerHood's "
        "whole periodic exchange budget")
    assert result["per_search"] >= result["nodes_reached"], (
        "flooding must visit (and re-visit) its component")
    benchmark.extra_info["gnutella_per_search"] = result["per_search"]
    benchmark.extra_info["peerhood_total"] = result["peerhood_total"]


def run_density_sweep(counts=(6, 12, 18), seed=4):
    per_node = {}
    for count in counts:
        scenario = random_disc(count, area=AREA, seed=seed,
                               mobility_class="static")
        overlay = GnutellaNetwork(scenario.world, BLUETOOTH)
        for name in scenario.nodes:
            overlay.add_node(name)
        result = overlay.search("n0", "nothing")
        per_node[count] = result.query_messages / count
    return per_node


def test_e6_flooding_cost_grows_with_density(benchmark):
    per_node = benchmark.pedantic(run_density_sweep, rounds=1,
                                  iterations=1, warmup_rounds=0)
    rows = [[count, f"{cost:.1f}"] for count, cost in per_node.items()]
    print_table("E6b: Gnutella query messages per node vs density",
                ["nodes", "msgs/node"], rows)
    costs = [per_node[c] for c in sorted(per_node)]
    assert costs[-1] > costs[0], (
        "per-node flooding cost must grow with density (duplicate "
        "deliveries), the paper's §3.2 argument")
    benchmark.extra_info["per_node_cost"] = {
        str(k): round(v, 2) for k, v in per_node.items()}
