"""Unit tests for the inquiry-overlap discoverability model (§3.4.2)."""

import pytest

from repro.mobility import StaticPosition
from repro.radio import BLUETOOTH, WLAN, World
from repro.sim import Simulator


def make_world():
    sim = Simulator(seed=1)
    world = World(sim)
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH, WLAN])
    world.add_node("b", StaticPosition(5, 0), [BLUETOOTH, WLAN])
    return sim, world


def advance(sim, dt):
    sim.timeout(dt)
    sim.run()


def test_idle_node_is_discoverable_for_whole_window():
    sim, world = make_world()
    advance(sim, 50.0)
    gap = world.max_discoverable_gap("b", BLUETOOTH, 10.0, 30.0)
    assert gap == pytest.approx(20.0)
    assert world.heard_during_scan("b", BLUETOOTH, 10.0, 30.0)


def test_wlan_always_discoverable_even_while_inquiring():
    sim, world = make_world()
    world.mark_inquiring("b", WLAN, True)
    advance(sim, 30.0)
    gap = world.max_discoverable_gap("b", WLAN, 0.0, 30.0)
    assert gap == pytest.approx(30.0)


def test_full_scan_overlap_hides_bluetooth_node():
    sim, world = make_world()
    world.mark_inquiring("b", BLUETOOTH, True)
    advance(sim, 40.0)
    # b was inquiring for the whole window: zero discoverable gap.
    gap = world.max_discoverable_gap("b", BLUETOOTH, 5.0, 35.0)
    assert gap == 0.0
    assert not world.heard_during_scan("b", BLUETOOTH, 5.0, 35.0)


def test_partial_overlap_leaves_a_gap():
    sim, world = make_world()
    advance(sim, 10.0)
    world.mark_inquiring("b", BLUETOOTH, True)   # t=10
    advance(sim, 8.0)
    world.mark_inquiring("b", BLUETOOTH, False)  # t=18
    advance(sim, 20.0)
    # Window [5, 25]: idle gaps are [5,10] (5 s) and [18,25] (7 s).
    gap = world.max_discoverable_gap("b", BLUETOOTH, 5.0, 25.0)
    assert gap == pytest.approx(7.0)
    assert world.heard_during_scan("b", BLUETOOTH, 5.0, 25.0)


def test_short_gap_below_response_window_misses():
    sim, world = make_world()
    advance(sim, 10.0)
    world.mark_inquiring("b", BLUETOOTH, True)
    advance(sim, 0.5)
    world.mark_inquiring("b", BLUETOOTH, False)  # 0.5 s breather
    advance(sim, 0.4)
    world.mark_inquiring("b", BLUETOOTH, True)
    advance(sim, 19.1)
    world.mark_inquiring("b", BLUETOOTH, False)
    # Window [10, 30]: largest idle gap is the 0.4 s breather < 1.0 s.
    gap = world.max_discoverable_gap("b", BLUETOOTH, 10.0, 30.0)
    assert gap == pytest.approx(0.4)
    assert not world.heard_during_scan("b", BLUETOOTH, 10.0, 30.0)


def test_gap_straddling_window_edges_is_clipped():
    sim, world = make_world()
    advance(sim, 100.0)
    world.mark_inquiring("b", BLUETOOTH, True)   # t=100 onwards
    advance(sim, 50.0)
    # Window [90, 110]: idle only within [90, 100].
    gap = world.max_discoverable_gap("b", BLUETOOTH, 90.0, 110.0)
    assert gap == pytest.approx(10.0)


def test_redundant_toggles_are_ignored():
    sim, world = make_world()
    world.mark_inquiring("b", BLUETOOTH, True)
    world.mark_inquiring("b", BLUETOOTH, True)  # no-op
    advance(sim, 5.0)
    world.mark_inquiring("b", BLUETOOTH, False)
    world.mark_inquiring("b", BLUETOOTH, False)  # no-op
    history = world._inquiry_history[("b", BLUETOOTH.name)]
    assert len(history) == 2


def test_invalid_window_rejected():
    sim, world = make_world()
    with pytest.raises(ValueError):
        world.max_discoverable_gap("b", BLUETOOTH, 10.0, 5.0)


def test_history_is_pruned():
    sim, world = make_world()
    for _ in range(60):
        world.mark_inquiring("b", BLUETOOTH, True)
        advance(sim, 10.0)
        world.mark_inquiring("b", BLUETOOTH, False)
        advance(sim, 10.0)
    history = world._inquiry_history[("b", BLUETOOTH.name)]
    assert len(history) <= 32  # pruned well below 120 raw toggles
    # Recent history still answers queries correctly.
    now = sim.now
    gap = world.max_discoverable_gap("b", BLUETOOTH, now - 10.0, now)
    assert gap == pytest.approx(10.0)
