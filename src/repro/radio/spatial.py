"""Uniform spatial-grid index over 2-D node positions.

The seed implementation answered every neighbor query by scanning all
registered nodes — O(N) per query and O(N²) per discovery round, which
caps simulations at a few dozen devices.  This module provides the data
structure behind the :class:`~repro.radio.world.World`'s O(neighbors)
queries: a uniform grid of square cells, one grid per technology, with
the cell side equal to that technology's coverage radius.

With ``cell_size == range_m`` every node within range of a query point
lies in the 3 × 3 block of cells around the point's own cell, so a
neighbor query inspects only the nodes in (at most) nine cells instead
of the whole world.  Under uniform density that is O(density · range²)
candidates per query — independent of the total node count N.

Design notes / invariants (see ``docs/ARCHITECTURE.md``):

* The grid is pure geometry: it knows node ids and points, never the
  simulator clock or mobility models.  The world owns *when* the stored
  points are valid (it refreshes mobile nodes lazily whenever the
  virtual clock has advanced since the last query).
* Every indexed node id appears in exactly one cell, and
  ``_where[node_id]`` names that cell (the insert/move/remove methods
  keep this bijection).
* ``candidates`` over-approximates: it returns every node whose cell
  intersects the query disc's bounding box.  Callers must still apply
  the exact distance test; the grid never *misses* a node within
  ``radius`` of the query point.
* All coordinates are metres; cells extend ``[i·s, (i+1)·s)`` per axis
  so boundary points land in exactly one cell (floor semantics work for
  negative coordinates too).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.metrics.counters import BusCounters
from repro.mobility.base import Point

#: A cell address: integer (column, row) of a ``cell_size`` square.
Cell = typing.Tuple[int, int]


@dataclasses.dataclass
class WorldStats:
    """Counters for the world's geometry queries (benchmark instrumentation).

    Attributes
    ----------
    distance_checks:
        Exact point-to-point distance computations performed by neighbor
        queries (grid-backed, brute-force and batched paths).  This is
        the figure the scale benchmark compares: the grid's win is fewer
        distance checks per discovery round.  The batch engine
        (:mod:`repro.radio.vectorized`) counts each evaluated
        *unordered* candidate pair once, where N per-node scalar queries
        evaluate each pair once per direction — a whole-population batch
        sweep therefore reports about half the scalar count for
        identical work.
    neighbor_queries:
        Number of :meth:`~repro.radio.world.World.neighbors` calls; a
        whole-population batch sweep counts one per member node, so the
        figure stays comparable across paths.
    grid_refreshes:
        Times a grid re-synced its mobile nodes because the virtual
        clock had advanced since the previous query.
    bus:
        Connectivity-event-bus activity (scheduled / fired / cancelled /
        rescheduled) — see :class:`~repro.metrics.counters.BusCounters`.
    """

    distance_checks: int = 0
    neighbor_queries: int = 0
    grid_refreshes: int = 0
    bus: BusCounters = dataclasses.field(default_factory=BusCounters)

    def reset(self) -> None:
        """Zero all counters (call between benchmark rounds)."""
        self.distance_checks = 0
        self.neighbor_queries = 0
        self.grid_refreshes = 0
        self.bus.reset()


class SpatialGrid:
    """A uniform grid of square cells indexing node ids by position.

    Parameters
    ----------
    cell_size:
        Side of one square cell in metres.  Choose the coverage radius of
        the technology the grid serves so that a range query only ever
        touches the 3 × 3 cells around the query point.
    """

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError(f"cell size must be positive: {cell_size}")
        self.cell_size = float(cell_size)
        # cell -> ordered set of node ids (a dict keyed by id, values
        # unused) — dicts keep insertion order, so iteration is
        # reproducible across runs regardless of string-hash seeding.
        self._cells: dict[Cell, dict[str, None]] = {}
        self._where: dict[str, Cell] = {}
        self._points: dict[str, Point] = {}
        self._mobile: dict[str, None] = {}
        #: Number of times a moved node actually changed cell.
        self.rebuckets = 0

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def cell_of(self, point: Point) -> Cell:
        """The cell containing ``point`` (floor semantics, so negative
        coordinates bucket correctly).  O(1)."""
        return (int(point[0] // self.cell_size),
                int(point[1] // self.cell_size))

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._where

    def point(self, node_id: str) -> Point:
        """The stored position of ``node_id`` in metres.  O(1)."""
        try:
            return self._points[node_id]
        except KeyError:
            raise KeyError(f"node not indexed: {node_id!r}") from None

    def mobile_ids(self) -> tuple[str, ...]:
        """Ids inserted with ``mobile=True`` (the ones a refresh must
        re-evaluate), in insertion order.  O(M)."""
        return tuple(self._mobile)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert(self, node_id: str, point: Point, mobile: bool = True) -> None:
        """Index ``node_id`` at ``point`` (metres).  O(1).

        ``mobile=False`` exempts the node from refresh sweeps (static
        nodes never change cell).  Raises ``ValueError`` on duplicates.
        """
        if node_id in self._where:
            raise ValueError(f"node already indexed: {node_id!r}")
        cell = self.cell_of(point)
        self._cells.setdefault(cell, {})[node_id] = None
        self._where[node_id] = cell
        self._points[node_id] = point
        if mobile:
            self._mobile[node_id] = None

    def move(self, node_id: str, point: Point) -> None:
        """Update ``node_id``'s position, re-bucketing only on a cell
        change.  O(1)."""
        try:
            old_cell = self._where[node_id]
        except KeyError:
            raise KeyError(f"node not indexed: {node_id!r}") from None
        self._points[node_id] = point
        new_cell = self.cell_of(point)
        if new_cell == old_cell:
            return
        self.rebuckets += 1
        occupants = self._cells[old_cell]
        del occupants[node_id]
        if not occupants:
            del self._cells[old_cell]
        self._cells.setdefault(new_cell, {})[node_id] = None
        self._where[node_id] = new_cell

    def remove(self, node_id: str) -> None:
        """Evict ``node_id`` from the index.  O(1)."""
        try:
            cell = self._where.pop(node_id)
        except KeyError:
            raise KeyError(f"node not indexed: {node_id!r}") from None
        del self._points[node_id]
        self._mobile.pop(node_id, None)
        occupants = self._cells[cell]
        del occupants[node_id]
        if not occupants:
            del self._cells[cell]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def candidates(self, point: Point, radius: float) -> list[str]:
        """Every indexed id whose cell intersects the ``radius``-disc's
        bounding box around ``point`` — a superset of the ids within
        ``radius``.  O(cells · occupancy); with ``radius <= cell_size``
        at most 3 × 3 cells are visited.

        The returned order is the grid's internal (insertion) order;
        callers needing determinism across different construction orders
        should sort.
        """
        if radius < 0:
            raise ValueError(f"negative radius: {radius}")
        min_cx = int((point[0] - radius) // self.cell_size)
        max_cx = int((point[0] + radius) // self.cell_size)
        min_cy = int((point[1] - radius) // self.cell_size)
        max_cy = int((point[1] + radius) // self.cell_size)
        found: list[str] = []
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                occupants = self._cells.get((cx, cy))
                if occupants:
                    found.extend(occupants)
        return found

    def __repr__(self) -> str:
        return (f"<SpatialGrid cell={self.cell_size} m, "
                f"{len(self._where)} nodes in {len(self._cells)} cells>")
