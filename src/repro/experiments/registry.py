"""Scenario registry: string names → scenario factories with typed schemas.

The experiment layer refers to scenarios *by name* so that an
:class:`~repro.experiments.spec.ExperimentSpec` is pure data — picklable
across worker processes, serialisable into result records, and stable to
diff between runs.  Every public factory in :mod:`repro.scenarios` (the
paper-figure topologies and the large-N family) is registered here with a
typed parameter schema, so a spec can be validated *before* any run
starts and ``python -m repro.experiments list`` can document every knob.

Every schema parameter has a default, so each scenario is constructible
with no arguments beyond a seed — the registry test relies on this.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.scenarios import (
    Scenario,
    city_day,
    commuter_corridor,
    crowded_festival,
    dense_plaza,
    drive_by_kiosk,
    fig_3_3_coverage_exclusion,
    fig_3_6_dynamic_discovery,
    fig_3_9_quality_equity,
    fig_4_5_bridge_test,
    fig_5_8_handover,
    flash_crowd,
    flash_crowd_broadcast,
    hostile_corridor,
    island_hopping_ferry,
    line_topology,
    lossy_festival,
    random_disc,
    replay_arena,
    rural_bus_dtn,
    sparse_highway,
    tunnel_topology,
)


@dataclasses.dataclass(frozen=True)
class Param:
    """One typed, defaulted parameter of a scenario factory.

    For ``tuple`` parameters, ``element`` (when set) types every member
    — so a malformed sequence fails at spec-validation time, not
    minutes into a sweep inside a factory.
    """

    name: str
    kind: type
    default: object
    doc: str = ""
    element: type | None = None

    def check(self, value: object) -> None:
        """Raise ``TypeError`` unless ``value`` fits this parameter.

        ``int`` is accepted where ``float`` is declared (the usual
        numeric-tower lenience); lists are accepted where ``tuple`` is
        declared (JSON has no tuples, and specs round-trip via JSON).
        """
        if self.kind is float and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            return
        if self.kind is int and isinstance(value, int) \
                and not isinstance(value, bool):
            return
        if self.kind is tuple and isinstance(value, (list, tuple)):
            if self.element is not None:
                for member in value:
                    if not isinstance(member, self.element):
                        raise TypeError(
                            f"parameter {self.name!r} expects a tuple "
                            f"of {self.element.__name__}, got element "
                            f"{member!r} ({type(member).__name__})")
            return
        if self.kind is str and isinstance(value, str):
            return
        raise TypeError(
            f"parameter {self.name!r} expects {self.kind.__name__}, "
            f"got {value!r} ({type(value).__name__})")


@dataclasses.dataclass(frozen=True)
class ScenarioEntry:
    """A registered scenario factory plus its parameter schema."""

    name: str
    factory: typing.Callable[..., Scenario]
    params: tuple[Param, ...]
    summary: str

    def param(self, name: str) -> Param:
        """Schema entry for ``name``; ``KeyError`` if not a parameter."""
        for param in self.params:
            if param.name == name:
                return param
        raise KeyError(
            f"scenario {self.name!r} has no parameter {name!r} "
            f"(has: {[p.name for p in self.params] or 'none'})")

    def has_param(self, name: str) -> bool:
        return any(p.name == name for p in self.params)


_REGISTRY: dict[str, ScenarioEntry] = {}


def register_scenario(name: str, factory: typing.Callable[..., Scenario],
                      params: typing.Sequence[Param] = (),
                      summary: str = "") -> ScenarioEntry:
    """Register a factory under ``name``; re-registration is an error."""
    if name in _REGISTRY:
        raise ValueError(f"scenario {name!r} already registered")
    entry = ScenarioEntry(name, factory, tuple(params),
                          summary or (factory.__doc__ or "").split("\n")[0])
    _REGISTRY[name] = entry
    return entry


def scenario_names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def get_scenario(name: str) -> ScenarioEntry:
    """Look up a registered scenario; ``KeyError`` with the valid names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"registered: {scenario_names()}") from None


def build_scenario(name: str, seed: int,
                   params: typing.Mapping[str, object] | None = None
                   ) -> Scenario:
    """Validate ``params`` against the schema and invoke the factory.

    Unknown parameter names raise ``KeyError``; type mismatches raise
    ``TypeError`` — both *before* the factory runs, so a bad spec fails
    during expansion rather than minutes into a sweep.  List values are
    converted to tuples (JSON round-trip produces lists).  Schema
    defaults fill every unspecified parameter, so a run is fully
    described by (scenario name, params, seed) even if a factory's own
    defaults drift later.
    """
    entry = get_scenario(name)
    kwargs: dict[str, object] = {p.name: p.default for p in entry.params}
    for key, value in (params or {}).items():
        param = entry.param(key)
        param.check(value)
        if isinstance(value, list):
            value = tuple(value)
        kwargs[key] = value
    return entry.factory(seed=seed, **kwargs)


# ----------------------------------------------------------------------
# registrations: every public factory in repro.scenarios
# ----------------------------------------------------------------------
_TECHS = Param("technologies", tuple, ("bluetooth",),
               "radio mix carried by every node", element=str)


def _fault_params(crash_rate: float = 0.0, crash_downtime_s: float = 45.0,
                  radio_fault_rate: float = 0.0,
                  byzantine_rate: float = 0.0, jammer_count: int = 0,
                  fault_window_s: float = 480.0) -> tuple[Param, ...]:
    """The shared fault-injection schema (:mod:`repro.faults`).

    Appended to every DTN/bandwidth scenario registration with all-zero
    defaults (zero rates install nothing); ``hostile_corridor``
    registers the same knobs with its hostile defaults.
    """
    return (
        Param("crash_rate", float, crash_rate,
              "fraction of non-terminal nodes crash-rebooting once"),
        Param("crash_downtime_s", float, crash_downtime_s,
              "outage / radio-fault duration scale, seconds"),
        Param("radio_fault_rate", float, radio_fault_rate,
              "fraction of nodes going deaf or mute for an interval"),
        Param("byzantine_rate", float, byzantine_rate,
              "fraction of nodes advertising false summary vectors"),
        Param("jammer_count", int, jammer_count,
              "mobile jammers roaming the scenario area"),
        Param("fault_window_s", float, fault_window_s,
              "window over which fault onsets are sampled, seconds"),
    )


def _phy_params(shadowing_sigma_db: float = 0.0, phy_collisions: int = 0,
                capture_margin_db: float = 6.0) -> tuple[Param, ...]:
    """The shared lossy-PHY schema (:mod:`repro.radio.phy`).

    Appended to every DTN/bandwidth scenario registration with all-zero
    defaults (zero knobs install nothing — the no-PHY byte-identity
    contract); ``lossy_festival`` registers the same knobs with its
    lossy defaults.  Because these are schema parameters they flow into
    every run's canonical params and therefore into the campaign
    cache_key.
    """
    return (
        Param("shadowing_sigma_db", float, shadowing_sigma_db,
              "log-normal shadowing sigma, dB (0 = no fading loss)"),
        Param("phy_collisions", int, phy_collisions,
              "1 = collision/capture under overlapping transmissions"),
        Param("capture_margin_db", float, capture_margin_db,
              "dB advantage needed to capture over overlap rivals"),
    )

register_scenario(
    "line_topology", line_topology,
    params=(
        Param("count", int, 5, "nodes on the line"),
        Param("spacing", float, 8.0, "metres between neighbours"),
        _TECHS,
        Param("mobility_class", str, "static", "advertised mobility class"),
    ),
    summary="maximal-diameter chain: each node reaches only its neighbours")

register_scenario(
    "random_disc", random_disc,
    params=(
        Param("count", int, 10, "nodes in the square"),
        Param("area", float, 40.0, "side of the square, metres"),
        _TECHS,
        Param("mobility_class", str, "dynamic", "advertised mobility class"),
    ),
    summary="uniform random placement in an area × area square")

register_scenario(
    "fig_3_3_coverage_exclusion", fig_3_3_coverage_exclusion,
    summary="Fig. 3.3: B/C/D cannot see F/G without dynamic discovery")

register_scenario(
    "fig_3_6_dynamic_discovery", fig_3_6_dynamic_discovery,
    summary="Fig. 3.6: the five-device discovery-table example")

register_scenario(
    "fig_3_9_quality_equity", fig_3_9_quality_equity,
    summary="Fig. 3.9: the equal-sum quality diamond")

register_scenario(
    "fig_4_5_bridge_test", fig_4_5_bridge_test,
    summary="Fig. 4.5: client – bridge – server performance layout")

register_scenario(
    "fig_5_8_handover", fig_5_8_handover,
    summary="Fig. 5.8: A/B/C routing-handover triangle")

register_scenario(
    "tunnel_topology", tunnel_topology,
    params=(
        Param("bridge_count", int, 3, "relays lining the tunnel"),
        Param("spacing", float, 8.0, "metres between relays"),
    ),
    summary="Fig. 6.1: GPRS gateway + relay chain + far-end phone")

register_scenario(
    "dense_plaza", dense_plaza,
    params=(
        Param("count", int, 50, "pedestrians in the plaza"),
        Param("area", float, 60.0, "side of the plaza, metres"),
        _TECHS,
    ),
    summary="packed random-waypoint pedestrians (high cell occupancy)")

register_scenario(
    "sparse_highway", sparse_highway,
    params=(
        Param("count", int, 50, "vehicles on the road"),
        Param("length_m", float, 2000.0, "road length, metres"),
        Param("lanes", int, 2, "lane count"),
        Param("technologies", tuple, ("wlan",), "radio mix", element=str),
    ),
    summary="fast vehicles strung along kilometres of road")

register_scenario(
    "city_day", city_day,
    params=(
        # Schema default is deliberately small (the registry self-test
        # builds every scenario at its defaults); the factory's own
        # default is the 10 000-node flagship size.
        Param("count", int, 2000, "devices in the city"),
        Param("density_per_m2", float, 500.0 / (120.0 * 120.0),
              "devices per square metre (sets the area from count)"),
        Param("pedestrian_fraction", float, 0.7,
              "fraction roaming as random-waypoint pedestrians"),
        Param("vehicle_fraction", float, 0.2,
              "fraction shuttling scripted lane runs"),
        _TECHS,
    ),
    summary=("city-scale mixed population (pedestrians, vehicles, "
             "kiosks) at constant density — the batch geometry regime"))

register_scenario(
    "replay_arena", replay_arena,
    summary="empty world under which recorded contact traces replay")

register_scenario(
    "commuter_corridor", commuter_corridor,
    params=(
        Param("count", int, 10, "commuters in the corridor"),
        Param("length_m", float, 120.0, "corridor length, metres"),
        Param("width_m", float, 8.0, "corridor width, metres"),
        _TECHS,
        *_fault_params(),
        *_phy_params(),
    ),
    summary=("home/work terminals beyond mutual range; bundles ride "
             "commuters"))

register_scenario(
    "hostile_corridor", hostile_corridor,
    params=(
        Param("count", int, 10, "commuters in the corridor"),
        Param("length_m", float, 120.0, "corridor length, metres"),
        Param("width_m", float, 8.0, "corridor width, metres"),
        _TECHS,
        *_fault_params(crash_rate=0.2, crash_downtime_s=120.0,
                       radio_fault_rate=0.1, byzantine_rate=0.1,
                       jammer_count=1, fault_window_s=360.0),
        *_phy_params(),
    ),
    summary=("the commuter corridor under crash-reboot, deaf/mute, "
             "byzantine and jammer faults"))

register_scenario(
    "island_hopping_ferry", island_hopping_ferry,
    params=(
        Param("count", int, 9, "islanders across all islands"),
        Param("islands", int, 3, "static population clusters"),
        Param("island_spacing_m", float, 60.0,
              "metres between island centres"),
        Param("dwell_s", float, 20.0, "ferry dwell per stop, seconds"),
        Param("cycles", int, 4, "ferry shuttle cycles before parking"),
        _TECHS,
        *_fault_params(),
        *_phy_params(),
    ),
    summary="partitioned islands bridged only by a scripted ferry")

register_scenario(
    "flash_crowd_broadcast", flash_crowd_broadcast,
    params=(
        Param("count", int, 24, "roaming attendees"),
        Param("area", float, 60.0, "side of the square, metres"),
        _TECHS,
        *_fault_params(),
        *_phy_params(),
    ),
    summary="static announcer amid a roaming crowd (broadcast traffic)")

register_scenario(
    "drive_by_kiosk", drive_by_kiosk,
    params=(
        Param("count", int, 6, "cars lapping the road"),
        Param("road_length_m", float, 300.0, "kiosk–depot distance"),
        Param("lane_offset_m", float, 6.0,
              "lane's lateral offset from the terminals, metres"),
        Param("speed_mps", float, 12.0, "car speed, metres/second"),
        Param("headway_s", float, 20.0, "car start stagger, seconds"),
        Param("laps", int, 4, "round trips per car before parking"),
        _TECHS,
        *_fault_params(),
        *_phy_params(),
    ),
    summary=("seconds-long drive-by contacts; large bundles need "
             "partial-transfer resume across laps"))

register_scenario(
    "crowded_festival", crowded_festival,
    params=(
        Param("count", int, 18, "roaming attendees"),
        Param("area", float, 40.0, "side of the square, metres"),
        _TECHS,
        *_fault_params(),
        *_phy_params(),
    ),
    summary=("dense broadcast crowd: window bytes, not reachability, "
             "are the constraint"))

register_scenario(
    "lossy_festival", lossy_festival,
    params=(
        Param("count", int, 18, "roaming attendees"),
        Param("area", float, 40.0, "side of the square, metres"),
        _TECHS,
        *_fault_params(),
        *_phy_params(shadowing_sigma_db=6.0, phy_collisions=1),
    ),
    summary=("the crowded festival under a default lossy PHY profile "
             "(6 dB shadowing + collision/capture)"))

register_scenario(
    "rural_bus_dtn", rural_bus_dtn,
    params=(
        Param("count", int, 9, "villagers across all villages"),
        Param("villages", int, 3, "static population clusters"),
        Param("village_spacing_m", float, 80.0,
              "metres between village centres"),
        Param("dwell_s", float, 25.0, "bus dwell per stop, seconds"),
        Param("cycles", int, 4, "bus route cycles before parking"),
        _TECHS,
        *_fault_params(),
        *_phy_params(),
    ),
    summary=("partitioned villages served by one bus; each dwell "
             "prices the village uplink in bytes"))

register_scenario(
    "flash_crowd", flash_crowd,
    params=(
        Param("base_count", int, 10, "permanent residents"),
        Param("crowd_count", int, 40, "transient walkers injected"),
        Param("area", float, 80.0, "side of the square, metres"),
        _TECHS,
    ),
    summary="resident population plus a churning transient crowd")
