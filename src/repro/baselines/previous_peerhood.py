"""The pre-thesis PeerHood discovery variants (§3.1).

* :class:`DirectOnlyDiscovery` — the original protocol: "interact only
  with direct neighbour devices inside the inquiry coverage";
* :class:`TwoJumpDiscovery` — the [2] extension: direct neighbours plus
  their advertised neighbour lists, i.e. "the vision of device discovery
  process is limited to two jumps".

Both are *awareness oracles* evaluated on the same world geometry: the
coverage-exclusion benchmark (E5) compares what fraction of the network
each scheme can ever see, independent of scan timing — which isolates the
structural limitation the thesis describes from the stochastic misses the
full stack also has.
"""

from __future__ import annotations

from repro.radio.technologies import Technology
from repro.radio.world import World


class DirectOnlyDiscovery:
    """Awareness = the in-range neighbour set, nothing more."""

    name = "direct-only"

    def __init__(self, world: World, tech: Technology):
        self.world = world
        self.tech = tech

    def aware_of(self, node_id: str) -> set[str]:
        """Node ids this scheme can ever make ``node_id`` aware of."""
        return set(self.world.neighbors(node_id, self.tech))


class TwoJumpDiscovery:
    """Awareness = neighbours plus the neighbours they advertise.

    "The neighbourhood information fetching provides only an extra
    coverage jump vision to the device inquiry process" (§3.1).
    """

    name = "two-jump"

    def __init__(self, world: World, tech: Technology):
        self.world = world
        self.tech = tech

    def aware_of(self, node_id: str) -> set[str]:
        """Node ids visible within two jumps."""
        direct = set(self.world.neighbors(node_id, self.tech))
        second = set()
        for neighbor_id in direct:
            second.update(self.world.neighbors(neighbor_id, self.tech))
        second.discard(node_id)
        return direct | second


class FullMeshDiscovery:
    """The thesis' dynamic discovery as an oracle: transitive closure.

    The full stack converges to exactly the connected component (Ch. 3);
    this oracle states that fixed point for comparison, without waiting
    for the stochastic inquiry loops.
    """

    name = "dynamic"

    def __init__(self, world: World, tech: Technology):
        self.world = world
        self.tech = tech

    def aware_of(self, node_id: str) -> set[str]:
        """Every node in the same connectivity component."""
        seen = {node_id}
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            for neighbor_id in self.world.neighbors(current, self.tech):
                if neighbor_id not in seen:
                    seen.add(neighbor_id)
                    frontier.append(neighbor_id)
        seen.discard(node_id)
        return seen


def mean_awareness(view_of, names) -> float:
    """Mean awareness fraction over ``names`` under one scheme.

    ``view_of(name)`` is the set of *other* nodes the scheme makes
    ``name`` aware of; each node contributes ``len(view) / (n - 1)``.
    1.0 for singleton populations (nothing to discover).  The E5
    benchmark and the ``awareness_schemes`` workload share this fold.
    """
    names = list(names)
    others = len(names) - 1
    if others <= 0:
        return 1.0
    return sum(len(view_of(name)) / others for name in names) / len(names)
