"""Tests for the §6.1 Data Buffering extension (ReliableChannel) and
the shared BoundedBuffer both planes (reliable channel, DTN stores)
are built on."""

import pytest

from repro.core.buffering import (
    EVICT_LARGEST,
    EVICT_OLDEST,
    EVICT_SOONEST_EXPIRY,
    BoundedBuffer,
    ReliableChannel,
)
from repro.core.errors import ConnectionClosedError
from repro.core.handover import HandoverThread
from repro.radio.technologies import BLUETOOTH
from repro.scenarios import Scenario, fig_5_8_handover

SETTLE_S = 180.0


# ----------------------------------------------------------------------
# the shared BoundedBuffer
# ----------------------------------------------------------------------
def test_bounded_buffer_validation():
    with pytest.raises(ValueError, match="capacity"):
        BoundedBuffer(capacity_bytes=0)
    with pytest.raises(ValueError, match="policy"):
        BoundedBuffer(policy="random")
    buffer = BoundedBuffer()
    with pytest.raises(ValueError, match="size"):
        buffer.add("k", "item", -1, now=0.0)
    with pytest.raises(ValueError, match="ttl"):
        buffer.add("k", "item", 1, now=0.0, ttl_s=0.0)


def test_bounded_buffer_unbounded_keeps_insertion_order():
    buffer = BoundedBuffer()
    for index in range(5):
        assert buffer.add(index, f"item{index}", 10, now=float(index)) == []
    assert buffer.keys() == [0, 1, 2, 3, 4]
    assert buffer.used_bytes == 50
    assert buffer.get(3).item == "item3"


def test_bounded_buffer_evicts_oldest_first():
    buffer = BoundedBuffer(capacity_bytes=30, policy=EVICT_OLDEST)
    buffer.add("a", 1, 10, now=0.0)
    buffer.add("b", 2, 10, now=1.0)
    buffer.add("c", 3, 10, now=2.0)
    evicted = buffer.add("d", 4, 10, now=3.0)
    assert [entry.key for entry in evicted] == ["a"]
    assert buffer.keys() == ["b", "c", "d"]
    assert buffer.evicted == 1


def test_bounded_buffer_evicts_largest_first():
    buffer = BoundedBuffer(capacity_bytes=30, policy=EVICT_LARGEST)
    buffer.add("small", 1, 5, now=0.0)
    buffer.add("big", 2, 20, now=1.0)
    evicted = buffer.add("new", 3, 10, now=2.0)
    assert [entry.key for entry in evicted] == ["big"]
    assert buffer.keys() == ["small", "new"]


def test_bounded_buffer_evicts_soonest_expiry_first():
    buffer = BoundedBuffer(capacity_bytes=30, policy=EVICT_SOONEST_EXPIRY)
    buffer.add("immortal", 1, 10, now=0.0)
    buffer.add("late", 2, 10, now=0.0, ttl_s=100.0)
    buffer.add("soon", 3, 10, now=0.0, ttl_s=5.0)
    evicted = buffer.add("new", 4, 10, now=1.0, ttl_s=50.0)
    assert [entry.key for entry in evicted] == ["soon"]
    assert sorted(buffer.keys()) == ["immortal", "late", "new"]


def test_bounded_buffer_rejects_entry_larger_than_capacity():
    buffer = BoundedBuffer(capacity_bytes=10)
    rejected = buffer.add("huge", 1, 11, now=0.0)
    assert [entry.key for entry in rejected] == ["huge"]
    assert len(buffer) == 0 and buffer.evicted == 1


def test_bounded_buffer_replacing_a_key_is_not_an_eviction():
    buffer = BoundedBuffer(capacity_bytes=20)
    buffer.add("k", "old", 10, now=0.0)
    assert buffer.add("k", "new", 15, now=1.0) == []
    assert buffer.get("k").item == "new"
    assert buffer.used_bytes == 15
    assert buffer.evicted == 0


def test_bounded_buffer_replacement_keeps_queue_position_and_age():
    """Spray token updates must not rejuvenate a bundle: under
    EVICT_OLDEST the re-stored key still counts as the oldest."""
    buffer = BoundedBuffer(capacity_bytes=30, policy=EVICT_OLDEST)
    buffer.add("a", 1, 10, now=0.0)
    buffer.add("b", 2, 10, now=50.0)
    buffer.add("a", "updated", 10, now=100.0)   # in-place replacement
    assert buffer.keys() == ["a", "b"]          # position preserved
    assert buffer.get("a").stored_at == 0.0     # custody age preserved
    evicted = buffer.add("c", 3, 20, now=200.0)
    assert [entry.key for entry in evicted] == ["a"]  # still the oldest


def test_bounded_buffer_ttl_expiry_is_lazy_and_counted():
    buffer = BoundedBuffer()
    buffer.add("a", 1, 10, now=0.0, ttl_s=5.0)
    buffer.add("b", 2, 10, now=0.0, ttl_s=50.0)
    buffer.add("c", 3, 10, now=0.0)          # immortal
    assert buffer.drop_expired(4.9) == []
    dropped = buffer.drop_expired(5.0)       # expiry instant inclusive
    assert [entry.key for entry in dropped] == ["a"]
    assert buffer.expired == 1
    assert buffer.drop_expired(1000.0)[0].key == "b"
    assert buffer.keys() == ["c"]


def test_bounded_buffer_deliberate_removal_not_counted():
    buffer = BoundedBuffer(capacity_bytes=100)
    buffer.add("a", 1, 10, now=0.0)
    buffer.add("b", 2, 10, now=0.0)
    assert buffer.remove("a").item == 1
    assert buffer.remove("missing") is None
    dropped = buffer.drop_matching(lambda entry: entry.key == "b")
    assert [entry.key for entry in dropped] == ["b"]
    assert buffer.evicted == 0 and buffer.expired == 0
    assert len(buffer) == 0 and buffer.used_bytes == 0


def reliable_sink(node, received):
    """Register a service that reads through a ReliableChannel."""

    def handler(connection):
        channel = ReliableChannel(connection)

        def serve():
            while True:
                try:
                    payload = yield from channel.receive()
                except ConnectionClosedError:
                    return
                received.append(payload)
        return serve()

    node.library.register_service("reliable.sink", handler)


def settled_pair(seed):
    scenario = Scenario(seed=seed)
    client = scenario.add_node("client", position=(0, 0))
    server = scenario.add_node("server", position=(5, 0),
                               mobility_class="static")
    received = []
    reliable_sink(server, received)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")
    return scenario, client, server, received


def test_in_order_delivery_and_ack_trimming():
    scenario, client, server, received = settled_pair(seed=71)

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "reliable.sink", retries=6)
        channel = ReliableChannel(connection, ack_every=4)
        for index in range(10):
            channel.send(index, 64)
            yield sim.timeout(0.5)
        yield sim.timeout(10.0)
        return channel

    channel = scenario.run_process(run(scenario.sim))
    assert received == list(range(10))
    # Cumulative acks trimmed the window (at most ack_every-1 linger
    # until the next ack batch; the final resend loop clears the rest).
    assert channel.unacknowledged <= 4


def test_sequence_numbers_are_monotone():
    scenario, client, server, _ = settled_pair(seed=72)

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "reliable.sink", retries=6)
        channel = ReliableChannel(connection)
        sequences = [channel.send(i, 8) for i in range(5)]
        yield sim.timeout(1.0)
        return sequences

    sequences = scenario.run_process(run(scenario.sim))
    assert sequences == [1, 2, 3, 4, 5]


def test_validation():
    scenario, client, server, _ = settled_pair(seed=73)

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "reliable.sink", retries=6)
        return connection

    connection = scenario.run_process(run(scenario.sim))
    with pytest.raises(ValueError):
        ReliableChannel(connection, ack_every=0)
    with pytest.raises(ValueError):
        ReliableChannel(connection, resend_interval_s=0)


def test_handover_with_buffering_loses_nothing():
    """§6.1: buffering guarantees data integrity across the handover.

    The raw Fig. 5.8 runs occasionally lose a frame that was in flight
    on the old chain when the transport was substituted; with the
    ReliableChannel every message arrives exactly once, in order.
    """
    losses_plain = 0
    for seed in (17, 18, 19, 20):
        scenario = fig_5_8_handover(seed=seed)
        server, client = scenario.node("A"), scenario.node("B")
        received = []
        reliable_sink(server, received)
        scenario.start_all()
        scenario.run(until=SETTLE_S)
        if not scenario.wait_for_route("B", "A"):
            continue

        def run(sim, scenario=scenario, client=client, server=server):
            connection = yield from client.library.connect(
                server.address, "reliable.sink", retries=6)
            channel = ReliableChannel(connection, ack_every=4,
                                      resend_interval_s=3.0)
            scenario.world.install_linear_decay(
                "A", "B", BLUETOOTH, initial_quality=240)
            thread = HandoverThread(client.library, connection).start()
            for index in range(50):
                channel.send(index, 64)
                yield sim.timeout(1.0)
            yield sim.timeout(15.0)
            thread.stop()
            return connection, channel

        connection, channel = scenario.run_process(run(scenario.sim))
        assert connection.handovers >= 1, "the run must exercise handover"
        assert received == list(range(50)), (
            f"seed {seed}: buffered stream lost or reordered data: "
            f"{len(received)} items")


def test_duplicates_are_dropped():
    """Retransmission after handover must not double-deliver."""
    scenario = fig_5_8_handover(seed=21)
    server, client = scenario.node("A"), scenario.node("B")
    received = []
    reliable_sink(server, received)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("B", "A")

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "reliable.sink", retries=6)
        channel = ReliableChannel(connection, ack_every=100,
                                  resend_interval_s=2.0)
        # With acks this rare, the resend loop retransmits the full
        # window repeatedly; the receiver must deduplicate.
        for index in range(8):
            channel.send(index, 64)
            yield sim.timeout(1.0)
        yield sim.timeout(10.0)
        return channel

    scenario.run_process(run(scenario.sim))
    assert received == list(range(8))


def test_close_flushes_final_ack():
    scenario, client, server, received = settled_pair(seed=74)

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "reliable.sink", retries=6)
        channel = ReliableChannel(connection)
        channel.send("only", 64)
        yield sim.timeout(3.0)
        channel.close("done")
        yield sim.timeout(2.0)
        return channel

    scenario.run_process(run(scenario.sim))
    assert received == ["only"]
