"""Vectorized kernel hot path — numpy batch geometry vs the scalar grid.

Not a paper artifact: this benchmark backs the ROADMAP's 10⁴–10⁵-node
goal.  Two runs, both through the experiment runner:

* the ``vectorized_neighbors`` sweep on the dense plaza at growing N
  (constant crowd density) — each round does one whole-population
  discovery sweep twice, batch engine vs per-node grid queries, with
  identical neighbor sets asserted inside the workload, then solves
  every in-range pair's next crossing twice, batch quadratic solver vs
  the scalar closed form, with element-wise identical results asserted;
* the same workload on the ``city_day`` scenario at the flagship size —
  the mixed pedestrian/vehicle/kiosk population the batch engine exists
  for, proving the vectorized path completes (and still agrees) at N
  the scalar loop can only limp through.

``BENCH_vectorized.json`` at the repo root records candidate-check
counts and profiler event totals (deterministic, regression-gated) plus
the wall-clock speedups (timings side channel, named ``*_wall``/
``*_ms`` so the gate skips them).  ``N`` defaults to 2000 for the sweep
and 10000 for the city; the CI bench-smoke job shrinks both via the
environment, where the speedup floor relaxes from 10× to 5× (less
Python overhead to amortise at small N).
"""

import os
import pathlib

from repro.analysis.snapshots import write_bench_snapshot
from repro.experiments import ExperimentSpec, run_spec
from paperbench import print_table

SNAPSHOT_PATH = (pathlib.Path(__file__).resolve().parent.parent
                 / "BENCH_vectorized.json")

#: Largest sweep size; the CI smoke job shrinks it via the environment.
SWEEP_N = int(os.environ.get("BENCH_VECTOR_N", "2000"))
#: City-day flagship size (the 10⁴-node acceptance run).
CITY_N = int(os.environ.get("BENCH_VECTOR_CITY_N", "10000"))
#: Discovery-sweep speedup floor: 10× at the full N=2000 (the PR 8
#: acceptance criterion), 5× at CI smoke sizes.
SPEEDUP_FLOOR = 10.0 if SWEEP_N >= 2000 else 5.0


def _spec(name, scenario, counts):
    return ExperimentSpec(
        name=name,
        workload="vectorized_neighbors",
        scenarios=(scenario,),
        axes={"count": tuple(counts)},
        repeats=1,
        master_seed=23,
        settings={"rounds": 3, "step_s": 15.0},
        description="vectorized-kernel benchmark run")


def _run(spec):
    rows = []
    for result in run_spec(spec):
        metrics = result.record["metrics"]
        timings = result.timings
        rows.append({
            "n": metrics["nodes"],
            "vector_checks": metrics["vector_candidate_checks"],
            "grid_checks": metrics["grid_candidate_checks"],
            "neighbor_links": metrics["neighbor_links"],
            "solved_pairs": metrics["solved_pairs"],
            "crossings_found": metrics["crossings_found"],
            "events_vector_position": metrics["events_vector_position"],
            "events_vector_solve": metrics["events_vector_solve"],
            "vector_ms": timings["vector_ms"],
            "grid_ms": timings["grid_ms"],
            "solve_vector_ms": timings["solve_vector_ms"],
            "solve_scalar_ms": timings["solve_scalar_ms"],
            "wall_s": timings["wall_s"],
        })
    return rows


def run_benchmark():
    """Both runs; returns ``(sweep_rows, city_row)``."""
    sweep = _run(_spec("vector_bench_sweep", "dense_plaza",
                       (max(50, SWEEP_N // 4), SWEEP_N)))
    city = _run(_spec("vector_bench_city", "city_day", (CITY_N,)))[0]
    return sweep, city


def write_snapshot(sweep, city, path=SNAPSHOT_PATH):
    """Persist the perf snapshot for cross-PR trajectory tracking."""

    def snapshot_row(row):
        return {
            "n": row["n"],
            "vector_candidate_checks_per_round": row["vector_checks"],
            "grid_candidate_checks_per_round": row["grid_checks"],
            "neighbor_links": row["neighbor_links"],
            "solved_pairs": row["solved_pairs"],
            "crossings_found": row["crossings_found"],
            "events_vector_position": row["events_vector_position"],
            "events_vector_solve": row["events_vector_solve"],
            "vector_ms_per_round": round(row["vector_ms"], 3),
            "grid_ms_per_round": round(row["grid_ms"], 3),
            "speedup_wall": round(row["grid_ms"] / row["vector_ms"], 2),
            "solve_vector_ms": round(row["solve_vector_ms"], 3),
            "solve_scalar_ms": round(row["solve_scalar_ms"], 3),
            "solver_speedup_wall": round(
                row["solve_scalar_ms"] / row["solve_vector_ms"], 2),
            "run_wall_s": round(row["wall_s"], 3),
        }

    payload = {
        "spec": "vector_sweep",
        "rows": [snapshot_row(row) for row in sweep],
        "city_day": snapshot_row(city),
    }
    write_bench_snapshot("vectorized", payload, path,
                         n=sweep[-1]["n"], repeats=1)
    return path


def test_vectorized_kernel_beats_scalar_path(benchmark):
    sweep, city = benchmark.pedantic(run_benchmark, rounds=1, iterations=1,
                                     warmup_rounds=0)
    write_snapshot(sweep, city)
    table = []
    for row in sweep + [city]:
        table.append([
            row["n"],
            row["vector_checks"], row["grid_checks"],
            f"{row['vector_ms']:.2f}", f"{row['grid_ms']:.2f}",
            f"{row['grid_ms'] / row['vector_ms']:.1f}x",
            f"{row['solve_scalar_ms'] / row['solve_vector_ms']:.1f}x",
        ])
    print_table(
        "Vectorized: whole-population discovery, batch engine vs grid",
        ["N", "batch cand-checks/round", "grid cand-checks/round",
         "batch ms/round", "grid ms/round", "discovery speedup",
         "solver speedup"],
        table)
    # Equivalence (identical neighbor sets per node and round, identical
    # crossings per pair) is asserted *inside* the workload — reaching
    # this point means every run agreed.  The gates here are about speed
    # and about the candidate-generation contract.
    largest = sweep[-1]
    assert largest["n"] == SWEEP_N
    speedup = largest["grid_ms"] / largest["vector_ms"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"batch discovery speedup {speedup:.1f}x below "
        f"{SPEEDUP_FLOOR}x at N={largest['n']}")
    # The batch join generates each unordered candidate pair once where
    # the grid checks each direction — never *more* work than scalar.
    for row in sweep + [city]:
        assert row["vector_checks"] <= row["grid_checks"], row
    # The batch quadratic solver amortises segment generation across the
    # pair list; it must never lose to the per-pair scalar loop.
    solver_speedup = (largest["solve_scalar_ms"]
                      / largest["solve_vector_ms"])
    assert solver_speedup >= 1.2, (
        f"batch solver speedup {solver_speedup:.1f}x at N={largest['n']}")
    # The city-day acceptance run: the flagship mixed population
    # completed its sweeps under the vectorized path, still scalar-equal.
    assert city["n"] == CITY_N
    assert city["neighbor_links"] > 0 and city["solved_pairs"] > 0
    benchmark.extra_info["speedup_at_max_n"] = round(speedup, 1)
    benchmark.extra_info["rows"] = [
        {k: v for k, v in row.items() if k != "wall_s"}
        for row in sweep + [city]]
