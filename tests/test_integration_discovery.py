"""Integration tests: the full discovery stack on the paper's topologies."""

import pytest

from repro.core.config import DaemonConfig, RoutingPolicy
from repro.radio.technologies import BLUETOOTH
from repro.scenarios import (
    Scenario,
    fig_3_3_coverage_exclusion,
    fig_3_6_dynamic_discovery,
    fig_3_9_quality_equity,
    line_topology,
)

#: Long enough for several Bluetooth search cycles on every topology.
SETTLE_S = 180.0


def names_known_by(scenario, name):
    node = scenario.node(name)
    known = set()
    for device in node.daemon.storage.devices():
        peer = scenario.fabric.node_by_address(device.address)
        if peer is not None:
            known.add(peer.node_id)
    return known


def test_two_nodes_discover_each_other():
    scenario = Scenario(seed=1)
    scenario.add_node("a", position=(0, 0))
    scenario.add_node("b", position=(5, 0))
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert names_known_by(scenario, "a") == {"b"}
    assert names_known_by(scenario, "b") == {"a"}


def test_out_of_range_nodes_stay_unknown():
    scenario = Scenario(seed=1)
    scenario.add_node("a", position=(0, 0))
    scenario.add_node("far", position=(100, 0))
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert names_known_by(scenario, "a") == set()


def test_fig_3_6_expected_device_storage_for_a():
    """The paper's exact table: B:0, C:0, D:1 via C, E:1 via B."""
    scenario = fig_3_6_dynamic_discovery(seed=4)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    node_a = scenario.node("A")
    by_name = {}
    for device in node_a.daemon.storage.devices():
        peer = scenario.fabric.node_by_address(device.address)
        bridge_peer = (scenario.fabric.node_by_address(device.bridge)
                       if device.bridge else None)
        by_name[peer.node_id] = (
            device.jump, bridge_peer.node_id if bridge_peer else None)
    assert by_name["B"] == (0, None)
    assert by_name["C"] == (0, None)
    assert by_name["D"] == (1, "C")
    assert by_name["E"] == (1, "B")


def test_fig_3_3_dynamic_discovery_solves_coverage_exclusion():
    """B, C and D eventually learn of F and G through A and E."""
    scenario = fig_3_3_coverage_exclusion(seed=2)
    scenario.start_all()
    scenario.run(until=300.0)
    for observer in ("B", "C", "D"):
        known = names_known_by(scenario, observer)
        assert {"F", "G"} <= known, (
            f"{observer} should know F and G, knows {sorted(known)}")


def test_total_environment_awareness_on_a_chain():
    """Every node of a 5-node chain learns every other node (§3.3)."""
    scenario = line_topology(5, seed=3)
    scenario.start_all()
    scenario.run(until=300.0)
    everyone = {f"n{i}" for i in range(5)}
    for name in everyone:
        assert names_known_by(scenario, name) == everyone - {name}


def test_chain_jump_counts_grow_with_distance():
    scenario = line_topology(4, seed=5)
    scenario.start_all()
    scenario.run(until=300.0)
    storage = scenario.node("n0").daemon.storage
    jumps = {}
    for device in storage.devices():
        peer = scenario.fabric.node_by_address(device.address)
        jumps[peer.node_id] = device.jump
    assert jumps["n1"] == 0
    assert jumps["n2"] == 1
    assert jumps["n3"] == 2


def test_max_jump_limits_awareness():
    """§3.4.2: capping jumps trades awareness for freshness."""
    config = DaemonConfig(routing=RoutingPolicy(max_jump=1))
    scenario = line_topology(5, seed=6, config=config)
    scenario.start_all()
    scenario.run(until=300.0)
    known = names_known_by(scenario, "n0")
    assert "n1" in known and "n2" in known
    assert "n4" not in known  # would need jump 3


def test_service_advertisement_propagates_multi_hop():
    scenario = line_topology(3, seed=7)
    server = scenario.node("n2")

    def dummy(connection):
        return None

    server.library.register_service("picture.analyse", dummy)
    scenario.start_all()
    scenario.run(until=300.0)
    pairs = scenario.node("n0").library.get_service_list("picture.analyse")
    assert len(pairs) == 1
    device, service = pairs[0]
    assert device.address == server.address
    assert device.jump == 1


def test_stopped_daemon_is_evicted_from_neighbours():
    scenario = Scenario(seed=8)
    scenario.add_node("a", position=(0, 0))
    scenario.add_node("b", position=(5, 0))
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert names_known_by(scenario, "a") == {"b"}
    scenario.node("b").stop()
    scenario.run(until=scenario.sim.now + 150.0)
    assert names_known_by(scenario, "a") == set()


def test_departed_node_is_evicted():
    from repro.mobility import CorridorWalk

    scenario = Scenario(seed=9)
    scenario.add_node("base", position=(0, 0), mobility_class="static")
    scenario.add_node(
        "walker",
        mobility=CorridorWalk((5, 0), depart_time=150.0, speed=2.0),
        mobility_class="dynamic")
    scenario.start_all()
    scenario.run(until=140.0)
    assert names_known_by(scenario, "base") == {"walker"}
    scenario.run(until=400.0)  # walker is hundreds of metres away
    assert names_known_by(scenario, "base") == set()


def test_fig_3_9_threshold_route_is_chosen():
    """A stores the D route via B (both links >= 230), not via C."""
    scenario = fig_3_9_quality_equity(seed=10)
    scenario.start_all()
    scenario.run(until=300.0)
    node_a = scenario.node("A")
    entry = node_a.daemon.storage.get(scenario.node("D").address)
    assert entry is not None
    bridge_peer = scenario.fabric.node_by_address(entry.bridge)
    assert bridge_peer.node_id == "B"
    assert entry.route.min_link_quality >= 230


def test_hidden_bridge_service_is_not_advertised():
    scenario = Scenario(seed=11)
    scenario.add_node("a", position=(0, 0))
    scenario.add_node("b", position=(5, 0))
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    services = scenario.node("a").library.get_service_list()
    assert all(s.name != "peerhood.bridge" for _, s in services)


def test_discovery_traffic_is_metered():
    scenario = Scenario(seed=12)
    scenario.add_node("a", position=(0, 0))
    scenario.add_node("b", position=(5, 0))
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.meter.messages(category="discovery") > 0
    assert scenario.meter.bytes(category="discovery") > 0


def test_non_peerhood_node_is_ignored():
    """A world node without a daemon fails the SDP check (§2.3)."""
    from repro.mobility import StaticPosition

    scenario = Scenario(seed=13)
    scenario.add_node("a", position=(0, 0))
    # A bare radio device: present in the world, no PeerHood daemon.
    scenario.world.add_node("headset", StaticPosition(3, 0), ["bluetooth"])
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert names_known_by(scenario, "a") == set()
