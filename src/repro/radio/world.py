"""The radio world: node positions, range queries, link quality.

One :class:`World` instance per simulation holds every radio-equipped node.
Positions come from mobility models evaluated at the simulator clock, so the
world never needs periodic "move" events.  The world also hosts two pieces
of behavioural fault injection used by the paper's experiments:

* *inquiry marking* — Bluetooth devices that are scanning are undiscoverable
  (§3.4.2); plugins mark themselves while inquiring;
* *quality overrides* — the Fig. 5.8 handover simulation artificially decays
  the monitored link quality by one unit per second; overrides replace the
  physical model for chosen pairs.
"""

from __future__ import annotations

import typing

from repro.mobility.base import MobilityModel, Point, distance
from repro.radio.quality import PiecewiseLinearQuality, QualityModel
from repro.radio.technologies import Technology, get_technology

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

#: Signature of a quality override: virtual time → quality (0–255) or None
#: to fall back to the physical model.
QualityOverride = typing.Callable[[float], typing.Optional[int]]


class WorldNode:
    """A radio-equipped node: identity, mobility and fitted technologies."""

    def __init__(self, node_id: str, mobility: MobilityModel,
                 technologies: frozenset[str]):
        self.node_id = node_id
        self.mobility = mobility
        self.technologies = technologies

    def __repr__(self) -> str:
        techs = ",".join(sorted(self.technologies))
        return f"<WorldNode {self.node_id} [{techs}]>"


class World:
    """Container of nodes plus geometry and link-quality queries."""

    def __init__(self, sim: "Simulator",
                 quality_model: QualityModel | None = None):
        self.sim = sim
        self.quality_model = quality_model or PiecewiseLinearQuality()
        self._nodes: dict[str, WorldNode] = {}
        self._overrides: dict[tuple[str, str, str], QualityOverride] = {}
        self._inquiring: set[tuple[str, str]] = set()
        # Toggle log per (node, tech): (time, became_inquiring) pairs, used
        # by the interval-overlap discoverability query.  Pruned lazily.
        self._inquiry_history: dict[
            tuple[str, str], list[tuple[float, bool]]] = {}

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------
    def add_node(self, node_id: str, mobility: MobilityModel,
                 technologies: typing.Iterable[Technology | str]) -> WorldNode:
        """Register a node.  ``technologies`` may mix names and objects."""
        if node_id in self._nodes:
            raise ValueError(f"duplicate node id: {node_id!r}")
        names = frozenset(
            tech if isinstance(tech, str) else tech.name
            for tech in technologies)
        if not names:
            raise ValueError(f"node {node_id!r} needs at least one technology")
        for name in names:
            get_technology(name)  # validate early
        node = WorldNode(node_id, mobility, names)
        self._nodes[node_id] = node
        return node

    def remove_node(self, node_id: str) -> None:
        """Remove a node (power-off); pending overrides are kept harmless."""
        self._node(node_id)  # raise if unknown
        del self._nodes[node_id]
        self._inquiring = {
            key for key in self._inquiring if key[0] != node_id}

    def node_ids(self) -> list[str]:
        """All registered node ids, sorted for determinism."""
        return sorted(self._nodes)

    def has_node(self, node_id: str) -> bool:
        """True if the node exists."""
        return node_id in self._nodes

    def _node(self, node_id: str) -> WorldNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"unknown node: {node_id!r}") from None

    def node(self, node_id: str) -> WorldNode:
        """Public lookup of a node record."""
        return self._node(node_id)

    def supports(self, node_id: str, tech: Technology) -> bool:
        """True if the node has the given radio fitted."""
        return tech.name in self._node(node_id).technologies

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def position(self, node_id: str) -> Point:
        """The node's position at the current virtual time."""
        return self._node(node_id).mobility.position(self.sim.now)

    def distance(self, a: str, b: str) -> float:
        """Distance between two nodes now, in metres."""
        return distance(self.position(a), self.position(b))

    def in_range(self, a: str, b: str, tech: Technology) -> bool:
        """True if both nodes have ``tech`` and are within its radius.

        A node that has been removed from the world (powered off, battery
        pulled) is simply out of range of everything — links to it break
        rather than the query crashing.
        """
        if a == b:
            return False
        if a not in self._nodes or b not in self._nodes:
            return False
        if not (self.supports(a, tech) and self.supports(b, tech)):
            return False
        return self.distance(a, b) <= tech.range_m

    # ------------------------------------------------------------------
    # link quality
    # ------------------------------------------------------------------
    def _override_key(self, a: str, b: str,
                      tech: Technology) -> tuple[str, str, str]:
        first, second = sorted((a, b))
        return (first, second, tech.name)

    def set_quality_override(self, a: str, b: str, tech: Technology,
                             override: QualityOverride | None) -> None:
        """Install (or clear, with None) an artificial quality function."""
        key = self._override_key(a, b, tech)
        if override is None:
            self._overrides.pop(key, None)
        else:
            self._overrides[key] = override

    def install_linear_decay(self, a: str, b: str, tech: Technology,
                             initial_quality: int,
                             decay_per_second: float = 1.0,
                             start_time: float | None = None) -> None:
        """The paper's Fig. 5.8 fault injection.

        From ``start_time`` (default: now) the reported quality for the pair
        is ``initial_quality - decay_per_second * elapsed``, floored at 0.
        """
        t0 = self.sim.now if start_time is None else start_time

        def decayed(t: float) -> int:
            elapsed = max(0.0, t - t0)
            return max(0, round(initial_quality - decay_per_second * elapsed))

        self.set_quality_override(a, b, tech, decayed)

    def link_quality(self, a: str, b: str, tech: Technology) -> int:
        """Current link quality (0–255); 0 when out of range or no radio."""
        override = self._overrides.get(self._override_key(a, b, tech))
        if override is not None:
            value = override(self.sim.now)
            if value is not None:
                return max(0, min(255, int(value)))
        if not self.in_range(a, b, tech):
            return 0
        return self.quality_model.quality(self.distance(a, b), tech.range_m)

    # ------------------------------------------------------------------
    # discovery support
    # ------------------------------------------------------------------
    #: Toggle-log entries older than this are pruned (no scan looks back
    #: further than one inquiry duration).
    _HISTORY_HORIZON_S = 120.0

    def mark_inquiring(self, node_id: str, tech: Technology,
                       inquiring: bool) -> None:
        """Record that a node is running a discovery scan on ``tech``."""
        key = (node_id, tech.name)
        already = key in self._inquiring
        if inquiring == already:
            return
        if inquiring:
            self._inquiring.add(key)
        else:
            self._inquiring.discard(key)
        history = self._inquiry_history.setdefault(key, [])
        history.append((self.sim.now, inquiring))
        if len(history) > 16:
            cutoff = self.sim.now - self._HISTORY_HORIZON_S
            while len(history) > 2 and history[1][0] < cutoff:
                history.pop(0)

    def is_inquiring(self, node_id: str, tech: Technology) -> bool:
        """True while the node is scanning on ``tech``."""
        return (node_id, tech.name) in self._inquiring

    def is_discoverable(self, node_id: str, tech: Technology) -> bool:
        """Can an inquiry find this node right now?

        Bluetooth's asymmetric discovery (§3.4.2): a node that is itself
        inquiring cannot be discovered.
        """
        if not self.supports(node_id, tech):
            return False
        if tech.discoverable_while_inquiring:
            return True
        return not self.is_inquiring(node_id, tech)

    def max_discoverable_gap(self, node_id: str, tech: Technology,
                             window_start: float,
                             window_end: float) -> float:
        """Longest contiguous non-inquiring stretch inside the window.

        For technologies that stay discoverable while scanning this is the
        whole window.  For Bluetooth it walks the inquiry toggle log: a
        peer can only answer our inquiry during its own idle gaps, and the
        inquiry protocol needs a minimum contiguous gap to complete the
        exchange (``tech.response_window_s``).
        """
        if window_end < window_start:
            raise ValueError("window end before start")
        if tech.discoverable_while_inquiring:
            return window_end - window_start
        key = (node_id, tech.name)
        history = self._inquiry_history.get(key, [])
        # State at window_start: last toggle at or before it (default: not
        # inquiring — nodes boot idle).
        inquiring = False
        for when, became in history:
            if when > window_start:
                break
            inquiring = became
        longest = 0.0
        gap_start = None if inquiring else window_start
        for when, became in history:
            if when <= window_start:
                continue
            if when >= window_end:
                break
            if became and gap_start is not None:
                longest = max(longest, when - gap_start)
                gap_start = None
            elif not became and gap_start is None:
                gap_start = when
        if gap_start is not None:
            longest = max(longest, window_end - gap_start)
        return longest

    def heard_during_scan(self, node_id: str, tech: Technology,
                          window_start: float, window_end: float) -> bool:
        """Would an inquiry over the window have heard this node?"""
        gap = self.max_discoverable_gap(node_id, tech, window_start,
                                        window_end)
        return gap >= tech.response_window_s

    def discoverable_neighbors(self, node_id: str,
                               tech: Technology) -> list[str]:
        """Nodes in range on ``tech`` that an inquiry would find now."""
        if not self.supports(node_id, tech):
            return []
        found = []
        for other_id in self.node_ids():
            if other_id == node_id:
                continue
            if not self.in_range(node_id, other_id, tech):
                continue
            if not self.is_discoverable(other_id, tech):
                continue
            found.append(other_id)
        return found

    def neighbors(self, node_id: str, tech: Technology) -> list[str]:
        """All nodes in range on ``tech`` (ignoring discoverability)."""
        return [other_id for other_id in self.node_ids()
                if other_id != node_id
                and self.in_range(node_id, other_id, tech)]
