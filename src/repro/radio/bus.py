"""The connectivity-event bus: predicted crossings as scheduled events.

Where the seed stack *polled* — the handover monitor sampled link quality
every second, links discovered breakage on the next frame — this bus asks
the :class:`~repro.radio.contacts.ContactSolver` for the next crossing of
interest and schedules exactly one kernel event at that instant
(:meth:`~repro.sim.kernel.Simulator.call_at`).  Kernel wakeups for link
maintenance then scale with how often connectivity actually *changes*,
not with ``N × poll-rate``.

Watches
-------
A :class:`Watch` observes one (pair, technology) for either range-ring
flips (LinkUp/LinkDown) or quality-threshold flips (QualityAbove/
QualityBelow).  Repeating watches re-arm after every firing (contact
traces); one-shot watches complete on their first firing (a link's
scheduled break, a monitor's next-low wake-up).

Invalidation rules (the part polling got for free):

* **node removed / powered off** — :meth:`ConnectivityBus.cancel_node`
  cancels every watch naming the node; an already-scheduled kernel event
  fires as a no-op.  Wired into ``World.remove_node``.
* **quality override installed or cleared** — the closed-form prediction
  is stale; :meth:`ConnectivityBus.invalidate_pair` re-predicts every
  watch on the pair.  Wired into ``World.set_quality_override``.
* **mobility segment rollover** — predictions only look ``horizon_s``
  ahead (random-waypoint legs are generated lazily); a window with no
  crossing re-arms at the horizon.  Pairs that are *settled* (both
  models constant forever — static scenarios) park instead: zero
  events, ever.

Counters (``world.stats.bus``, a :class:`~repro.metrics.counters.
BusCounters`) record scheduled / fired / cancelled / rescheduled — the
scale benchmarks assert on them.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.radio.contacts import ContactSolver, Crossing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.technologies import Technology
    from repro.radio.world import World
    from repro.sim.kernel import ScheduledCall

#: Event kinds.
LINK_UP = "link-up"
LINK_DOWN = "link-down"
QUALITY_ABOVE = "quality-above"
QUALITY_BELOW = "quality-below"

#: Sentinel for "no precomputed prediction" — ``None`` is a meaningful
#: prediction result (no crossing before the horizon), so the batch
#: registration path needs a distinct marker for "ask the solver".
_NO_PREDICTION = object()


@dataclasses.dataclass(frozen=True)
class ConnectivityEvent:
    """One fired connectivity prediction.

    ``node_a < node_b`` (pairs are unordered); ``threshold`` is set only
    for quality events.  ``time`` is the crossing instant in sim-seconds.
    """

    time: float
    kind: str
    node_a: str
    node_b: str
    tech: str
    threshold: int | None = None

    def pair(self) -> tuple[str, str]:
        return (self.node_a, self.node_b)


class Watch:
    """One armed observation; returned by the ``watch_*`` methods."""

    __slots__ = ("bus", "watch_id", "node_a", "node_b", "tech", "threshold",
                 "callback", "on_cancel", "once", "only_kind", "active",
                 "last_fired", "_handle")

    def __init__(self, bus: "ConnectivityBus", watch_id: int, node_a: str,
                 node_b: str, tech: "Technology", threshold: int | None,
                 callback: typing.Callable[[ConnectivityEvent], None],
                 on_cancel: typing.Callable[[], None] | None,
                 once: bool, only_kind: str | None):
        self.bus = bus
        self.watch_id = watch_id
        self.node_a = node_a
        self.node_b = node_b
        self.tech = tech
        self.threshold = threshold
        self.callback = callback
        self.on_cancel = on_cancel
        self.once = once
        self.only_kind = only_kind
        self.active = True
        self.last_fired: ConnectivityEvent | None = None
        self._handle: "ScheduledCall | None" = None

    @property
    def armed(self) -> bool:
        """True while a kernel event is scheduled for this watch."""
        return self._handle is not None and not self._handle.cancelled

    def cancel(self) -> None:
        """Convenience for :meth:`ConnectivityBus.cancel`."""
        self.bus.cancel(self)


class ConnectivityBus:
    """Deterministic scheduler of predicted connectivity events."""

    def __init__(self, world: "World",
                 solver: ContactSolver | None = None):
        self.world = world
        self.sim = world.sim
        self.solver = solver or ContactSolver(world)
        self.stats = world.stats.bus
        self._watches: dict[int, Watch] = {}
        self._by_node: dict[str, set[int]] = {}
        # Watches held because an endpoint is suspended (crash faults):
        # alive but unscheduled until resume_node re-arms them.
        self._held: set[int] = set()
        self._next_id = 1
        # Passive taps (telemetry): notified of every fired event but
        # invisible to BusCounters and unable to affect scheduling, so
        # attaching a recorder cannot perturb any watch-count metric.
        self._taps: list[typing.Callable[[ConnectivityEvent], None]] = []

    # ------------------------------------------------------------------
    # watch registration
    # ------------------------------------------------------------------
    def watch_link(self, node_a: str, node_b: str, tech: "Technology",
                   callback: typing.Callable[[ConnectivityEvent], None],
                   on_cancel: typing.Callable[[], None] | None = None,
                   ) -> Watch:
        """Repeating watch: fire at every LinkUp/LinkDown of the pair.

        Registration is O(P) in the pair's mobility segments over one
        prediction horizon (the arm-time closed-form solve); each
        firing re-arms at the same cost.  ``callback`` receives the
        :class:`ConnectivityEvent` *at* the crossing instant (kernel
        time equals ``event.time``).  ``on_cancel`` fires exactly once
        if the watch is invalidated (node removed, explicit
        :meth:`cancel`) — the contact-trace recorder and the DTN
        overlay use it to observe churn.  Steady-state cost for a
        settled pair is zero: the watch parks.
        """
        return self._register(node_a, node_b, tech, None, callback,
                              on_cancel, once=False, only_kind=None)

    def watch_link_down(self, node_a: str, node_b: str, tech: "Technology",
                        callback: typing.Callable[
                            [ConnectivityEvent], None],
                        on_cancel: typing.Callable[[], None] | None = None,
                        ) -> Watch:
        """One-shot watch: fire once at the pair's next LinkDown.

        Used by :class:`~repro.radio.channel.Link` to break at the
        scheduled instant the endpoints leave coverage.  O(P) to arm
        (see :meth:`watch_link`); intermediate LinkUp flips are skipped
        inside the same arm call, never scheduled.  The watch
        deactivates itself after firing — cancelling it afterwards is a
        harmless no-op.
        """
        return self._register(node_a, node_b, tech, None, callback,
                              on_cancel, once=True, only_kind=LINK_DOWN)

    def watch_quality_below(self, node_a: str, node_b: str,
                            tech: "Technology", threshold: int,
                            callback: typing.Callable[
                                [ConnectivityEvent], None],
                            on_cancel: typing.Callable[[], None]
                            | None = None) -> Watch:
        """One-shot watch: fire when quality next reads below threshold.

        ``threshold`` is on the paper's 0–255 quality scale.  If the
        pair's quality is *already* below the threshold the event fires
        on the next kernel step at the current instant — callers need
        no pre-check.  Pure-geometry pairs invert the threshold to a
        distance ring and arm in O(P) closed form; pairs under a
        quality override fall back to guarded bisection
        (O(horizon / step) predicate samples per arm) and never park,
        since an override is not a function of geometry.  Used by the
        event-driven handover monitor.
        """
        if not 0 <= threshold <= 255:
            raise ValueError(f"threshold out of range: {threshold}")
        return self._register(node_a, node_b, tech, threshold, callback,
                              on_cancel, once=True, only_kind=QUALITY_BELOW)

    def watch_links_batch(self, pairs: typing.Sequence[tuple[str, str]],
                          tech: "Technology",
                          callback: typing.Callable[
                              [ConnectivityEvent], None],
                          on_cancel: typing.Callable[[], None] | None = None,
                          profiler=None) -> list[Watch]:
        """Register one repeating link watch per pair, batch-predicted.

        Behaviourally identical to calling :meth:`watch_link` in a loop
        — same watches, same scheduled events, same counters — but the
        arm-time predictions for all pairs are solved as one array
        program (:meth:`~repro.radio.contacts.ContactSolver.
        next_link_crossings_batch`) instead of one closed-form solve per
        registration.  A fresh link watch consumes exactly its first
        prediction (nothing to dedup or filter yet), so substituting the
        batch-solved crossing into the arm loop is exact.  O(total
        segments) for the whole batch; the dominant cost of spinning up
        a large scenario's contact plane.  ``profiler``, when given,
        buckets the solve under ``vector-solve``.
        """
        crossings = self.solver.next_link_crossings_batch(
            pairs, tech, profiler=profiler)
        watches = []
        for (node_a, node_b), crossing in zip(pairs, crossings):
            watches.append(self._register(
                node_a, node_b, tech, None, callback, on_cancel,
                once=False, only_kind=None, precomputed=crossing))
        return watches

    def _register(self, node_a: str, node_b: str, tech: "Technology",
                  threshold: int | None,
                  callback: typing.Callable[[ConnectivityEvent], None],
                  on_cancel: typing.Callable[[], None] | None,
                  once: bool, only_kind: str | None,
                  precomputed=_NO_PREDICTION) -> Watch:
        first, second = sorted((node_a, node_b))
        watch = Watch(self, self._next_id, first, second, tech, threshold,
                      callback, on_cancel, once, only_kind)
        self._next_id += 1
        self._watches[watch.watch_id] = watch
        self._by_node.setdefault(first, set()).add(watch.watch_id)
        self._by_node.setdefault(second, set()).add(watch.watch_id)
        self._arm(watch, precomputed)
        return watch

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def cancel(self, watch: Watch) -> None:
        """Cancel a watch; its pending kernel event becomes a no-op.

        Idempotent; O(1) (heap entries cannot be deleted, so the
        scheduled callback is nulled instead — see
        :class:`~repro.sim.kernel.ScheduledCall`).  Fires the watch's
        ``on_cancel`` hook (the handover monitor uses it to wake from a
        predictive sleep and re-examine its connection; the DTN overlay
        uses it to notice churn).
        """
        if not watch.active:
            return
        watch.active = False
        if watch._handle is not None:
            watch._handle.cancel()
            watch._handle = None
        self._forget(watch)
        self.stats.cancelled += 1
        if watch.on_cancel is not None:
            watch.on_cancel()

    def cancel_node(self, node_id: str) -> int:
        """Cancel every watch naming ``node_id``; returns how many.

        Called by ``World.remove_node`` so no contact or quality event
        for a powered-off/removed node can ever fire — the stale-state
        guarantee every consumer (links, monitors, recorders, the DTN
        forwarder) leans on.  O(W log W) for W watches naming the node
        (sorted for deterministic ``on_cancel`` ordering).  A node
        re-added later under the same id starts with no watches.
        """
        watch_ids = self._by_node.pop(node_id, set())
        cancelled = 0
        for watch_id in sorted(watch_ids):
            watch = self._watches.get(watch_id)
            if watch is not None and watch.active:
                self.cancel(watch)
                cancelled += 1
        return cancelled

    def invalidate_pair(self, node_a: str, node_b: str,
                        tech: "Technology") -> None:
        """Re-predict every watch on the pair (quality override changed).

        Wired into ``World.set_quality_override``: the outstanding
        schedule was computed against the old quality function and is
        silently wrong, so each matching watch's pending event is
        cancelled and the watch re-armed from the current instant.
        O(W_a ∩ W_b) plus one re-prediction per affected watch; counted
        in ``stats.rescheduled``.  Watches on other technologies of the
        same pair are untouched.
        """
        first, second = sorted((node_a, node_b))
        ids = self._by_node.get(first, set()) & self._by_node.get(
            second, set())
        for watch_id in sorted(ids):
            watch = self._watches.get(watch_id)
            if (watch is None or not watch.active
                    or watch.tech.name != tech.name):
                continue
            if watch._handle is not None:
                watch._handle.cancel()
                watch._handle = None
            self.stats.rescheduled += 1
            self._arm(watch)

    def suspend_node(self, node_id: str) -> int:
        """Hold every watch naming a suspended node; close its contacts.

        Called by ``World.suspend_node`` *after* the node is flagged
        suspended.  Unlike :meth:`cancel_node`, the watches survive:
        each pending kernel event is cancelled and the watch parks in
        the held set until :meth:`resume_node`.  Pairs that were in
        range at the suspension instant (pre-fault geometry, via
        ``World.in_range_raw``) get one synthetic LinkDown so consumers
        — links, DTN overlays, trace recorders — observe the outage as
        an ordinary connectivity event; quality one-shots whose reading
        just dropped to 0 below their threshold fire likewise.  Returns
        the number of watches held; O(W log W) for W watches naming the
        node.
        """
        world = self.world
        held = 0
        for watch_id in sorted(self._by_node.get(node_id, set())):
            watch = self._watches.get(watch_id)
            if watch is None or not watch.active:
                continue
            if watch._handle is not None:
                watch._handle.cancel()
                watch._handle = None
            self._held.add(watch_id)
            held += 1
            other = (watch.node_b if watch.node_a == node_id
                     else watch.node_a)
            if world.is_suspended(other):
                continue  # the pair was already dark — no edge to report
            if watch.threshold is None:
                if (watch.only_kind in (None, LINK_DOWN)
                        and world.in_range_raw(watch.node_a, watch.node_b,
                                               watch.tech)):
                    self._deliver_synthetic(watch, LINK_DOWN)
            elif watch.only_kind == QUALITY_BELOW and watch.threshold > 0:
                # The suspended pair now reads quality 0 — below any
                # positive threshold.
                self._deliver_synthetic(watch, QUALITY_BELOW)
        return held

    def resume_node(self, node_id: str) -> int:
        """Re-arm watches held for a node that just resumed.

        Called by ``World.resume_node`` *after* the suspension flag is
        cleared.  Watches whose other endpoint is still suspended stay
        held.  Repeating link watches whose pair is back in range fire
        one synthetic LinkUp before re-arming — a settled in-range pair
        would otherwise never produce the reopening edge (the same
        reasoning as the DTN overlay's seeded contacts).  Returns the
        number re-armed; each re-arm counts ``rescheduled``.
        """
        world = self.world
        resumed = 0
        for watch_id in sorted(self._held
                               & self._by_node.get(node_id, set())):
            watch = self._watches.get(watch_id)
            if watch is None or not watch.active:
                self._held.discard(watch_id)
                continue
            if (world.is_suspended(watch.node_a)
                    or world.is_suspended(watch.node_b)):
                continue  # held until the other endpoint returns too
            self._held.discard(watch_id)
            if (watch.threshold is None and not watch.once
                    and world.in_range(watch.node_a, watch.node_b,
                                       watch.tech)):
                self._deliver_synthetic(watch, LINK_UP)
                if not watch.active:
                    continue
            self.stats.rescheduled += 1
            self._arm(watch)
            resumed += 1
        return resumed

    def _deliver_synthetic(self, watch: Watch, kind: str) -> None:
        """Fire a watch at the current instant, outside the predictor.

        Suspension and resume edges are not geometric crossings — the
        solver cannot predict them — so the bus synthesises the event
        directly.  Counted ``fired`` (preserving the forwarder's
        ``wakeups ≤ bus fired`` invariant); once-watches complete
        exactly as from a predicted firing.  The caller decides whether
        to re-arm afterwards.
        """
        event = ConnectivityEvent(self.sim.now, kind, watch.node_a,
                                  watch.node_b, watch.tech.name,
                                  watch.threshold)
        watch.last_fired = event
        self.stats.fired += 1
        for tap in self._taps:
            tap(event)
        if watch.once:
            watch.active = False
            self._forget(watch)
        watch.callback(event)

    def _forget(self, watch: Watch) -> None:
        self._held.discard(watch.watch_id)
        self._watches.pop(watch.watch_id, None)
        for node_id in (watch.node_a, watch.node_b):
            members = self._by_node.get(node_id)
            if members is not None:
                members.discard(watch.watch_id)
                if not members:
                    del self._by_node[node_id]

    # ------------------------------------------------------------------
    # prediction → schedule → fire
    # ------------------------------------------------------------------
    #: Two same-kind events of one watch closer than this are float noise
    #: from re-solving at a root, not a physical re-crossing.
    _DEDUP_TOL_S = 1e-6

    def _predict(self, watch: Watch,
                 t0: float | None) -> Crossing | None:
        if watch.threshold is None:
            return self.solver.next_link_crossing(
                watch.node_a, watch.node_b, watch.tech, t0=t0)
        if t0 is None and watch.only_kind == QUALITY_BELOW:
            quality = self.world.link_quality_at(
                watch.node_a, watch.node_b, watch.tech, self.sim.now)
            if quality < watch.threshold:
                # Already below at arm time: fire at the current instant.
                return Crossing(self.sim.now, inside=False)
        return self.solver.next_quality_crossing(
            watch.node_a, watch.node_b, watch.tech, watch.threshold, t0=t0)

    def _kind_of(self, watch: Watch, crossing: Crossing) -> str:
        if watch.threshold is None:
            return LINK_UP if crossing.inside else LINK_DOWN
        return QUALITY_ABOVE if crossing.inside else QUALITY_BELOW

    def _schedule_rearm(self, watch: Watch) -> None:
        horizon_end = self.sim.now + self.solver.horizon_s
        watch._handle = self.sim.call_at(
            horizon_end, lambda w=watch: self._rearm(w),
            name=f"bus-rearm#{watch.watch_id}")
        self.stats.rescheduled += 1

    def _can_park(self, watch: Watch) -> bool:
        """True when a crossing-free window means *no crossing, ever*.

        Settled geometry (both mobility models constant forever) parks
        link watches outright — but a quality watch whose pair carries a
        time-varying override is not a function of geometry at all: its
        crossing may simply lie beyond the horizon, so it must keep
        re-checking.
        """
        if watch.threshold is not None and self.world.has_override(
                watch.node_a, watch.node_b, watch.tech):
            return False
        return self.solver.pair_settled(watch.node_a, watch.node_b,
                                        self.sim.now)

    def _arm(self, watch: Watch, precomputed=_NO_PREDICTION) -> None:
        if (self.world.is_suspended(watch.node_a)
                or self.world.is_suspended(watch.node_b)):
            # A suspended endpoint has no physics worth predicting (its
            # quality is pinned at 0): hold the watch; resume_node
            # re-arms it.  Catches re-registrations and pair
            # invalidations that race with an outage.
            self._held.add(watch.watch_id)
            watch._handle = None
            return
        t0: float | None = None  # None = predict from the current instant
        for _attempt in range(8):
            if precomputed is not _NO_PREDICTION:
                # Batch registration pre-solved this watch's first
                # prediction (identical to _predict at t0=None); any
                # further attempt in this loop re-asks the solver.
                crossing = precomputed
                precomputed = _NO_PREDICTION
            else:
                crossing = self._predict(watch, t0)
            if crossing is None:
                if self._can_park(watch):
                    watch._handle = None  # parked: no crossing, ever
                    return
                self._schedule_rearm(watch)
                return
            kind = self._kind_of(watch, crossing)
            last = watch.last_fired
            if (last is not None and kind == last.kind
                    and crossing.time <= last.time + self._DEDUP_TOL_S):
                t0 = last.time + self._DEDUP_TOL_S
                continue
            if watch.only_kind is not None and kind != watch.only_kind:
                # Filtered flip (e.g. a LinkUp on a link-down watch):
                # step past it and keep looking within this arm call.
                t0 = crossing.time
                continue
            event = ConnectivityEvent(
                crossing.time, kind, watch.node_a, watch.node_b,
                watch.tech.name, watch.threshold)
            watch._handle = self.sim.call_at(
                max(self.sim.now, crossing.time),
                lambda w=watch, e=event: self._fire(w, e),
                name=f"bus#{watch.watch_id}:{kind}")
            self.stats.scheduled += 1
            return
        # Degenerate prediction churn: fall back to a horizon re-check.
        self._schedule_rearm(watch)

    def _rearm(self, watch: Watch) -> None:
        if watch.active:
            watch._handle = None
            self._arm(watch)

    def _fire(self, watch: Watch, event: ConnectivityEvent) -> None:
        if not watch.active:
            return
        watch._handle = None
        watch.last_fired = event
        self.stats.fired += 1
        for tap in self._taps:
            tap(event)
        if watch.once:
            watch.active = False
            self._forget(watch)
            watch.callback(event)
            return
        watch.callback(event)
        if watch.active:
            self._arm(watch)

    # ------------------------------------------------------------------
    # passive taps (telemetry)
    # ------------------------------------------------------------------
    def add_tap(self,
                tap: typing.Callable[[ConnectivityEvent], None]) -> None:
        """Register a passive observer of every fired event.

        Taps see the :class:`ConnectivityEvent` *before* the owning
        watch's callback runs and never touch counters, watches or the
        kernel — the telemetry plane's non-perturbation contract.
        """
        self._taps.append(tap)

    def remove_tap(self,
                   tap: typing.Callable[[ConnectivityEvent], None]) -> None:
        """Unregister a tap (no-op if absent)."""
        try:
            self._taps.remove(tap)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def active_watches(self) -> int:
        """Number of live watches (armed or parked)."""
        return len(self._watches)
