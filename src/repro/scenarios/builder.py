"""The Scenario facade: one object wiring simulator + world + fabric.

Everything in ``examples/`` and ``benchmarks/`` goes through this::

    scenario = Scenario(seed=7)
    pc = scenario.add_node("pc", position=(0, 0), mobility_class="static")
    phone = scenario.add_node("phone", position=(5, 0))
    scenario.start_all()
    scenario.run(until=120)

Units follow the rest of the stack: positions and distances in metres,
all times in sim-seconds (the simulator's virtual clock).  Nodes may be
added — and, for churn scenarios, removed — while the simulation runs.
"""

from __future__ import annotations

import typing

from repro.core.config import DaemonConfig
from repro.core.fabric import Fabric
from repro.core.node import PeerHoodNode
from repro.metrics.counters import TrafficMeter
from repro.metrics.trace import EventTrace
from repro.mobility.base import MobilityModel
from repro.mobility.static import StaticPosition
from repro.obs import runtime as obs_runtime
from repro.radio.quality import QualityModel
from repro.radio.world import World
from repro.sim.kernel import Simulator


class Scenario:
    """A complete simulation environment with named PeerHood nodes."""

    def __init__(self, seed: int = 0,
                 quality_model: QualityModel | None = None):
        self.sim = Simulator(seed=seed)
        self.world = World(self.sim, quality_model=quality_model)
        self.fabric = Fabric(self.world)
        self.nodes: dict[str, PeerHoodNode] = {}
        # Telemetry adoption: when the experiments runner activated a
        # recording context in this process (--telemetry), every
        # scenario built under it gets a passive recorder.  Recorders
        # observe only — recorded metrics stay byte-identical.
        context = obs_runtime.active()
        if context is not None:
            context.adopt(self)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, name: str,
                 position: tuple[float, float] | None = None,
                 mobility: MobilityModel | None = None,
                 technologies: typing.Sequence[str] = ("bluetooth",),
                 mobility_class: str = "dynamic",
                 config: DaemonConfig | None = None) -> PeerHoodNode:
        """Add a PeerHood device (allowed mid-run for churn scenarios).

        Give either ``position`` (a static point, metres) or ``mobility``
        (any mobility model); ``mobility`` wins when both are supplied.
        The node is registered in the radio world — including any
        already-built spatial grids for its technologies — but its daemon
        is *not* started (call ``node.start()`` or :meth:`start_all`).
        O(1) plus one grid insert per carried technology.
        """
        if mobility is None:
            if position is None:
                raise ValueError(
                    f"node {name!r} needs a position or a mobility model")
            mobility = StaticPosition(*position)
        node = PeerHoodNode(self.fabric, name, mobility,
                            technologies=technologies,
                            mobility_class=mobility_class,
                            config=config)
        self.nodes[name] = node
        return node

    def remove_node(self, name: str) -> None:
        """Power a device off and drop it from the scenario (mid-run safe).

        The daemon stops, the node leaves the fabric registry and the
        radio world (spatial-grid entries and quality overrides naming it
        are evicted — see :meth:`repro.radio.world.World.remove_node`).
        Other nodes simply observe it falling out of range; their storage
        entries age out over the following discovery loops.  O(grids +
        overrides).  Raises ``KeyError`` for an unknown name.
        """
        try:
            node = self.nodes.pop(name)
        except KeyError:
            raise KeyError(f"unknown scenario node: {name!r}") from None
        node.power_off()

    def node(self, name: str) -> PeerHoodNode:
        """Look up a node by name.  O(1); ``KeyError`` if absent."""
        return self.nodes[name]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start_all(self) -> None:
        """Start every currently-added daemon (idempotent per daemon)."""
        for node in self.nodes.values():
            node.start()

    def run(self, until: float | None = None) -> None:
        """Advance the simulation to ``until`` (absolute sim-seconds), or
        drain the event heap when ``until`` is None."""
        self.sim.run(until=until)

    def run_process(self, generator: typing.Generator,
                    name: str = "scenario-process") -> object:
        """Spawn a process and run until it finishes; returns its value."""
        process = self.sim.spawn(generator, name=name)
        return self.sim.run(until=process)

    def settle_discovery(self, duration: float = 120.0) -> None:
        """Run ``duration`` sim-seconds — long enough, by default, for
        discovery to converge (several Bluetooth inquiry cycles)."""
        self.sim.run(until=self.sim.now + duration)

    def wait_for_route(self, from_name: str, to_name: str,
                       timeout_s: float = 600.0,
                       poll_s: float = 5.0) -> bool:
        """Advance the simulation until ``from_name`` has a route to
        ``to_name`` in its DeviceStorage (what a real application does by
        polling GetDeviceList before connecting).  ``timeout_s`` and
        ``poll_s`` are sim-seconds.  Returns False if the route never
        appeared within the timeout."""
        source = self.nodes[from_name]
        target_address = self.nodes[to_name].address

        def waiter(sim):
            deadline = sim.now + timeout_s
            while sim.now < deadline:
                if source.daemon.storage.get(target_address) is not None:
                    return True
                yield sim.timeout(poll_s)
            return False

        process = self.sim.spawn(waiter(self.sim), name="wait-for-route")
        return bool(self.sim.run(until=process))

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    @property
    def trace(self) -> EventTrace:
        """The shared event trace."""
        return self.fabric.trace

    @property
    def meter(self) -> TrafficMeter:
        """The shared traffic meter."""
        return self.fabric.meter

    def awareness(self, name: str) -> set[str]:
        """Node names this node currently knows about (any jump count).

        O(K) for K stored devices (address resolution is O(1) via the
        fabric index).
        """
        node = self.nodes[name]
        known = set()
        for device in node.daemon.storage.devices():
            peer = self.fabric.node_by_address(device.address)
            if peer is not None:
                known.add(peer.node_id)
        return known

    def awareness_fraction(self, name: str) -> float:
        """Fraction of the *other* PeerHood nodes this node knows about
        (1.0 for a singleton scenario).  O(K)."""
        others = len(self.nodes) - 1
        if others <= 0:
            return 1.0
        return len(self.awareness(name)) / others
