"""The Engine: PeerHood's incoming-connection listener (§2.2.2, §4.1).

"Engine is the PeerHood class which is continuously listening for possible
connections ... Once connection is recognized and accepted, it will proceed
to identify the connection intention to discover if they are new
connection, bridge connection or connection re-establish."

One engine per node (the paper's singleton).  For each accepted physical
link it reads the opening command frame and dispatches:

* ``PH_CONNECT`` — service lookup, ack, server-side connection object,
  application callback;
* ``PH_BRIDGE`` — handed to the hidden bridge service (Ch. 4);
* ``PH_RECONNECT`` — transport substitution under an existing server-side
  connection, identified by (client address, connection id) (§2.3).
"""

from __future__ import annotations

import typing

from repro.core.connection import PeerHoodConnection
from repro.core.protocol import (
    Ack,
    BridgeRequest,
    ConnectRequest,
    ReconnectRequest,
)
from repro.radio.channel import ChannelClosed, Link

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import PeerHoodNode

#: Application callback invoked with the accepted server-side connection.
#: It may return a generator, which the engine spawns as a process.
ServiceCallback = typing.Callable[[PeerHoodConnection], object]


class Engine:
    """Per-node listener and connection dispatcher."""

    def __init__(self, node: "PeerHoodNode"):
        self.node = node
        self.sim = node.sim
        self.fabric = node.fabric
        self._service_callbacks: dict[str, ServiceCallback] = {}
        self._server_connections: dict[
            tuple[str, int], PeerHoodConnection] = {}
        self.accepted = 0
        self.rejected = 0

    @property
    def node_id(self) -> str:
        return self.node.node_id

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def set_service_callback(self, service_name: str,
                             callback: ServiceCallback) -> None:
        """Attach the application handler for an advertised service."""
        self._service_callbacks[service_name] = callback

    def remove_service_callback(self, service_name: str) -> None:
        """Detach a service handler."""
        self._service_callbacks.pop(service_name, None)

    def server_connection(self, client_address: str,
                          connection_id: int) -> PeerHoodConnection | None:
        """Find a live server-side connection for reconnect handling."""
        return self._server_connections.get((client_address, connection_id))

    # ------------------------------------------------------------------
    # accept path
    # ------------------------------------------------------------------
    def accept(self, link: Link) -> None:
        """Called by the fabric when a peer established a link to us."""
        self.sim.spawn(self._handle_link(link),
                       name=f"engine:{self.node_id}:link{link.link_id}")

    def _handle_link(self, link: Link) -> typing.Generator:
        try:
            opening = yield link.receive(self.node_id)
        except ChannelClosed:
            return  # peer vanished before saying anything
        if isinstance(opening, ConnectRequest):
            yield from self._handle_connect(link, opening)
        elif isinstance(opening, BridgeRequest):
            yield from self.node.daemon.bridge_service.handle_request(
                link, opening)
        elif isinstance(opening, ReconnectRequest):
            self._handle_reconnect(link, opening)
        else:
            self.rejected += 1
            self.fabric.transmit(
                link, self.node_id,
                Ack(ok=False, reason=f"unexpected opening frame {opening!r}"),
                "control")
            # The requester closes the link on reading the error ack;
            # closing here would destroy the ack in flight.

    def _handle_connect(self, link: Link,
                        request: ConnectRequest) -> typing.Generator:
        record = self.node.daemon.registry.lookup(request.service_name)
        callback = self._service_callbacks.get(request.service_name)
        if record is None or callback is None:
            self.rejected += 1
            self.fabric.transmit(
                link, self.node_id,
                Ack(ok=False,
                    reason=f"service not found: {request.service_name!r}"),
                "control")
            return  # requester closes the link on reading the error ack
        connection = PeerHoodConnection(
            fabric=self.fabric,
            local_node_id=self.node_id,
            link=link,
            connection_id=request.connection_id,
            remote_address=request.client_params.address,
            service_name=request.service_name,
            remote_params=request.client_params,
            is_server_side=True,
        )
        key = (request.client_params.address, request.connection_id)
        self._server_connections[key] = connection
        self.accepted += 1
        self.fabric.transmit(link, self.node_id,
                             Ack(ok=True, port=record.port), "control")
        self.fabric.trace.record(
            self.sim.now, self.node_id, "connection-accepted",
            service=request.service_name,
            client=request.client_params.address,
            connection_id=request.connection_id)
        result = callback(connection)
        if hasattr(result, "send"):
            self.sim.spawn(
                result,
                name=f"service:{request.service_name}@{self.node_id}")
        # The handler process (if any) owns the connection from here on.

    def _handle_reconnect(self, link: Link,
                          request: ReconnectRequest) -> None:
        key = (request.client_params.address, request.connection_id)
        connection = self._server_connections.get(key)
        if connection is None or not connection.is_open:
            self.rejected += 1
            self.fabric.transmit(
                link, self.node_id,
                Ack(ok=False,
                    reason=f"no connection #{request.connection_id} "
                           f"from {request.client_params.address}"),
                "control")
            return  # requester closes the link on reading the error ack
        self.fabric.transmit(link, self.node_id, Ack(ok=True), "control")
        connection.replace_link(link)
        self.fabric.trace.record(
            self.sim.now, self.node_id, "connection-reestablished",
            connection_id=request.connection_id,
            client=request.client_params.address)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close_all(self) -> None:
        """Drop every server-side connection (daemon shutdown)."""
        for connection in list(self._server_connections.values()):
            connection.close("daemon stopping")
        self._server_connections.clear()
