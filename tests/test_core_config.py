"""Unit tests for configuration validation and defaults."""

import pytest

from repro.core.config import DaemonConfig, HandoverConfig, RoutingPolicy
from repro.radio.quality import PAPER_LOW_QUALITY_THRESHOLD


def test_routing_policy_paper_defaults():
    policy = RoutingPolicy()
    assert policy.quality_threshold == PAPER_LOW_QUALITY_THRESHOLD == 230
    assert policy.use_quality_threshold
    assert policy.use_mobility
    assert not policy.quality_first
    assert policy.prefer_static_bridges


def test_handover_config_paper_defaults():
    config = HandoverConfig()
    assert config.low_quality_threshold == 230  # Fig. 5.8 threshold
    assert config.low_count_limit == 3          # "bigger than three"
    assert config.monitor_interval_s == 1.0     # 1 unit per second decay
    assert config.respect_sending_flag          # §5.3


def test_handover_config_validation():
    with pytest.raises(ValueError):
        HandoverConfig(monitor_interval_s=0.0)
    with pytest.raises(ValueError):
        HandoverConfig(low_count_limit=0)


def test_daemon_config_defaults():
    config = DaemonConfig()
    assert config.bridge_enabled
    assert config.service_check_interval_loops >= 1
    assert config.unified_fetch
    assert isinstance(config.routing, RoutingPolicy)
    assert isinstance(config.handover, HandoverConfig)


def test_daemon_config_validation():
    with pytest.raises(ValueError):
        DaemonConfig(service_check_interval_loops=0)
    with pytest.raises(ValueError):
        DaemonConfig(stale_after_loops=0)
    with pytest.raises(ValueError):
        DaemonConfig(bridge_max_connections=-1)


def test_daemon_configs_do_not_share_nested_objects():
    first = DaemonConfig()
    second = DaemonConfig()
    assert first.routing is not second.routing
    assert first.handover is not second.handover
