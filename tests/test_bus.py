"""The connectivity-event bus: scheduling, invalidation, churn safety."""

import pytest

from repro.core.config import HandoverConfig
from repro.core.handover import HandoverThread
from repro.mobility import CorridorWalk, LinearMovement, StaticPosition
from repro.radio import BLUETOOTH, WLAN, Link, World
from repro.radio.bus import LINK_DOWN, LINK_UP, QUALITY_BELOW
from repro.scenarios import Scenario
from repro.sim import SimulationError, Simulator


def make_world(seed=1):
    sim = Simulator(seed=seed)
    return sim, World(sim)


# ----------------------------------------------------------------------
# kernel plumbing
# ----------------------------------------------------------------------
def test_call_at_runs_and_cancels():
    sim = Simulator(seed=0)
    ran = []
    sim.call_at(5.0, lambda: ran.append(sim.now))
    handle = sim.call_at(7.0, lambda: ran.append("cancelled-anyway"))
    handle.cancel()
    handle.cancel()  # idempotent
    sim.run()
    assert ran == [5.0]
    assert sim.now == 7.0  # the voided entry still drains off the heap
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)  # scheduling in the past


def test_kernel_counts_processed_events():
    sim = Simulator(seed=0)
    for delay in (1.0, 2.0, 3.0):
        sim.timeout(delay)
    sim.run()
    assert sim.events_processed == 3


# ----------------------------------------------------------------------
# watch lifecycle
# ----------------------------------------------------------------------
def test_repeating_link_watch_fires_alternating_events():
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    # Out 5 m -> 15 m (down at 10), back (up at 10), out again.
    from repro.mobility import PathMovement
    world.add_node("b", PathMovement([
        (0.0, (5.0, 0.0)), (10.0, (15.0, 0.0)), (20.0, (5.0, 0.0)),
        (30.0, (15.0, 0.0))]), [BLUETOOTH])
    events = []
    world.bus.watch_link("a", "b", BLUETOOTH, callback=events.append)
    sim.run(until=40.0)
    assert [e.kind for e in events] == [LINK_DOWN, LINK_UP, LINK_DOWN]
    assert [round(e.time, 6) for e in events] == [5.0, 15.0, 25.0]
    assert world.stats.bus.fired == 3


def test_settled_pair_watch_parks_without_events():
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(4, 0), [BLUETOOTH])
    events = []
    watch = world.bus.watch_link("a", "b", BLUETOOTH, callback=events.append)
    assert not watch.armed  # parked: nothing will ever cross
    sim.run(until=1000.0)
    assert events == []
    assert world.stats.bus.scheduled == 0


def test_quality_below_fires_immediately_when_already_low():
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(9.5, 0), [BLUETOOTH])  # edge zone
    events = []
    world.bus.watch_quality_below("a", "b", BLUETOOTH, 230,
                                  callback=events.append)
    sim.run(until=1.0)
    assert len(events) == 1
    assert events[0].kind == QUALITY_BELOW
    assert events[0].time == 0.0


def test_override_crossing_beyond_horizon_is_still_detected():
    """A settled pair with a slow decay must not park the quality watch:
    the crossing lies past the prediction horizon, so the watch has to
    keep re-checking at rollover instead of sleeping forever."""
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(4, 0), [BLUETOOTH])
    # round(255 - 0.04 t) < 230 from t = 637.5 — past the 600 s horizon.
    world.install_linear_decay("a", "b", BLUETOOTH, initial_quality=255,
                               decay_per_second=0.04)
    events = []
    world.bus.watch_quality_below("a", "b", BLUETOOTH, 230,
                                  callback=events.append)
    sim.run(until=2000.0)
    assert len(events) == 1
    assert events[0].time == pytest.approx(637.5, abs=1e-3)
    assert world.stats.bus.rescheduled >= 1  # horizon rollover re-check


def test_override_change_invalidates_and_reschedules():
    """Installing a decay after the watch armed re-predicts the crossing."""
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(4.0, 0), [BLUETOOTH])
    events = []
    world.bus.watch_quality_below("a", "b", BLUETOOTH, 230,
                                  callback=events.append)
    assert events == []  # plateau quality 255: parked
    world.install_linear_decay("a", "b", BLUETOOTH, initial_quality=240)
    assert world.stats.bus.rescheduled >= 1
    sim.run(until=60.0)
    assert len(events) == 1
    assert events[0].time == pytest.approx(10.5, abs=1e-6)


# ----------------------------------------------------------------------
# churn: no event for a dead node ever fires (satellite)
# ----------------------------------------------------------------------
def test_no_event_fires_for_removed_node():
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", LinearMovement((5.0, 0.0), (1.0, 0.0)), [BLUETOOTH])
    events = []
    world.bus.watch_link("a", "b", BLUETOOTH, callback=events.append)
    sim.run(until=2.0)         # crossing predicted for t=5
    world.remove_node("b")     # powered off before it happens
    assert world.stats.bus.cancelled >= 1
    sim.run(until=100.0)       # run far past the predicted instant
    assert events == []
    assert world.stats.bus.fired == 0


def test_power_off_cancels_pending_contact_events():
    """PeerHoodNode.power_off cancels bus watches via World.remove_node."""
    scenario = Scenario(seed=5)
    scenario.add_node("anchor", position=(0, 0), mobility_class="static")
    scenario.add_node(
        "walker",
        mobility=CorridorWalk((5.0, 0.0), heading_deg=0.0, depart_time=10.0),
        mobility_class="dynamic")
    events = []
    scenario.world.bus.watch_link("anchor", "walker", BLUETOOTH,
                                  callback=events.append)
    scenario.run(until=5.0)
    scenario.node("walker").power_off()
    cancelled_before = scenario.world.stats.bus.cancelled
    assert cancelled_before >= 1
    scenario.run(until=120.0)  # walker would have left range at ~13.6 s
    assert events == []
    assert scenario.world.stats.bus.fired == 0


def test_scenario_remove_node_churn_cancels_monitor_watch():
    """A sleeping event-driven monitor wakes and exits on peer removal."""
    scenario = Scenario(seed=6)
    anchor = scenario.add_node("anchor", position=(0, 0),
                               mobility_class="static")
    peer = scenario.add_node("peer", position=(4.0, 0),
                             mobility_class="static")
    link = Link(scenario.world, "anchor", "peer", BLUETOOTH)
    from repro.core.connection import PeerHoodConnection
    connection = PeerHoodConnection(
        fabric=scenario.fabric, local_node_id="anchor", link=link,
        connection_id=1, remote_address=peer.address, service_name="t")
    thread = HandoverThread(anchor.library, connection,
                            config=HandoverConfig(event_driven=True)).start()
    scenario.run(until=10.0)
    assert thread.monitor_wakeups == 0  # plateau: predictive sleep
    scenario.remove_node("peer")
    # The removal cancelled the monitor's sleep watch; the monitor wakes,
    # reads quality 0 (peer gone) and proceeds through its low counter.
    scenario.run(until=20.0)
    assert thread.monitor_wakeups > 0
    lows = scenario.trace.events("signal-low")
    assert lows and lows[0].detail["quality"] == 0


# ----------------------------------------------------------------------
# scheduled link breaks
# ----------------------------------------------------------------------
def test_idle_link_breaks_at_scheduled_instant():
    """No traffic needed: the link goes down when coverage is lost."""
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", LinearMovement((5.0, 0.0), (1.0, 0.0)), [BLUETOOTH])
    link = Link(world, "a", "b", BLUETOOTH)
    sim.run(until=4.999)
    assert link.is_open
    sim.run(until=5.001)
    assert not link.is_open  # broke at t=5 with zero frames exchanged


def test_scheduled_break_wakes_blocked_receiver():
    from repro.radio.channel import ChannelClosed
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [WLAN])
    world.add_node("b", LinearMovement((30.0, 0.0), (2.0, 0.0)), [WLAN])
    link = Link(world, "a", "b", WLAN)
    outcomes = []

    def receiver(sim, link):
        try:
            yield link.receive("a")
        except ChannelClosed:
            outcomes.append(sim.now)

    sim.spawn(receiver(sim, link))
    sim.run(until=60.0)
    assert outcomes == [10.0]  # 30 + 2t = 50 -> t = 10


def test_closed_link_cancels_its_down_watch():
    sim, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", LinearMovement((5.0, 0.0), (1.0, 0.0)), [BLUETOOTH])
    link = Link(world, "a", "b", BLUETOOTH)
    link.close()
    assert world.stats.bus.cancelled >= 1
    assert world.bus.active_watches() == 0
