"""The radio world: node positions, range queries, link quality.

One :class:`World` instance per simulation holds every radio-equipped node.
Positions come from mobility models evaluated at the simulator clock, so the
world never needs periodic "move" events.  The world also hosts two pieces
of behavioural fault injection used by the paper's experiments:

* *inquiry marking* — Bluetooth devices that are scanning are undiscoverable
  (§3.4.2); plugins mark themselves while inquiring;
* *quality overrides* — the Fig. 5.8 handover simulation artificially decays
  the monitored link quality by one unit per second; overrides replace the
  physical model for chosen pairs.

Scaling: neighbor enumeration is served by per-technology
:class:`~repro.radio.spatial.SpatialGrid` indexes (cell side = coverage
radius), so one discovery round costs O(N · neighbors) distance checks
instead of the seed's O(N²) pairwise scan.  Because positions are pure
functions of virtual time, the grids are refreshed *lazily*: the first
query after the clock advances re-buckets the mobile nodes, and every
further query in the same instant reuses the synced index.  Units
throughout: metres for distance, sim-seconds (virtual seconds) for time.
"""

from __future__ import annotations

import typing

from repro.mobility.base import MobilityModel, Point, distance
from repro.radio.bus import ConnectivityBus
from repro.radio.contacts import ContactSolver
from repro.radio.quality import PiecewiseLinearQuality, QualityModel
from repro.radio.spatial import SpatialGrid, WorldStats
from repro.radio.technologies import Technology, get_technology

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

#: Signature of a quality override: virtual time → quality (0–255) or None
#: to fall back to the physical model.
QualityOverride = typing.Callable[[float], typing.Optional[int]]


class WorldNode:
    """A radio-equipped node: identity, mobility and fitted technologies."""

    def __init__(self, node_id: str, mobility: MobilityModel,
                 technologies: frozenset[str]):
        self.node_id = node_id
        self.mobility = mobility
        self.technologies = technologies

    def __repr__(self) -> str:
        techs = ",".join(sorted(self.technologies))
        return f"<WorldNode {self.node_id} [{techs}]>"


class World:
    """Container of nodes plus geometry and link-quality queries.

    The world is the single source of physical truth: every range,
    neighbor and quality question the middleware asks goes through here.
    ``stats`` (a :class:`~repro.radio.spatial.WorldStats`) counts distance
    computations and grid activity for the scale benchmarks.
    """

    def __init__(self, sim: "Simulator",
                 quality_model: QualityModel | None = None):
        self.sim = sim
        self.quality_model = quality_model or PiecewiseLinearQuality()
        self._nodes: dict[str, WorldNode] = {}
        self._overrides: dict[tuple[str, str, str], QualityOverride] = {}
        self._inquiring: set[tuple[str, str]] = set()
        # Toggle log per (node, tech): (time, became_inquiring) pairs, used
        # by the interval-overlap discoverability query.  Pruned explicitly
        # on clock advance (see _maybe_prune_history) and on remove_node.
        self._inquiry_history: dict[
            tuple[str, str], list[tuple[float, bool]]] = {}
        # One spatial grid per technology name, built lazily on the first
        # neighbor query for that technology and synced to ``_grid_synced``.
        self._grids: dict[str, SpatialGrid] = {}
        self._grid_synced: dict[str, float] = {}
        #: Monotone membership-change counter: bumped whenever the set of
        #: physically present nodes changes (add/remove/suspend/resume).
        #: The batch geometry engines (:mod:`repro.radio.vectorized`) key
        #: their compiled row tables on it — piece *expiry* is cheap and
        #: per-row, membership changes force a rebuild.
        self.geometry_epoch = 0
        # One batch engine per technology, built lazily by vector_engine.
        self._vector_engines: dict[str, "typing.Any"] = {}
        self._last_history_prune = sim.now
        # Suspended (crashed-but-rebootable) nodes: registered, but out
        # of every grid and every query answer.  See suspend_node.
        self._suspended: set[str] = set()
        #: Installed fault plane, if any (set by
        #: :class:`repro.faults.FaultPlane`; stays ``None`` on a
        #: fault-free world — zero-rate configs never touch it).
        self.faults = None
        #: Installed lossy PHY plane, if any (set by
        #: :class:`repro.radio.phy.PhyPlane`; stays ``None`` on a
        #: lossless world — the all-zero configuration runs the literal
        #: pre-PHY code path, byte-identical to the binary-range model).
        self.phy = None
        #: Attached telemetry recorder, if any (set by
        #: :class:`repro.obs.Telemetry`; stays ``None`` when no recorder
        #: observes this world — producers check before every hook call).
        self.telemetry = None
        self.stats = WorldStats()
        #: Crossing-time solver and connectivity-event bus (PR 3): link
        #: and quality-threshold changes are *predicted and scheduled*
        #: instead of polled.  See :mod:`repro.radio.contacts` /
        #: :mod:`repro.radio.bus`.
        self.contacts = ContactSolver(self)
        self.bus = ConnectivityBus(self, solver=self.contacts)

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------
    def add_node(self, node_id: str, mobility: MobilityModel,
                 technologies: typing.Iterable[Technology | str]) -> WorldNode:
        """Register a node.  ``technologies`` may mix names and objects.

        O(G) for G already-built grids (the node is indexed into each
        grid whose technology it carries).  Raises ``ValueError`` on a
        duplicate id or an empty technology set.
        """
        if node_id in self._nodes:
            raise ValueError(f"duplicate node id: {node_id!r}")
        names = frozenset(
            tech if isinstance(tech, str) else tech.name
            for tech in technologies)
        if not names:
            raise ValueError(f"node {node_id!r} needs at least one technology")
        for name in names:
            get_technology(name)  # validate early
        node = WorldNode(node_id, mobility, names)
        self._nodes[node_id] = node
        self.geometry_epoch += 1
        for tech_name, grid in self._grids.items():
            if tech_name in names:
                grid.insert(node_id, mobility.position(self.sim.now),
                            mobile=mobility.is_mobile())
        return node

    def remove_node(self, node_id: str) -> None:
        """Remove a node (power-off), evicting *all* state that names it.

        Spatial-grid entries, quality overrides referencing the node (on
        either side of the pair), inquiry marks, the inquiry toggle log
        and every pending connectivity-bus watch naming the node are all
        dropped, so a node re-added later under the same id starts
        physically fresh and no scheduled contact event for the dead node
        can ever fire.  O(G + overrides + watches).  Raises ``KeyError``
        if the node is unknown.
        """
        self._node(node_id)  # raise if unknown
        del self._nodes[node_id]
        self.geometry_epoch += 1
        for grid in self._grids.values():
            if node_id in grid:
                grid.remove(node_id)
        self._overrides = {
            key: override for key, override in self._overrides.items()
            if node_id not in (key[0], key[1])}
        self._inquiring = {
            key for key in self._inquiring if key[0] != node_id}
        self._inquiry_history = {
            key: history for key, history in self._inquiry_history.items()
            if key[0] != node_id}
        # A node crashed at removal time must not leave orphaned fault
        # flags or held watches: clear the suspension first so
        # cancel_node sees plain watches (their kernel handles are
        # already None while held — cancel is a no-op on those).
        self._suspended.discard(node_id)
        self.bus.cancel_node(node_id)
        if self.faults is not None:
            self.faults.on_node_removed(node_id)

    def suspend_node(self, node_id: str) -> None:
        """Take a node dark without removing it (crash-reboot faults).

        The node keeps its identity and mobility but stops
        participating physically: it is out of range of everything,
        absent from every neighbor query, undiscoverable, and its link
        qualities read 0.  Unlike :meth:`remove_node`, bus watches
        naming it are *held* rather than cancelled, and synthetic
        LinkDown events close its open contacts — see
        :meth:`~repro.radio.bus.ConnectivityBus.suspend_node`.
        Idempotent for an already-suspended node; ``KeyError`` if
        unknown.  O(G + watches naming the node).
        """
        self._node(node_id)  # raise if unknown
        if node_id in self._suspended:
            return
        self._suspended.add(node_id)
        self.geometry_epoch += 1
        for grid in self._grids.values():
            if node_id in grid:
                grid.remove(node_id)
        self.bus.suspend_node(node_id)

    def resume_node(self, node_id: str) -> None:
        """Bring a suspended node back at its current mobility position.

        The grids re-index the node, held watches re-arm, and synthetic
        LinkUp events reopen contacts already in range — the reboot
        half of crash-reboot fault injection (any state loss is the
        fault plane's business, not the world's).  Idempotent;
        ``KeyError`` if unknown.
        """
        node = self._node(node_id)
        if node_id not in self._suspended:
            return
        self._suspended.discard(node_id)
        self.geometry_epoch += 1
        now = self.sim.now
        for tech_name, grid in self._grids.items():
            if tech_name in node.technologies and node_id not in grid:
                grid.insert(node_id, node.mobility.position(now),
                            mobile=node.mobility.is_mobile())
        self.bus.resume_node(node_id)

    def is_suspended(self, node_id: str) -> bool:
        """True while the node is suspended (crashed).  O(1)."""
        return node_id in self._suspended

    def node_ids(self) -> list[str]:
        """All registered node ids, sorted for determinism.  O(N log N)."""
        return sorted(self._nodes)

    def has_node(self, node_id: str) -> bool:
        """True if the node exists.  O(1)."""
        return node_id in self._nodes

    def _node(self, node_id: str) -> WorldNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"unknown node: {node_id!r}") from None

    def node(self, node_id: str) -> WorldNode:
        """Public lookup of a node record.  O(1); ``KeyError`` if absent."""
        return self._node(node_id)

    def supports(self, node_id: str, tech: Technology) -> bool:
        """True if the node has the given radio fitted.  O(1)."""
        return tech.name in self._node(node_id).technologies

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def position(self, node_id: str) -> Point:
        """The node's position (metres) at the current virtual time.

        Cost is the mobility model's evaluation at ``sim.now`` — O(1) for
        static/linear models, O(log legs) for random waypoint (its leg
        cache is bisected, never scanned).
        """
        return self._node(node_id).mobility.position(self.sim.now)

    def distance(self, a: str, b: str) -> float:
        """Euclidean distance between two nodes now, in metres.  O(1)."""
        self.stats.distance_checks += 1
        return distance(self.position(a), self.position(b))

    def in_range(self, a: str, b: str, tech: Technology) -> bool:
        """True if both nodes have ``tech`` and are within its radius.

        A pair query — O(1), no grid involved.  A node that has been
        removed from the world (powered off, battery pulled) is simply out
        of range of everything — links to it break rather than the query
        crashing.  A *suspended* (crashed) node is likewise out of range
        until it resumes.
        """
        if a in self._suspended or b in self._suspended:
            return False
        return self.in_range_raw(a, b, tech)

    def in_range_raw(self, a: str, b: str, tech: Technology) -> bool:
        """:meth:`in_range` ignoring suspension — pre-fault geometry.

        The connectivity bus uses this at the suspension instant to
        decide which pairs were in contact (and therefore owe a
        synthetic LinkDown); everything else wants :meth:`in_range`.
        """
        if a == b:
            return False
        if a not in self._nodes or b not in self._nodes:
            return False
        if not (self.supports(a, tech) and self.supports(b, tech)):
            return False
        return self.distance(a, b) <= tech.range_m

    # ------------------------------------------------------------------
    # spatial index
    # ------------------------------------------------------------------
    def _grid_for(self, tech: Technology) -> SpatialGrid:
        """The synced spatial grid for ``tech``, built on first use.

        Build: O(N).  Refresh after the clock advanced: O(M) for M mobile
        nodes carrying the technology (static nodes are never revisited).
        Same-instant queries: O(1).
        """
        now = self.sim.now
        grid = self._grids.get(tech.name)
        if grid is None:
            grid = SpatialGrid(cell_size=tech.range_m)
            for node in self._nodes.values():
                if (tech.name in node.technologies
                        and node.node_id not in self._suspended):
                    grid.insert(node.node_id,
                                node.mobility.position(now),
                                mobile=node.mobility.is_mobile())
            self._grids[tech.name] = grid
            self._grid_synced[tech.name] = now
            return grid
        if self._grid_synced[tech.name] != now:
            self.stats.grid_refreshes += 1
            nodes = self._nodes
            for node_id in grid.mobile_ids():
                grid.move(node_id, nodes[node_id].mobility.position(now))
            self._grid_synced[tech.name] = now
            self._maybe_prune_history()
        return grid

    def neighbors(self, node_id: str, tech: Technology) -> list[str]:
        """All nodes in range on ``tech`` (ignoring discoverability).

        Grid-backed: O(K log K) for K candidates in the 3 × 3 cells
        around the node — independent of the total node count.  Returns a
        sorted list; an unknown ``node_id`` or one without the radio
        yields ``[]`` (matching :meth:`in_range`'s forgiving semantics).
        """
        node = self._nodes.get(node_id)
        if node is None or tech.name not in node.technologies:
            return []
        if node_id in self._suspended:
            return []  # a dark node sees nothing (and is in no grid)
        self.stats.neighbor_queries += 1
        grid = self._grid_for(tech)
        center = grid.point(node_id)
        range_m = tech.range_m
        stats = self.stats
        found = []
        for other_id in grid.candidates(center, range_m):
            if other_id == node_id:
                continue
            stats.distance_checks += 1
            if distance(center, grid.point(other_id)) <= range_m:
                found.append(other_id)
        return sorted(found)

    def neighbors_brute_force(self, node_id: str,
                              tech: Technology) -> list[str]:
        """Reference O(N) pairwise implementation of :meth:`neighbors`.

        Kept as the verification oracle (the property tests assert it
        always agrees with the grid) and as the baseline the scale
        benchmark measures against.  Semantics are identical, including
        the empty result for unknown or radio-less nodes.
        """
        node = self._nodes.get(node_id)
        if node is None or tech.name not in node.technologies:
            return []
        if node_id in self._suspended:
            return []
        now = self.sim.now
        center = node.mobility.position(now)
        range_m = tech.range_m
        stats = self.stats
        found = []
        for other_id in sorted(self._nodes):
            if other_id == node_id or other_id in self._suspended:
                continue
            other = self._nodes[other_id]
            if tech.name not in other.technologies:
                continue
            stats.distance_checks += 1
            if distance(center, other.mobility.position(now)) <= range_m:
                found.append(other_id)
        return found

    # ------------------------------------------------------------------
    # batch geometry (numpy-vectorized hot path)
    # ------------------------------------------------------------------
    def vector_engine(self, tech: Technology, profiler=None):
        """The batch geometry engine for ``tech``, built on first use.

        One :class:`~repro.radio.vectorized.VectorEngine` per
        technology, cached for the world's lifetime (membership changes
        invalidate its rows via ``geometry_epoch``, not the cache).
        Passing ``profiler`` (re)attaches a
        :class:`~repro.obs.profile.SubsystemProfiler` to the engine.
        Raises ``RuntimeError`` without numpy — the scalar path never
        calls this.
        """
        engine = self._vector_engines.get(tech.name)
        if engine is None:
            from repro.radio.vectorized import VectorEngine
            engine = VectorEngine(self, tech, profiler=profiler)
            self._vector_engines[tech.name] = engine
        elif profiler is not None:
            engine.profiler = profiler
        return engine

    def neighbor_pairs_vectorized(self, tech: Technology):
        """Every in-range unordered pair now, as ``(i, j, ids)``.

        The whole-population equivalent of calling :meth:`neighbors`
        for every node: ``i``/``j`` are numpy index arrays into the
        string-sorted ``ids`` list, each pair listed once.  One
        vectorized position/bin/filter pass — O(N + pairs) array work
        instead of N Python-level queries.  Stats counting under this
        path: ``neighbor_queries`` grows by the member count,
        ``distance_checks`` by the number of candidate *pairs* (the
        scalar path counts each pair once per direction — see
        ``docs/PERFORMANCE.md``).
        """
        engine = self.vector_engine(tech)
        pair_i, pair_j = engine.neighbor_pairs(self.sim.now)
        return pair_i, pair_j, engine.ids

    def all_neighbors_vectorized(self, tech: Technology
                                 ) -> dict[str, list[str]]:
        """Batch-path neighbor lists for every member node.

        Dict of sorted neighbor lists, identical to
        :meth:`all_neighbors` (the property tests assert it) — the
        dict-building convenience costs Python-level work per link, so
        benchmarks time :meth:`neighbor_pairs_vectorized` instead.
        """
        return self.vector_engine(tech).all_neighbors(self.sim.now)

    def all_neighbors(self, tech: Technology) -> dict[str, list[str]]:
        """Scalar reference for :meth:`all_neighbors_vectorized`.

        One grid-backed :meth:`neighbors` query per node — the loop the
        batch engine replaces.  Suspended and radio-less nodes answer
        ``[]`` (they are not members of the batch path's row table, so
        equivalence tests compare over the engine's id list).
        """
        return {node_id: self.neighbors(node_id, tech)
                for node_id in self.node_ids()}

    # ------------------------------------------------------------------
    # link quality
    # ------------------------------------------------------------------
    def _override_key(self, a: str, b: str,
                      tech: Technology) -> tuple[str, str, str]:
        first, second = sorted((a, b))
        return (first, second, tech.name)

    def set_quality_override(self, a: str, b: str, tech: Technology,
                             override: QualityOverride | None) -> None:
        """Install (or clear, with None) an artificial quality function.

        The override is symmetric in the pair and keyed per technology;
        O(1).  It survives until cleared or either node is removed.
        """
        key = self._override_key(a, b, tech)
        if override is None:
            self._overrides.pop(key, None)
        else:
            self._overrides[key] = override
        # Outstanding connectivity predictions for the pair were computed
        # against the old quality function; re-predict them.
        self.bus.invalidate_pair(a, b, tech)

    def install_linear_decay(self, a: str, b: str, tech: Technology,
                             initial_quality: int,
                             decay_per_second: float = 1.0,
                             start_time: float | None = None) -> None:
        """The paper's Fig. 5.8 fault injection.

        From ``start_time`` (default: now, in sim-seconds) the reported
        quality for the pair is ``initial_quality - decay_per_second *
        elapsed``, floored at 0.
        """
        t0 = self.sim.now if start_time is None else start_time

        def decayed(t: float) -> int:
            elapsed = max(0.0, t - t0)
            return max(0, round(initial_quality - decay_per_second * elapsed))

        self.set_quality_override(a, b, tech, decayed)

    def has_override(self, a: str, b: str, tech: Technology) -> bool:
        """True if an artificial quality function is installed.  O(1)."""
        return self._override_key(a, b, tech) in self._overrides

    def link_quality(self, a: str, b: str, tech: Technology) -> int:
        """Current link quality (0–255); 0 when out of range or no radio.

        A pair query — O(1): override lookup, then the physical model on
        the pair distance.
        """
        return self.link_quality_at(a, b, tech, self.sim.now)

    def link_quality_at(self, a: str, b: str, tech: Technology,
                        t: float) -> int:
        """Link quality the pair would report at virtual time ``t``.

        Positions are pure functions of time, so quality is too — this
        is what lets the contact solver *predict* threshold crossings.
        Evaluates mobility directly (never the spatial grids, which are
        synced to ``sim.now``).  Same semantics as :meth:`link_quality`:
        overrides first, 0 out of range or for unknown/radio-less nodes.
        A suspended (crashed) node reads 0 even under an override — the
        radio is off, not merely degraded.
        """
        if a in self._suspended or b in self._suspended:
            return 0
        override = self._overrides.get(self._override_key(a, b, tech))
        if override is not None:
            value = override(t)
            if value is not None:
                return max(0, min(255, int(value)))
        if a == b or a not in self._nodes or b not in self._nodes:
            return 0
        if not (self.supports(a, tech) and self.supports(b, tech)):
            return 0
        gap = distance(self._nodes[a].mobility.position(t),
                       self._nodes[b].mobility.position(t))
        if gap > tech.range_m:
            return 0
        return self.quality_model.quality(gap, tech.range_m)

    # ------------------------------------------------------------------
    # discovery support
    # ------------------------------------------------------------------
    #: Toggle-log entries older than this (sim-seconds) are pruned (no scan
    #: looks back further than one inquiry duration).
    _HISTORY_HORIZON_S = 120.0

    def mark_inquiring(self, node_id: str, tech: Technology,
                       inquiring: bool) -> None:
        """Record that a node is running a discovery scan on ``tech``.

        O(1) amortised (toggle logs are pruned once per horizon of clock
        advance).  Idempotent for repeated marks in the same state.
        """
        key = (node_id, tech.name)
        already = key in self._inquiring
        if inquiring == already:
            return
        if inquiring:
            self._inquiring.add(key)
        else:
            self._inquiring.discard(key)
        history = self._inquiry_history.setdefault(key, [])
        history.append((self.sim.now, inquiring))
        self._maybe_prune_history()

    def _maybe_prune_history(self) -> None:
        """Prune the toggle logs once per horizon of clock advance.

        The seed pruned *lazily* — only the marked node's own log, only
        when it exceeded a length watermark — so a node that stopped
        toggling (or kept toggling below the watermark) carried stale
        entries forever.  This hook runs from the clock-advance
        observation points (grid refresh, new toggle marks) and trims
        every log explicitly.
        """
        now = self.sim.now
        if now - self._last_history_prune >= self._HISTORY_HORIZON_S:
            self.prune_inquiry_history()

    def prune_inquiry_history(self) -> int:
        """Drop toggle-log entries older than the horizon; returns count.

        The newest entry at or before the cutoff is kept as the state
        anchor (``max_discoverable_gap`` derives the state at a window
        start from the last preceding toggle), so pruning never changes
        any discoverability answer about the kept horizon.  O(total log
        length).
        """
        cutoff = self.sim.now - self._HISTORY_HORIZON_S
        dropped = 0
        for history in self._inquiry_history.values():
            while len(history) > 1 and history[1][0] <= cutoff:
                history.pop(0)
                dropped += 1
        self._last_history_prune = self.sim.now
        return dropped

    def is_inquiring(self, node_id: str, tech: Technology) -> bool:
        """True while the node is scanning on ``tech``.  O(1)."""
        return (node_id, tech.name) in self._inquiring

    def is_discoverable(self, node_id: str, tech: Technology) -> bool:
        """Can an inquiry find this node right now?  O(1).

        Bluetooth's asymmetric discovery (§3.4.2): a node that is itself
        inquiring cannot be discovered.
        """
        if not self.supports(node_id, tech):
            return False
        if node_id in self._suspended:
            return False  # a crashed radio answers no inquiries
        if tech.discoverable_while_inquiring:
            return True
        return not self.is_inquiring(node_id, tech)

    def max_discoverable_gap(self, node_id: str, tech: Technology,
                             window_start: float,
                             window_end: float) -> float:
        """Longest contiguous non-inquiring stretch inside the window.

        Window bounds and the returned gap are sim-seconds; O(H) in the
        (horizon-pruned) toggle-log length.  For technologies that stay
        discoverable while scanning this is the whole window.  For
        Bluetooth it walks the inquiry toggle log: a peer can only answer
        our inquiry during its own idle gaps, and the inquiry protocol
        needs a minimum contiguous gap to complete the exchange
        (``tech.response_window_s``).
        """
        if window_end < window_start:
            raise ValueError("window end before start")
        if tech.discoverable_while_inquiring:
            return window_end - window_start
        key = (node_id, tech.name)
        history = self._inquiry_history.get(key, [])
        # State at window_start: last toggle at or before it (default: not
        # inquiring — nodes boot idle).
        inquiring = False
        for when, became in history:
            if when > window_start:
                break
            inquiring = became
        longest = 0.0
        gap_start = None if inquiring else window_start
        for when, became in history:
            if when <= window_start:
                continue
            if when >= window_end:
                break
            if became and gap_start is not None:
                longest = max(longest, when - gap_start)
                gap_start = None
            elif not became and gap_start is None:
                gap_start = when
        if gap_start is not None:
            longest = max(longest, window_end - gap_start)
        return longest

    def heard_during_scan(self, node_id: str, tech: Technology,
                          window_start: float, window_end: float) -> bool:
        """Would an inquiry over the window (sim-seconds) have heard this
        node?  O(H) in the toggle-log length."""
        gap = self.max_discoverable_gap(node_id, tech, window_start,
                                        window_end)
        return gap >= tech.response_window_s

    def discoverable_neighbors(self, node_id: str,
                               tech: Technology) -> list[str]:
        """Nodes in range on ``tech`` that an inquiry would find now.

        Grid-backed like :meth:`neighbors` (O(K) candidates, not O(N)),
        then filtered by :meth:`is_discoverable`.  Sorted; ``KeyError``
        if ``node_id`` is unknown.
        """
        if not self.supports(node_id, tech):
            return []
        return [other_id for other_id in self.neighbors(node_id, tech)
                if self.is_discoverable(other_id, tech)]
