"""Buffer eviction under churn: dead custodians and dead destinations.

Extends the PR 1/PR 3 stale-state regression family to the DTN plane:
a node that is ``power_off()``/``remove_node()``-ed mid-carry must have
its buffered bundles dropped (counted ``dropped_dead``) — and a bundle
addressed to a removed node must *never* be delivered, aging out by TTL
instead.  The connectivity bus guarantees no contact event for a dead
node ever fires; these tests pin the forwarder's side of the contract.
"""

import pytest

from repro.dtn import DtnOverlay, PollingDtnOverlay, make_router
from repro.faults import FaultPlane
from repro.mobility.linear import LinearMovement
from repro.scenarios import Scenario


def _mule_world(seed=5):
    """src — 60 m gap — dst, with a mule driving from src to dst."""
    scenario = Scenario(seed=seed)
    scenario.add_node("src", position=(0, 0), mobility_class="static")
    scenario.add_node("dst", position=(60, 0), mobility_class="static")
    scenario.add_node("mule",
                      mobility=LinearMovement((0.0, 5.0), (1.0, 0.0)))
    return scenario


def test_dead_custodian_drops_bundles_and_never_delivers():
    scenario = _mule_world()
    plane = DtnOverlay(scenario.world, make_router("spray",
                                                   spray_copies=2))
    bundle = plane.send("src", "dst", ttl_s=500.0)
    scenario.run(until=20.0)
    # The mule picked up half the tokens at the seeded src contact.
    assert plane.stores["mule"].get(bundle.bundle_id) is not None
    scenario.remove_node("mule")             # battery-out mid-carry
    assert plane.counters.dropped_dead == 1
    assert "mule" not in plane.live_nodes()
    assert len(plane.stores["mule"]) == 0
    scenario.run(until=400.0)
    # src keeps its wait-phase token but never meets dst itself; the
    # mule's copy died with it — nothing is ever delivered.
    assert plane.delivered == {}
    assert plane.contacts("mule") == []


def test_bundle_to_removed_destination_is_never_delivered():
    scenario = _mule_world(seed=6)
    plane = DtnOverlay(scenario.world, make_router("epidemic"))
    bundle = plane.send("src", "dst", ttl_s=100.0)
    scenario.run(until=20.0)
    scenario.remove_node("dst")              # destination dies first
    scenario.run(until=300.0)                # mule passes the corpse
    assert plane.delivered == {}
    assert "dst" in plane._dead
    # The surviving copies age out by TTL at the next lazy sweep.
    for name in ("src", "mule"):
        plane.stores[name].expire(scenario.sim.now)
        assert plane.stores[name].get(bundle.bundle_id) is None
    assert plane.counters.expired >= 1
    assert plane.counters.delivered == 0


def test_sends_naming_a_dead_node_are_refused_at_the_edge():
    scenario = _mule_world(seed=7)
    plane = DtnOverlay(scenario.world, make_router("epidemic"))
    scenario.run(until=5.0)
    scenario.remove_node("dst")
    with pytest.raises(ValueError, match="removed"):
        plane.send("src", "dst")
    with pytest.raises(ValueError, match="removed"):
        plane.send("dst", "src")
    with pytest.raises(KeyError, match="not on the DTN plane"):
        plane.send("src", "stranger")


def test_polling_oracle_retires_removed_nodes():
    scenario = _mule_world(seed=8)
    plane = PollingDtnOverlay(scenario.world, make_router("epidemic"),
                              poll_interval_s=1.0)
    plane.send("src", "dst", ttl_s=500.0)
    scenario.run(until=20.0)
    scenario.remove_node("mule")
    scenario.run(until=120.0)                # ticks keep running
    plane.stop()
    assert "mule" not in plane.live_nodes()
    assert plane.counters.dropped_dead >= 1
    assert plane.delivered == {}


def test_crashed_custodian_drops_bundles_with_counter():
    """A crash is transient churn: the store wipes (counted
    ``dropped_dead``) but the node stays on the plane, unlike removal."""
    scenario = _mule_world(seed=11)
    fault_plane = FaultPlane(scenario.world)
    plane = DtnOverlay(scenario.world, make_router("spray",
                                                   spray_copies=2))
    bundle = plane.send("src", "dst", ttl_s=500.0)
    scenario.run(until=20.0)
    assert plane.stores["mule"].get(bundle.bundle_id) is not None
    fault_plane.crash_now("mule")
    assert plane.counters.dropped_dead == 1
    assert len(plane.stores["mule"]) == 0
    assert "mule" in plane.live_nodes()          # dark, not removed
    scenario.run(until=400.0)
    # The mule's copy died at (20, 5), out of range of src forever
    # after; src's wait-phase token never meets dst on its own.
    assert plane.delivered == {}


def test_spray_tokens_conserved_across_crash_and_reboot():
    """Crash-reboot must never mint spray tokens: the total in-flight
    copy count only ever shrinks, and a rebooted custodian can be
    re-infected from a carrier that still holds tokens."""
    scenario = _mule_world(seed=12)
    fault_plane = FaultPlane(scenario.world)
    plane = DtnOverlay(scenario.world, make_router("spray",
                                                   spray_copies=4))
    bundle = plane.send("src", "dst", ttl_s=500.0)

    def tokens():
        return sum(held.copies
                   for store in plane.stores.values()
                   for held in [store.get(bundle.bundle_id)]
                   if held is not None)

    assert tokens() == 4
    scenario.run(until=2.0)                      # mule at (2, 5): met src
    assert plane.stores["mule"].get(bundle.bundle_id) is not None
    fault_plane.crash_now("mule")                # its tokens die with it
    assert tokens() == 2                         # src kept its half
    fault_plane.reboot_now("mule")               # still in src's disk
    scenario.run(until=3.0)
    # The synthetic LinkUp re-ran the exchange: src re-split its
    # remaining tokens; the total never exceeds the original budget.
    assert plane.stores["mule"].get(bundle.bundle_id) is not None
    assert tokens() == 2
    scenario.run(until=120.0)
    assert bundle.bundle_id in plane.delivered   # re-infection delivered
    assert plane.counters.dropped_dead == 1


def test_overlay_survives_churn_and_keeps_serving_the_living():
    """Removing one custodian must not disturb unrelated traffic."""
    scenario = _mule_world(seed=9)
    scenario.add_node("near", position=(3, 0), mobility_class="static")
    plane = DtnOverlay(scenario.world, make_router("epidemic"))
    doomed = plane.send("src", "dst", ttl_s=500.0)
    scenario.run(until=20.0)
    scenario.remove_node("mule")
    healthy = plane.send("src", "near", ttl_s=500.0)
    scenario.run(until=100.0)
    assert healthy.bundle_id in plane.delivered     # instant: in range
    assert doomed.bundle_id not in plane.delivered
    # No stale contact state names the dead node anywhere.
    for name in plane.live_nodes():
        assert "mule" not in plane.contacts(name)
