"""The analysis CLI: ``python -m repro.analysis report|gate``.

* ``report`` — render every ``BENCH_*.json`` snapshot, sweep
  ``runs.jsonl`` and the trajectory log into ``REPORT.md`` +
  ``REPORT.html`` (default ``results/report/``);
* ``gate`` — compare fresh snapshots against a committed baseline
  directory within a relative tolerance band; non-zero exit on any
  drift (the CI regression gate).

Both commands are read-only over the simulator: they never run a
simulation and can execute on any checkout.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import gates as gates_mod
from repro.analysis import report as report_mod


def cmd_report(args) -> int:
    doc = report_mod.build_report(args.root, sweep_dirs=args.sweep or None)
    md_path, html_path = report_mod.write_report(doc, args.out)
    print(f"wrote {md_path} and {html_path}")
    return 0


def cmd_gate(args) -> int:
    failures, compared = gates_mod.gate_directories(
        args.baseline, args.fresh, tolerance=args.tolerance)
    if not compared:
        print(f"gate compared nothing: no benchmark present in both "
              f"{args.baseline} and {args.fresh}", file=sys.stderr)
        return 2
    print(f"gated {len(compared)} benchmark(s) at ±{args.tolerance:.0%}: "
          + ", ".join(compared))
    if failures:
        print(f"\n{len(failures)} metric(s) outside the tolerance band:",
              file=sys.stderr)
        print(gates_mod.format_failures(failures), file=sys.stderr)
        print("\nIf the drift is intended, regenerate the baseline "
              "snapshots and commit them with the change.",
              file=sys.stderr)
        return 1
    print("all shared metrics within tolerance")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Results pipeline: render reports, gate regressions.")
    commands = parser.add_subparsers(dest="command", required=True)

    report_parser = commands.add_parser(
        "report", help="render BENCH_*.json + sweeps to markdown/HTML")
    report_parser.add_argument("--root", default=".",
                               help="repo root holding BENCH_*.json "
                                    "and results/ (default .)")
    report_parser.add_argument("--out", default="results/report",
                               help="output directory for REPORT.md/"
                                    "REPORT.html (default results/report)")
    report_parser.add_argument("--sweep", action="append", default=[],
                               help="sweep directory containing "
                                    "runs.jsonl (repeatable; default: "
                                    "every results/* directory)")

    gate_parser = commands.add_parser(
        "gate", help="fail when fresh snapshots drift beyond tolerance")
    gate_parser.add_argument("--baseline", required=True,
                             help="directory of committed baseline "
                                  "BENCH_*.json snapshots")
    gate_parser.add_argument("--fresh", default=".",
                             help="directory of freshly measured "
                                  "snapshots (default .)")
    gate_parser.add_argument("--tolerance", type=float,
                             default=gates_mod.DEFAULT_TOLERANCE,
                             help="relative tolerance band (default "
                                  f"{gates_mod.DEFAULT_TOLERANCE})")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"report": cmd_report, "gate": cmd_gate}[args.command]
    return handler(args)
