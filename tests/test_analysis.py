"""Tests for the results pipeline (:mod:`repro.analysis`).

Covers the shared bench-snapshot envelope, the perf-trajectory ledger,
the numeric-leaf flattener and tolerance-band regression gate, the
dependency-free Document renderer, and — the acceptance criterion —
``build_report`` on the real repo root rendering every committed
``BENCH_*.json`` plus the bundled ``results/fault_sweep`` campaign.
"""

import json
import pathlib

import pytest

from repro.analysis import (
    DEFAULT_TOLERANCE,
    Document,
    bench_envelope,
    build_report,
    compare_snapshots,
    format_failures,
    gate_directories,
    git_sha,
    load_snapshots,
    numeric_leaves,
    trajectory_by_benchmark,
    trajectory_entries,
    write_bench_snapshot,
    write_report,
)
from repro.analysis import cli

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# snapshot envelope + trajectory ledger
# ----------------------------------------------------------------------
def test_envelope_carries_provenance_fields():
    envelope = bench_envelope("demo", n=12, repeats=3, cwd=REPO_ROOT)
    assert envelope["schema"] == 1
    assert envelope["benchmark"] == "demo"
    assert envelope["n"] == 12
    assert envelope["repeats"] == 3
    assert envelope["git_sha"] not in ("", "unknown")
    assert envelope["generated_at"].endswith("Z")


def test_git_sha_degrades_to_unknown_outside_a_repo(tmp_path):
    assert git_sha(cwd=tmp_path) == "unknown"


def test_write_bench_snapshot_and_trajectory_roundtrip(tmp_path):
    path = tmp_path / "BENCH_demo.json"
    payload = {"score": 2.0, "nested": {"hits": 3}, "wall_s": 9.9}
    snapshot = write_bench_snapshot("demo", payload, path, n=7, repeats=2)
    assert snapshot["benchmark"] == "demo"
    assert snapshot["score"] == 2.0
    on_disk = json.loads(path.read_text())
    assert on_disk == snapshot
    assert on_disk["envelope"]["n"] == 7

    # A second write appends a second trajectory line beside it.
    write_bench_snapshot("demo", payload, path, n=7, repeats=2)
    ledger = tmp_path / "BENCH_trajectory.jsonl"
    entries = trajectory_entries(ledger)
    assert len(entries) == 2
    by_bench = trajectory_by_benchmark(entries)
    assert set(by_bench) == {"demo"}
    metrics = entries[0]["metrics"]
    assert metrics["score"] == 2.0
    assert metrics["nested.hits"] == 3.0
    assert "wall_s" not in metrics          # wall-clock never gated

    assert trajectory_entries(tmp_path / "absent.jsonl") == []


def test_load_snapshots_keys_by_benchmark_and_skips_junk(tmp_path):
    write_bench_snapshot("alpha", {"x": 1}, tmp_path / "BENCH_alpha.json")
    (tmp_path / "BENCH_broken.json").write_text("{nope")
    (tmp_path / "unrelated.json").write_text("{}")
    snapshots = load_snapshots(tmp_path)
    assert set(snapshots) == {"alpha"}


# ----------------------------------------------------------------------
# numeric-leaf flattening + the regression gate
# ----------------------------------------------------------------------
def test_numeric_leaves_flattens_and_skips_ungated_keys():
    leaves = numeric_leaves({
        "a": 1, "flag": True,
        "nested": {"b": 2.5, "wall_s": 1.0, "note": "text"},
        "rows": [{"c": 3}, {"c": 4}],
        "envelope": {"n": 9}, "git_sha": "abc", "poll_ms_budget": 7,
    })
    assert leaves == {"a": 1.0, "flag": 1.0, "nested.b": 2.5,
                      "rows.0.c": 3.0, "rows.1.c": 4.0}


def test_compare_snapshots_tolerance_band():
    baseline = {"ratio": 0.80, "count": 100}
    assert compare_snapshots("b", baseline, {"ratio": 0.80, "count": 105}) \
        == []
    # 12% drift on count: outside the 10% band, either direction.
    for fresh_count in (88, 112):
        [failure] = compare_snapshots(
            "b", baseline, {"ratio": 0.80, "count": fresh_count})
        assert failure.metric == "count"
        assert abs(failure.rel_delta) == pytest.approx(0.12)
        assert "b" in failure.describe() and "count" in failure.describe()
    # A custom tolerance widens the band.
    assert compare_snapshots("b", baseline, {"ratio": 0.8, "count": 112},
                             tolerance=0.2) == []
    assert DEFAULT_TOLERANCE == 0.1


def test_compare_snapshots_vanished_vs_new_metrics():
    [failure] = compare_snapshots("b", {"kept": 1, "gone": 2}, {"kept": 1})
    assert failure.metric == "gone"
    assert failure.fresh is None
    # New metrics in fresh output are fine — growth, not regression.
    assert compare_snapshots("b", {"kept": 1}, {"kept": 1, "new": 9}) == []


def _snapshot_dir(tmp_path, name, score):
    root = tmp_path / name
    root.mkdir()
    write_bench_snapshot("demo", {"score": score},
                         root / "BENCH_demo.json",
                         trajectory_path=root / "unused.jsonl")
    return root


def test_gate_directories_passes_and_fails(tmp_path):
    baseline = _snapshot_dir(tmp_path, "baseline", score=10.0)
    matching = _snapshot_dir(tmp_path, "same", score=10.5)
    drifted = _snapshot_dir(tmp_path, "drift", score=13.0)

    failures, compared = gate_directories(baseline, matching)
    assert failures == [] and compared == ["demo"]

    failures, compared = gate_directories(baseline, drifted)
    assert compared == ["demo"]
    assert [f.metric for f in failures] == ["score"]
    assert "demo" in format_failures(failures)

    # Fresh dir missing the benchmark entirely: nothing compared.
    empty = tmp_path / "empty"
    empty.mkdir()
    assert gate_directories(baseline, empty) == ([], [])


def test_gate_cli_exit_codes(tmp_path, capsys):
    baseline = _snapshot_dir(tmp_path, "b", score=10.0)
    good = _snapshot_dir(tmp_path, "g", score=10.2)
    bad = _snapshot_dir(tmp_path, "x", score=20.0)
    empty = tmp_path / "e"
    empty.mkdir()

    assert cli.main(["gate", "--baseline", str(baseline),
                     "--fresh", str(good)]) == 0
    assert cli.main(["gate", "--baseline", str(baseline),
                     "--fresh", str(bad)]) == 1
    assert "regenerate" in capsys.readouterr().err.lower()
    assert cli.main(["gate", "--baseline", str(baseline),
                     "--fresh", str(empty)]) == 2


# ----------------------------------------------------------------------
# document rendering
# ----------------------------------------------------------------------
def test_document_renders_markdown_and_html():
    doc = Document("Demo Report")
    doc.heading(2, "Section")
    doc.paragraph("Some *prose*.")
    doc.table(["name", "value"], [["a", 1], ["b", 2.5]])
    doc.preformatted("raw <text>")
    md = doc.to_markdown()
    assert md.startswith("# Demo Report")
    assert "## Section" in md
    assert "| name | value |" in md
    assert "| --- | --- |" in md
    assert "| a | 1 |" in md and "| b | 2.5 |" in md
    assert "```\nraw <text>\n```" in md
    html = doc.to_html()
    assert "<h1>Demo Report</h1>" in html
    assert "<td>2.5</td>" in html
    assert "raw &lt;text&gt;" in html       # pre blocks are escaped


# ----------------------------------------------------------------------
# build_report on the real repository (the acceptance criterion)
# ----------------------------------------------------------------------
def test_build_report_covers_all_benchmarks_and_the_sweep(tmp_path):
    doc = build_report(root=REPO_ROOT)
    md = doc.to_markdown()
    for benchmark in ("scale_neighbors", "event_handover", "dtn_delivery",
                      "contact_capacity", "fault_tolerance"):
        assert benchmark in md, f"report missing {benchmark} section"
    assert "fault_sweep" in md              # the bundled campaign renders
    assert "Headline claims" in md

    md_path, html_path = write_report(doc, tmp_path)
    assert md_path.read_text(encoding="utf-8") == md
    assert html_path.read_text(encoding="utf-8").startswith("<!DOCTYPE")


def test_report_cli_writes_both_artifacts(tmp_path, capsys):
    out = tmp_path / "report"
    assert cli.main(["report", "--root", str(REPO_ROOT),
                     "--out", str(out)]) == 0
    assert (out / "REPORT.md").exists()
    assert (out / "REPORT.html").exists()
    printed = capsys.readouterr().out
    assert "REPORT.md" in printed
