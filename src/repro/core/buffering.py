"""Data buffering: the §6.1 reliability extension.

"So far there exists the possibility to lose data due to Write function
not being aware of the connection loss.  Additionally, the implementation
of Data Transferring Acknowledge is too costly due to the small size of
packet.  Thus an efficient Data Buffering is necessary to guarantee the
data integrity."

:class:`ReliableChannel` implements exactly that trade-off: application
payloads carry sequence numbers and are buffered until *cumulatively*
acknowledged — one ack per ``ack_every`` payloads instead of per packet
(the paper's cost concern) — and everything unacknowledged is
retransmitted when a handover substitutes the transport (the
ChangeConnection callback) or when the periodic resend timer finds the
transport alive again.  The receiver delivers in order and drops the
duplicates retransmission creates.

Both endpoints wrap their own side::

    channel = ReliableChannel(connection)
    channel.send("payload", 64)
    payload = yield from channel.receive()
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.connection import PeerHoodConnection
from repro.core.errors import ConnectionClosedError
from repro.sim.resources import Store

#: Cumulative-ack frequency: one ack per this many delivered payloads.
DEFAULT_ACK_EVERY = 4

#: Period of the retransmission timer, seconds.
DEFAULT_RESEND_INTERVAL_S = 5.0

#: Envelope overhead charged to the transmit-time model, bytes.
_ENVELOPE_OVERHEAD = 8
_ACK_SIZE = 12


@dataclasses.dataclass(frozen=True)
class _Sequenced:
    """A buffered application payload with its sequence number."""

    sequence: int
    payload: object
    declared_size: int


@dataclasses.dataclass(frozen=True)
class _CumulativeAck:
    """Receiver has everything up to and including ``sequence``."""

    sequence: int


class ReliableChannel:
    """One endpoint of a buffered, in-order, at-least-once channel."""

    def __init__(self, connection: PeerHoodConnection,
                 ack_every: int = DEFAULT_ACK_EVERY,
                 resend_interval_s: float = DEFAULT_RESEND_INTERVAL_S):
        if ack_every < 1:
            raise ValueError(f"ack_every must be >= 1: {ack_every}")
        if resend_interval_s <= 0:
            raise ValueError("resend interval must be positive")
        self.connection = connection
        self.sim = connection.sim
        self.ack_every = ack_every
        self.resend_interval_s = resend_interval_s
        # Sender state.
        self._next_sequence = 1
        self._unacked: list[_Sequenced] = []
        self.retransmissions = 0
        # Receiver state.
        self._expected = 1
        self._out_of_order: dict[int, _Sequenced] = {}
        self._delivered_since_ack = 0
        self._ready: Store = Store(
            self.sim, f"reliable-rx:{connection.connection_id}")
        self._rx_closed = object()
        self.duplicates_dropped = 0
        connection.on_connection_changed(self._on_transport_changed)
        self._resend_process = self.sim.spawn(
            self._resend_loop(),
            name=f"reliable-resend:{connection.local_node_id}:"
                 f"{connection.connection_id}")
        # The channel owns the raw read side: acks must be processed even
        # while the application is not receiving (the sender-only client
        # case), so a dedicated pump drains the connection.
        self._reader_process = self.sim.spawn(
            self._reader_loop(),
            name=f"reliable-rx:{connection.local_node_id}:"
                 f"{connection.connection_id}")

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    @property
    def unacknowledged(self) -> int:
        """Payloads buffered awaiting a cumulative ack."""
        return len(self._unacked)

    def send(self, payload: object, size_bytes: int) -> int:
        """Buffer and transmit one payload; returns its sequence number."""
        envelope = _Sequenced(sequence=self._next_sequence, payload=payload,
                              declared_size=size_bytes)
        self._next_sequence += 1
        self._unacked.append(envelope)
        self.connection.write(envelope,
                              size_bytes + _ENVELOPE_OVERHEAD)
        return envelope.sequence

    def _retransmit_unacked(self) -> None:
        if not self.connection.is_open:
            return
        for envelope in self._unacked:
            self.retransmissions += 1
            self.connection.write(
                envelope, envelope.declared_size + _ENVELOPE_OVERHEAD)

    def _on_transport_changed(self, _connection: PeerHoodConnection) -> None:
        # A handover replaced the link: anything in flight on the old
        # chain may be gone; resend the whole window (§6.1's buffering).
        self._retransmit_unacked()

    def _resend_loop(self) -> typing.Generator:
        while self.connection.is_open:
            yield self.sim.timeout(self.resend_interval_s)
            if not self.connection.is_open:
                return
            if self._unacked and self.connection.transport_alive():
                self._retransmit_unacked()

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _reader_loop(self) -> typing.Generator:
        while True:
            try:
                raw = yield from self.connection.read()
            except ConnectionClosedError:
                self._ready.put(self._rx_closed)
                return
            self._handle_raw(raw)

    def receive(self) -> typing.Generator:
        """Process generator: next in-order payload.

        Raises :class:`ConnectionClosedError` once the underlying
        connection is closed and nothing deliverable remains.
        """
        item = yield self._ready.get()
        if item is self._rx_closed:
            self._ready.put(self._rx_closed)  # wake later receivers too
            raise ConnectionClosedError(
                f"reliable channel over closed connection "
                f"#{self.connection.connection_id}")
        return item

    def _handle_raw(self, raw: object) -> None:
        if isinstance(raw, _CumulativeAck):
            self._unacked = [e for e in self._unacked
                             if e.sequence > raw.sequence]
            return
        if not isinstance(raw, _Sequenced):
            # Unsequenced traffic from a non-buffered peer: pass through.
            self._ready.put(raw)
            return
        if raw.sequence < self._expected:
            self.duplicates_dropped += 1
            self._maybe_ack(force=True)  # re-ack so the sender trims
            return
        if raw.sequence > self._expected:
            self._out_of_order[raw.sequence] = raw
            return
        self._deliver(raw)
        while self._expected in self._out_of_order:
            self._deliver(self._out_of_order.pop(self._expected))

    def _deliver(self, envelope: _Sequenced) -> None:
        self._ready.put(envelope.payload)
        self._expected += 1
        self._delivered_since_ack += 1
        self._maybe_ack(force=False)

    def _maybe_ack(self, force: bool) -> None:
        if not force and self._delivered_since_ack < self.ack_every:
            return
        self._delivered_since_ack = 0
        if not self.connection.is_open:
            return
        self.connection.write(_CumulativeAck(self._expected - 1),
                              _ACK_SIZE)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close(self, reason: str = "") -> None:
        """Flush a final ack and close the underlying connection."""
        if self.connection.is_open:
            self._maybe_ack(force=True)
            self.connection.close(reason)

    def __repr__(self) -> str:
        return (f"<ReliableChannel conn#{self.connection.connection_id} "
                f"unacked={self.unacknowledged} "
                f"expected={self._expected}>")
