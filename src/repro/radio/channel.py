"""Physical links: establishment, framed transmission, teardown.

A :class:`Link` is one established bidirectional radio connection between
two nodes on one technology.  It models exactly the failure behaviour the
thesis observed:

* establishment takes a technology-specific random time and can fail
  outright ("the connection fault is quite frequent during the connection
  establishment process even if the devices have strong enough signal",
  §4.3);
* an in-flight frame is lost if the peers are out of range at delivery
  time, and the link is then down — but the *sender is not told*
  ("there exists the possibility to lose data due to Write function not
  being aware of the connection loss", §6.1);
* closing a link wakes blocked receivers with :class:`ChannelClosed`.

Event-driven teardown (PR 3): a link no longer waits for the next frame
to discover that its endpoints drifted apart.  On creation it registers a
one-shot LinkDown watch on the connectivity bus and *breaks at the
predicted crossing instant* — an idle link between diverging nodes goes
down exactly when coverage is lost, waking any blocked receiver then.
The in-range check at delivery time stays as a guard for frames already
in flight at the break.

Scaling note: everything here is *pair-local*.  Range and quality checks
on an established link are O(1) queries against the two endpoints'
positions — they never enumerate the world, so link maintenance stays
constant-cost as the node count grows (neighbor *enumeration* is the
spatial grid's job; see :mod:`repro.radio.spatial`).  Units: metres,
sim-seconds, bytes.
"""

from __future__ import annotations

import typing

from repro.radio.technologies import Technology
from repro.radio.world import World
from repro.sim.events import Event
from repro.sim.resources import Store
from repro.sim.rng import RandomStream

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class ChannelClosed(Exception):
    """Receive or send on a link that has been closed or has broken."""


class ConnectFault(Exception):
    """Link establishment failed (the paper's 'normal Bluetooth fault')."""


class OutOfRange(Exception):
    """Link establishment failed because the peer left coverage."""


class Link:
    """An established physical link between ``node_a`` and ``node_b``."""

    _ids = 0

    def __init__(self, world: World, node_a: str, node_b: str,
                 tech: Technology):
        Link._ids += 1
        self.link_id = Link._ids
        self.world = world
        self.sim = world.sim
        self.node_a = node_a
        self.node_b = node_b
        self.tech = tech
        self.established_at = world.sim.now
        self._open = True
        self._inboxes: dict[str, Store] = {
            node_a: Store(world.sim, f"link{self.link_id}:to:{node_a}"),
            node_b: Store(world.sim, f"link{self.link_id}:to:{node_b}"),
        }
        self._busy_until: dict[str, float] = {node_a: 0.0, node_b: 0.0}
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost = 0
        # Scheduled teardown: break at the predicted instant the pair
        # leaves coverage (dormant for settled in-range pairs).
        self._down_watch = world.bus.watch_link_down(
            node_a, node_b, tech, self._scheduled_break)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        """True until :meth:`close` is called or a frame loss downs it."""
        return self._open

    def peer_of(self, node_id: str) -> str:
        """The other endpoint."""
        if node_id == self.node_a:
            return self.node_b
        if node_id == self.node_b:
            return self.node_a
        raise ValueError(f"{node_id!r} is not an endpoint of {self!r}")

    def quality(self) -> int:
        """Current link quality (0–255) as the monitor thread would read
        it.  O(1) pair query."""
        return self.world.link_quality(self.node_a, self.node_b, self.tech)

    def in_range(self) -> bool:
        """True while the endpoints are within radio range.  O(1) pair
        query — independent of world size."""
        return self.world.in_range(self.node_a, self.node_b, self.tech)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def send(self, sender: str, payload: object, size_bytes: int) -> float:
        """Queue ``payload`` for the peer; returns the delivery time.

        The link serialises frames per direction (one radio); delivery time
        is ``max(now, direction busy-until) + transmit_time``.  If the link
        is already down the frame is silently dropped (Write is unaware of
        the loss, §6.1) and ``inf`` is returned.

        Under a lossy PHY plane (``world.phy``) each frame is also
        registered on the air for its transmit window; the plane decides
        its fate at the delivery instant.  A PHY-lost frame counts in
        ``frames_lost`` but does *not* down the link — the carrier
        survives a faded frame, which is exactly what gives
        :class:`~repro.core.buffering.ReliableChannel` retransmissions
        something real to recover from.
        """
        receiver = self.peer_of(sender)
        if not self._open:
            self.frames_lost += 1
            return float("inf")
        self.frames_sent += 1
        start = max(self.sim.now, self._busy_until[sender])
        delivery_time = start + self.tech.transmit_time(size_bytes)
        self._busy_until[sender] = delivery_time
        phy = getattr(self.world, "phy", None)
        phy_tx = None
        if phy is not None:
            phy_tx = phy.begin(sender, receiver, size_bytes, kind="frame",
                               tech=self.tech, started_at=start,
                               ends_at=delivery_time)
        delay = delivery_time - self.sim.now
        timer = self.sim.timeout(delay)
        timer._add_callback(
            lambda _event: self._deliver(receiver, payload, phy_tx))
        return delivery_time

    def _deliver(self, receiver: str, payload: object,
                 phy_tx: object | None = None) -> None:
        if not self._open:
            self.frames_lost += 1
            return
        if not self.in_range():
            # The peers drifted apart while the frame was in flight: the
            # frame is lost and the link is physically down.
            self.frames_lost += 1
            self._break()
            return
        if phy_tx is not None:
            phy = getattr(self.world, "phy", None)
            if phy is not None and not phy.resolve(phy_tx):
                # Faded or collided at the receiver: frame lost, link up.
                self.frames_lost += 1
                return
        self.frames_delivered += 1
        self._inboxes[receiver].put(payload)

    def receive(self, receiver: str) -> Event:
        """Event that fires with the next frame addressed to ``receiver``.

        Fails with :class:`ChannelClosed` if the link is (or becomes)
        closed while waiting — buffered frames are still drained first.
        """
        inbox = self._inboxes[receiver]
        if not self._open and len(inbox) == 0:
            failed = Event(self.sim, "receive-on-closed-link")
            failed.fail(ChannelClosed(f"link {self.link_id} is closed"))
            return failed
        return inbox.get()

    def pending(self, receiver: str) -> int:
        """Frames buffered for ``receiver``."""
        return len(self._inboxes[receiver])

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Orderly local close; idempotent."""
        self._break()

    def _scheduled_break(self, _event) -> None:
        """The bus-predicted LinkDown instant arrived: go down now."""
        self._break()

    def _break(self) -> None:
        if not self._open:
            return
        self._open = False
        watch = self._down_watch
        if watch is not None:
            self._down_watch = None
            watch.cancel()
        for inbox in self._inboxes.values():
            while inbox.pending_getters:
                getter = inbox._getters.popleft()
                getter.fail(ChannelClosed(f"link {self.link_id} closed"))

    def __repr__(self) -> str:
        state = "open" if self._open else "closed"
        return (f"<Link#{self.link_id} {self.node_a}<->{self.node_b} "
                f"{self.tech.name} {state}>")


class LinkEstablisher:
    """Creates physical links with realistic latency and faults.

    One establisher per simulation; it owns the RNG stream for connect
    times and fault draws so results are reproducible.
    """

    def __init__(self, world: World, rng: RandomStream | None = None):
        self.world = world
        self.sim = world.sim
        self.rng = rng or world.sim.rng("link-establisher")
        self.attempts = 0
        self.faults = 0
        self.range_failures = 0

    def connect(self, initiator: str, target: str, tech: Technology,
                retries: int = 0) -> typing.Generator:
        """Process generator: establish a link or raise.

        Models the full attempt: the initiator spends the technology's
        connect time, then the attempt fails with :class:`OutOfRange` if
        the peer has left coverage, or with :class:`ConnectFault` with the
        technology's fault probability.  ``retries`` extra attempts are
        made on :class:`ConnectFault` (the §4.3 recommendation); range
        failures are not retried — the peer is gone.
        """
        last_fault: Exception | None = None
        for _attempt in range(retries + 1):
            self.attempts += 1
            duration = self.rng.uniform(
                tech.connect_time_min, tech.connect_time_max)
            yield self.sim.timeout(duration)
            if not self.world.in_range(initiator, target, tech):
                self.range_failures += 1
                raise OutOfRange(
                    f"{target} out of {tech.name} range of {initiator}")
            if self.rng.bernoulli(tech.connect_fault_probability):
                self.faults += 1
                last_fault = ConnectFault(
                    f"{tech.name} establishment fault "
                    f"{initiator} -> {target}")
                continue
            return Link(self.world, initiator, target, tech)
        assert last_fault is not None
        raise last_fault
