"""The experiments CLI: ``python -m repro.experiments list|run|report``.

* ``list`` — bundled specs, registered scenarios (with schemas) and
  workloads;
* ``run SPEC`` — expand the grid, execute it as a *campaign* (``--
  workers N``, ``--backend``): journaled to ``runs.journal.jsonl`` (an
  interrupted run resumes where it stopped — just re-run the same
  command), memoized through a content-addressed run cache (default
  ``<out>/cache``; share one with ``--cache-dir`` so grown sweeps only
  compute new cells), writing ``runs.jsonl`` + aggregated
  ``summary.csv`` + ``campaign.json`` stats under ``--out`` (default
  ``results/<spec>/``) and printing the aggregate table;
* ``report SPEC`` — re-aggregate an existing ``runs.jsonl`` without
  re-running anything.

``runs.jsonl`` and ``summary.csv`` are byte-identical for any
``--workers`` value, across interruptions and across cache states —
see :mod:`repro.experiments.campaign` for the contract.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments import campaign as campaign_mod
from repro.experiments import report as report_mod
from repro.experiments import runner as runner_mod
from repro.experiments.dispatch import backend_names, make_backend
from repro.experiments.registry import get_scenario, scenario_names
from repro.experiments.specs import get_spec, spec_names
from repro.experiments.workloads import workload_names
from repro.metrics.tables import print_table


def _out_dir(args) -> pathlib.Path:
    if args.out is not None:
        return pathlib.Path(args.out)
    return pathlib.Path("results") / args.spec


def cmd_list(_args) -> int:
    rows = []
    for name in spec_names():
        spec = get_spec(name)
        rows.append([name, spec.workload, spec.size(), spec.description])
    print_table("Bundled experiment specs",
                ["spec", "workload", "runs", "description"], rows)
    rows = []
    for name in scenario_names():
        entry = get_scenario(name)
        schema = ", ".join(
            f"{p.name}:{p.kind.__name__}={p.default!r}"
            for p in entry.params) or "-"
        rows.append([name, schema, entry.summary])
    print_table("Registered scenarios",
                ["scenario", "parameters", "summary"], rows)
    print_table("Registered workloads", ["workload"],
                [[name] for name in workload_names()])
    return 0


def _campaign_progress_printer(verbose: bool, show_eta: bool):
    """Build the campaign's ``progress`` callback.

    Progress is *presentation only*: it prints to stderr from the
    collecting (parent) process in grid order, driven by wall-clock —
    none of it can reach ``runs.jsonl``/``telemetry.jsonl``, so the
    byte-identity contract is untouched.  ETA extrapolates over
    *executed* cells only (journal/cache hits are near-free and would
    skew the rate).
    """
    import time
    started = time.perf_counter()
    hits = [0]
    executed = [0]

    def progress(event):
        total = event["total"]
        width = len(str(total))
        source = event["source"]
        if source in ("journal", "cache"):
            hits[0] += 1
            if not verbose:
                return    # hits are silent unless asked for
        else:
            executed[0] += 1
        parts = [f"[{event['done']:>{width}}/{total}]"]
        if hits[0]:
            parts.append(f"hits {hits[0]}")
        if show_eta and executed[0]:
            elapsed = time.perf_counter() - started
            remaining_cells = total - event["done"]
            rate = elapsed / executed[0]
            parts.append(f"eta {rate * remaining_cells:5.1f}s"
                         if remaining_cells else f"done {elapsed:5.1f}s")
        record = event["record"]
        if verbose:
            parts.append(
                f"{record['scenario']} {record['params']} "
                f"rep{record['repeat']} [{source}]"
                if record is not None else f"[{source}]")
        print("  " + " ".join(parts), file=sys.stderr)

    return progress


def _print_campaign(spec, result, args, out_dir) -> None:
    stats = result.stats
    print(f"campaign: total={stats.total} executed={stats.executed} "
          f"cache_hits={stats.cache_hits} "
          f"journal_hits={stats.journal_hits} "
          f"failures={len(stats.failures)}")
    records = result.records
    rows = report_mod.aggregate(records)
    wall = sum(r.timings.get("wall_s", 0.0) for r in result.results)
    print(report_mod.aggregate_table(
        f"{spec.name}: {len(records)} runs "
        f"(total simulated work {wall:.1f}s of wall-clock)", rows))
    print(f"\nwrote {result.jsonl_path} and {result.csv_path}")
    if args.telemetry:
        telemetry_path, timeline_path = runner_mod.write_telemetry(
            result.results, out_dir)
        print(f"wrote {telemetry_path} and {timeline_path}")


def cmd_run(args) -> int:
    spec = get_spec(args.spec)
    if args.seed is not None:
        import dataclasses
        spec = dataclasses.replace(spec, master_seed=args.seed)
    out_dir = _out_dir(args)
    total = spec.size()
    backend = make_backend(args.backend, workers=args.workers)
    cache_dir = None
    if not args.no_cache:
        cache_dir = (pathlib.Path(args.cache_dir)
                     if args.cache_dir is not None
                     else out_dir / "cache")
    print(f"spec {spec.name!r}: {total} runs, workload "
          f"{spec.workload!r}, backend {backend.describe()} -> {out_dir}"
          + (f" (cache {cache_dir})" if cache_dir is not None else ""))

    progress = None
    if args.verbose or args.progress:
        progress = _campaign_progress_printer(verbose=args.verbose,
                                              show_eta=args.progress)

    try:
        result = campaign_mod.run_campaign(
            spec, out_dir, backend=backend, cache_dir=cache_dir,
            telemetry=args.telemetry, progress=progress)
    except campaign_mod.CampaignError as error:
        result = error.result
        _print_campaign(spec, result, args, out_dir)
        print(f"\ncampaign failed: {error}", file=sys.stderr)
        for failure in result.stats.failures:
            print(f"  {failure['label']}: {failure['error']}",
                  file=sys.stderr)
        print(f"(completed cells are journaled in {result.journal_path}"
              f" — re-run the same command to retry only the failures)",
              file=sys.stderr)
        return 1
    _print_campaign(spec, result, args, out_dir)
    return 0


def cmd_report(args) -> int:
    out_dir = _out_dir(args)
    jsonl_path = out_dir / "runs.jsonl"
    if not jsonl_path.exists():
        print(f"no results at {jsonl_path}; run the spec first:\n"
              f"  python -m repro.experiments run {args.spec}",
              file=sys.stderr)
        return 1
    records = runner_mod.read_jsonl(jsonl_path)
    rows = report_mod.aggregate(records)
    csv_path = report_mod.write_csv(rows, out_dir / "summary.csv")
    print(report_mod.aggregate_table(
        f"{args.spec}: {len(records)} recorded runs", rows))
    print(f"\nwrote {csv_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Declarative simulation sweeps: list, run, report.")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "list", help="show bundled specs, scenarios and workloads")

    run_parser = commands.add_parser(
        "run", help="execute a bundled spec and write JSONL + CSV")
    run_parser.add_argument("spec", help="bundled spec name")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes (default 1; output is "
                                 "identical at any value)")
    run_parser.add_argument("--backend", default=None,
                            choices=backend_names(),
                            help="dispatch backend (default: serial at "
                                 "1 worker, process above)")
    run_parser.add_argument("--out", default=None,
                            help="output directory "
                                 "(default results/<spec>/)")
    run_parser.add_argument("--cache-dir", default=None,
                            help="content-addressed run cache (default "
                                 "<out>/cache; share one directory so "
                                 "grown sweeps only compute new cells)")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="disable the run cache (the journal "
                                 "still makes the run resumable)")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the spec's master seed")
    run_parser.add_argument("--verbose", action="store_true",
                            help="print per-run progress to stderr")
    run_parser.add_argument("--progress", action="store_true",
                            help="print completed/total with ETA to "
                                 "stderr (never into recorded output)")
    run_parser.add_argument("--telemetry", action="store_true",
                            help="attach passive recorders and write "
                                 "telemetry.jsonl + timeline.csv next "
                                 "to runs.jsonl (recorded metrics are "
                                 "unchanged)")

    report_parser = commands.add_parser(
        "report", help="re-aggregate an existing runs.jsonl")
    report_parser.add_argument("spec", help="bundled spec name")
    report_parser.add_argument("--out", default=None,
                               help="results directory "
                                    "(default results/<spec>/)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"list": cmd_list, "run": cmd_run,
               "report": cmd_report}[args.command]
    return handler(args)
