"""Shared-resource primitives built on events.

PeerHood needs three coordination shapes:

* :class:`Lock` — the thesis' "critical zone control" guarding the shared
  ``DeviceStorage`` and the bridge connection list (§3.5, §4.2);
* :class:`Resource` — a counted pool (e.g. a bridge's maximum simultaneous
  relayed connections, §4.0);
* :class:`Store` — an unbounded FIFO used to model sockets' receive queues
  and the daemon⇄library local-socket hop.
"""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Event, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Resource:
    """A pool of ``capacity`` identical slots.

    ``acquire()`` returns an event that fires when a slot is granted;
    ``release()`` frees one.  Grants are FIFO.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: collections.deque[Event] = collections.deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending acquire requests."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Request a slot.  The returned event fires when granted."""
        request = Event(self.sim, f"acquire:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            request.succeed(self)
        else:
            self._waiters.append(request)
        return request

    def release(self) -> None:
        """Free a slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            request = self._waiters.popleft()
            request.succeed(self)
        else:
            self._in_use -= 1

    def cancel(self, request: Event) -> bool:
        """Withdraw a pending acquire request.  Returns True if removed."""
        try:
            self._waiters.remove(request)
            return True
        except ValueError:
            return False


class Lock(Resource):
    """A mutex: a :class:`Resource` of capacity one."""

    def __init__(self, sim: "Simulator", name: str = ""):
        super().__init__(sim, capacity=1, name=name)

    @property
    def locked(self) -> bool:
        """True while held."""
        return self._in_use > 0


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks (mobile-device sockets in the thesis buffer in the
    kernel); ``get`` returns an event that fires with the oldest item.
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: collections.deque[object] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def pending_getters(self) -> int:
        """Number of blocked ``get`` calls."""
        return len(self._getters)

    def put(self, item: object) -> None:
        """Append ``item``, waking the oldest blocked getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        request = Event(self.sim, f"get:{self.name}")
        if self._items:
            request.succeed(self._items.popleft())
        else:
            self._getters.append(request)
        return request

    def get_nowait(self) -> object:
        """Pop the next item immediately; raises if empty."""
        if not self._items:
            raise SimulationError(f"get_nowait() on empty store {self.name!r}")
        return self._items.popleft()

    def cancel(self, request: Event) -> bool:
        """Withdraw a pending get request.  Returns True if removed."""
        try:
            self._getters.remove(request)
            return True
        except ValueError:
            return False

    def clear(self) -> None:
        """Drop all buffered items (used when a connection is torn down)."""
        self._items.clear()
