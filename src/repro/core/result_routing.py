"""Result routing: deliver a migrated task's result after a break (§5.3).

"We consider the optimal would be the server establishes the connection
with client after the data processing."

Client side: flag the end of sending (``connection.set_sending(False)``)
so the HandoverThread leaves the dying link alone, and wait on a
registered *reply service* for the server's call-back connection.

Server side: :func:`deliver_result` writes the result on the original
connection when it is still alive; otherwise it looks the client up in the
daemon's routing table (waiting for discovery to find it if necessary) and
opens a new connection — possibly bridged — to the client's reply service
(the §5.3 "method 2" parameters carried in :class:`~repro.core.protocol.
ClientParams` make this possible without the extra 'client' service of
method 1).
"""

from __future__ import annotations

import typing

from repro.core.connection import PeerHoodConnection
from repro.core.errors import NoRouteError, PeerHoodError
from repro.core.protocol import ClientParams
from repro.radio.channel import ConnectFault, OutOfRange

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.library import PeerHoodLibrary


class ResultDeliveryFailed(PeerHoodError):
    """The server could not reach the client within the deadline."""


def deliver_result(library: "PeerHoodLibrary",
                   connection: PeerHoodConnection,
                   payload: object, size_bytes: int,
                   deadline_s: float = 120.0,
                   retry_interval_s: float = 5.0) -> typing.Generator:
    """Process generator: get ``payload`` back to the client.

    Returns ``"direct"`` if the original connection still carried it, or
    ``"reconnect"`` if a new connection (Fig. 5.10's "Reconnect to
    client" branch) was needed.  Raises :class:`ResultDeliveryFailed`
    after ``deadline_s`` of failed attempts.
    """
    if connection.transport_alive():
        connection.write(payload, size_bytes)
        library.fabric.trace.record(
            library.sim.now, library.node_id, "result-delivered",
            mode="direct", connection_id=connection.connection_id)
        return "direct"
    params = connection.remote_params
    if params is None or not params.reply_service:
        raise ResultDeliveryFailed(
            "connection broken and the client sent no reply-service "
            "parameters (§5.3 method 2 not in use)")
    reply_connection = yield from _connect_back(
        library, params, deadline_s, retry_interval_s)
    reply_connection.write(payload, size_bytes)
    library.fabric.trace.record(
        library.sim.now, library.node_id, "result-delivered",
        mode="reconnect", connection_id=reply_connection.connection_id,
        client=params.address)
    return "reconnect"


def _connect_back(library: "PeerHoodLibrary", params: ClientParams,
                  deadline_s: float,
                  retry_interval_s: float) -> typing.Generator:
    """Find the client in the routing table and connect, with retries."""
    sim = library.sim
    give_up_at = sim.now + deadline_s
    last_error: Exception | None = None
    while sim.now < give_up_at:
        entry = library.node.daemon.storage.get(params.address)
        if entry is None:
            # "server looks for the device in its neighborhood routing
            # table" — not there yet; wait for discovery to catch up.
            yield sim.timeout(retry_interval_s)
            continue
        try:
            reply_connection = yield from library.connect(
                params.address, params.reply_service,
                retries=library.node.config.connect_retries)
            return reply_connection
        except (ConnectFault, OutOfRange, NoRouteError,
                PeerHoodError) as error:
            last_error = error
            yield sim.timeout(retry_interval_s)
    raise ResultDeliveryFailed(
        f"could not reach client {params.address!r} within "
        f"{deadline_s:.0f} s: {last_error}")


class ResultWaiter:
    """Client-side helper: a one-shot reply service.

    Registers ``service_name`` (hidden from discovery responses would
    defeat the server's connect, so it is visible — this *is* the paper's
    method-1 downside, which method 2 mitigates by telling only the server
    about it) and exposes an event that fires with the first payload
    received on it.
    """

    def __init__(self, library: "PeerHoodLibrary", service_name: str):
        self.library = library
        self.sim = library.sim
        self.service_name = service_name
        self.result_event = self.sim.event(f"result:{service_name}")
        library.register_service(service_name, self._on_connection)

    def _on_connection(self, connection: PeerHoodConnection):
        def receive(connection=connection):
            try:
                payload = yield from connection.read()
            except PeerHoodError:
                return
            if not self.result_event.triggered:
                self.result_event.succeed(payload)
        return receive()

    def wait(self) -> typing.Generator:
        """Process generator: block until the result arrives; returns it."""
        payload = yield self.result_event
        return payload
