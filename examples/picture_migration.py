#!/usr/bin/env python
"""Task migration with a walking client — the thesis' headline scenario.

A phone offloads a picture-analysis job to a fixed server (§1.1's
motivating example), then its owner walks down the corridor while the
server is still crunching.  Two relay devices sit along the corridor, so
dynamic device discovery keeps a route alive and the server delivers the
annotated picture through the mesh (§5.3's result routing).

Run with::

    python examples/picture_migration.py
"""

from repro.apps.picture_analysis import (
    PictureAnalysisClient,
    PictureAnalysisServer,
)
from repro.mobility import CorridorWalk
from repro.scenarios import Scenario

SETTLE_S = 180.0


def main() -> None:
    scenario = Scenario(seed=11)
    server_node = scenario.add_node("office-server", position=(0.0, 0.0),
                                    mobility_class="static")
    scenario.add_node("corridor-relay-1", position=(8.0, 0.0),
                      mobility_class="static")
    scenario.add_node("corridor-relay-2", position=(16.0, 0.0),
                      mobility_class="static")
    phone_node = scenario.add_node(
        "phone",
        mobility=CorridorWalk(origin=(6.0, 0.0), heading_deg=0.0,
                              speed=1.4, depart_time=SETTLE_S + 12.0,
                              stop_distance=14.0),
        mobility_class="dynamic")

    server = PictureAnalysisServer(server_node,
                                   processing_time_per_package_s=6.0,
                                   delivery_deadline_s=300.0)
    client = PictureAnalysisClient(phone_node, package_count=10)

    scenario.start_all()
    print("discovering the neighbourhood...")
    scenario.settle_discovery(SETTLE_S)

    result = scenario.run_process(client.run(server,
                                             result_deadline_s=500.0))

    print("== picture migration outcome ==")
    print(f"  uploaded:        {result.uploaded} "
          f"({result.packages_sent} packages, "
          f"{result.upload_time_s:.2f} s)")
    print(f"  result received: {result.result_received} "
          f"(mode: {result.result_mode or 'n/a'})")
    print(f"  total time:      {result.total_time_s:.1f} s")
    print(f"  server stats:    {server.jobs_received} received, "
          f"{server.jobs_completed} completed, "
          f"modes {server.delivery_modes}")
    walked = scenario.world.position("phone")
    print(f"  phone ended at x={walked[0]:.1f} m — outside the server's "
          f"10 m Bluetooth radius, result came back through the relays")
    for event in scenario.trace.events("result-delivered"):
        print(f"  trace: {event}")


if __name__ == "__main__":
    main()
