"""Gnutella-style flooding search (§3.2).

"Whenever the user wants to do a search, the client would send the request
to each node it is actively connected to ... each node then forwards the
request to all the nodes it is connected to and they in turn forward the
request, and so on, until the packet is from a predetermined number of
'hops' from the sender."

The baseline runs over the same radio world as PeerHood (the overlay edge
set is the in-range graph) and counts every query and response message, so
the §3.2 traffic comparison — flooding per-search cost versus PeerHood's
periodic neighbour exchange — is apples to apples.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.metrics.counters import TrafficMeter
from repro.radio.technologies import Technology
from repro.radio.world import World

#: Gnutella's classic default TTL.
DEFAULT_TTL = 7

#: Approximate on-air size of one query / one query-hit, bytes.
QUERY_SIZE_BYTES = 80
HIT_SIZE_BYTES = 120


@dataclasses.dataclass
class SearchResult:
    """Outcome of one flooded search."""

    origin: str
    found_at: list[str]
    query_messages: int
    hit_messages: int
    nodes_reached: int


class GnutellaNode:
    """One overlay node with a resource table."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self.resources: set[str] = set()
        self.queries_seen: set[int] = set()

    def add_resource(self, name: str) -> None:
        """Publish a named resource on this node."""
        self.resources.add(name)


class GnutellaNetwork:
    """Flooding search over the radio world's connectivity graph."""

    def __init__(self, world: World, tech: Technology,
                 meter: TrafficMeter | None = None):
        self.world = world
        self.tech = tech
        self.meter = meter or TrafficMeter()
        self.nodes: dict[str, GnutellaNode] = {}
        self._query_counter = 0

    def add_node(self, node_id: str) -> GnutellaNode:
        """Wrap an existing world node as an overlay participant."""
        if not self.world.has_node(node_id):
            raise KeyError(f"world has no node {node_id!r}")
        if node_id in self.nodes:
            raise ValueError(f"overlay node exists: {node_id!r}")
        node = GnutellaNode(node_id)
        self.nodes[node_id] = node
        return node

    def _neighbors(self, node_id: str) -> list[str]:
        return [other for other in self.world.neighbors(node_id, self.tech)
                if other in self.nodes]

    def search(self, origin: str, resource: str,
               ttl: int = DEFAULT_TTL) -> SearchResult:
        """Run one flooded search and tally its traffic.

        The flood is evaluated as a breadth-first wave: each node forwards
        the query to all its overlay neighbours until the TTL runs out;
        duplicate deliveries still cost a message (that is Gnutella's
        problem), but a node forwards each query id only once.  Hits
        travel back along the query path (one message per hop).
        """
        if origin not in self.nodes:
            raise KeyError(f"unknown origin {origin!r}")
        if ttl < 1:
            raise ValueError(f"ttl must be >= 1: {ttl}")
        self._query_counter += 1
        query_id = self._query_counter
        query_messages = 0
        hit_messages = 0
        found_at: list[str] = []
        reached: set[str] = {origin}
        # Frontier entries: (node, remaining_ttl, path_length_from_origin).
        frontier: list[tuple[str, int, int]] = [(origin, ttl, 0)]
        self.nodes[origin].queries_seen.add(query_id)
        while frontier:
            next_frontier: list[tuple[str, int, int]] = []
            for node_id, remaining, depth in frontier:
                if remaining <= 0:
                    continue
                for neighbor_id in self._neighbors(node_id):
                    query_messages += 1
                    self.meter.count(node_id, "query", QUERY_SIZE_BYTES)
                    neighbor = self.nodes[neighbor_id]
                    if query_id in neighbor.queries_seen:
                        continue  # duplicate: delivered but not forwarded
                    neighbor.queries_seen.add(query_id)
                    reached.add(neighbor_id)
                    if resource in neighbor.resources:
                        found_at.append(neighbor_id)
                        # The hit travels back along the same route.
                        hit_messages += depth + 1
                        self.meter.count(neighbor_id, "query",
                                         HIT_SIZE_BYTES * (depth + 1),
                                         messages=depth + 1)
                    next_frontier.append(
                        (neighbor_id, remaining - 1, depth + 1))
            frontier = next_frontier
        return SearchResult(
            origin=origin,
            found_at=sorted(found_at),
            query_messages=query_messages,
            hit_messages=hit_messages,
            nodes_reached=len(reached),
        )
