"""Declarative experiment specs: a named parameter grid plus a workload.

An :class:`ExperimentSpec` is pure data — scenario names, axis values,
repeat count, master seed — describing a full campaign (scenario × node
count × radio mix × … × repeats).  :meth:`ExperimentSpec.expand` turns it
into a flat, deterministically-ordered list of :class:`RunPoint`\\ s, one
per grid cell per repeat.

Seed-derivation invariant
-------------------------
Every run's seed is ``derive_seed(master_seed, label)`` where the label
encodes the spec name, scenario, canonicalised parameters and repeat
index — *not* the run's position in the grid.  Adding an axis value or
reordering axes therefore never changes the seed (hence the results) of
any pre-existing cell, and results are independent of execution order:
the multiprocess runner produces byte-identical output at any worker
count.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import typing

from repro.experiments.registry import get_scenario
from repro.sim.rng import derive_seed


def canonical(value: object) -> object:
    """JSON-safe canonical form of an axis value (tuples become lists)."""
    if isinstance(value, tuple):
        return [canonical(v) for v in value]
    if isinstance(value, list):
        return [canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in value.items()}
    return value


def canonical_json(mapping: typing.Mapping[str, object]) -> str:
    """Deterministic JSON rendering of a parameter mapping."""
    return json.dumps({k: canonical(v) for k, v in mapping.items()},
                      sort_keys=True, separators=(",", ":"))


@dataclasses.dataclass(frozen=True)
class RunPoint:
    """One cell of the expanded grid: a single simulation run."""

    spec: str                       #: owning spec name
    workload: str                   #: registered workload to execute
    index: int                      #: position in the expanded grid
    scenario: str                   #: registered scenario name
    params: dict[str, object]       #: scenario parameters (axis values)
    repeat: int                     #: repeat index within the cell
    seed: int                       #: derived master seed for this run
    settings: dict[str, object]     #: workload settings (shared, fixed)

    def label(self) -> str:
        """The seed-derivation label (position-independent)."""
        return run_label(self.spec, self.scenario, self.params, self.repeat)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form (picklable, JSON-safe) for worker transport."""
        return {
            "spec": self.spec,
            "workload": self.workload,
            "index": self.index,
            "scenario": self.scenario,
            "params": {k: canonical(v) for k, v in self.params.items()},
            "repeat": self.repeat,
            "seed": self.seed,
            "settings": {k: canonical(v) for k, v in self.settings.items()},
        }

    @staticmethod
    def from_dict(data: typing.Mapping[str, object]) -> "RunPoint":
        return RunPoint(
            spec=data["spec"], workload=data["workload"],
            index=data["index"], scenario=data["scenario"],
            params=dict(data["params"]), repeat=data["repeat"],
            seed=data["seed"], settings=dict(data["settings"]))


def run_label(spec_name: str, scenario: str,
              params: typing.Mapping[str, object], repeat: int) -> str:
    """The stable per-run seed label (see module docstring)."""
    return (f"{spec_name}/{scenario}/"
            f"{canonical_json(params)}/rep{repeat}")


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """A declarative parameter grid over registered scenarios.

    Parameters
    ----------
    name:
        Campaign name; namespaces output files and seed labels.
    workload:
        Registered workload (see :mod:`repro.experiments.workloads`)
        executed once per run.
    scenarios:
        Scenario-name axis (the grid's first axis).
    axes:
        Further axes, ``param name → values``.  Each named parameter
        must exist in the schema of *every* listed scenario, since the
        grid is a full cross product.
    repeats:
        Independent repeats per grid cell (distinct derived seeds).
    master_seed:
        Root of all per-run seed derivation.
    settings:
        Fixed workload settings shared by every run (e.g. settle time).
    version:
        Campaign-cache epoch.  Every cached cell's key includes it, so
        bumping the version retires all previously memoized results of
        this spec at once — the escape hatch for semantic changes the
        key cannot see (a scenario factory edit, a unit change).
        Growing axes or repeats is *not* such a change: leave the
        version alone and old cells stay valid.
    """

    name: str
    workload: str
    scenarios: tuple[str, ...]
    axes: dict[str, tuple] = dataclasses.field(default_factory=dict)
    repeats: int = 1
    master_seed: int = 0
    settings: dict[str, object] = dataclasses.field(default_factory=dict)
    description: str = ""
    version: int = 1

    def __post_init__(self):
        if not self.name:
            raise ValueError("spec needs a non-empty name")
        if self.version < 1:
            raise ValueError(
                f"spec {self.name!r}: version must be >= 1, "
                f"got {self.version}")
        if not self.scenarios:
            raise ValueError(f"spec {self.name!r} lists no scenarios")
        if self.repeats < 1:
            raise ValueError(
                f"spec {self.name!r}: repeats must be >= 1, "
                f"got {self.repeats}")
        for axis, values in self.axes.items():
            if not values:
                raise ValueError(
                    f"spec {self.name!r}: axis {axis!r} has no values")
        # Validate the whole grid up front: every scenario exists and
        # accepts every axis parameter with a well-typed value.
        for scenario_name in self.scenarios:
            entry = get_scenario(scenario_name)
            for axis, values in self.axes.items():
                param = entry.param(axis)   # KeyError on unknown axis
                for value in values:
                    param.check(value)

    # ------------------------------------------------------------------
    def size(self) -> int:
        """Total number of runs in the expanded grid."""
        cells = len(self.scenarios)
        for values in self.axes.values():
            cells *= len(values)
        return cells * self.repeats

    def expand(self) -> list[RunPoint]:
        """The full grid in deterministic order.

        Cells iterate scenario-major, then each axis in sorted axis-name
        order (values in their declared order), then repeats — but a
        run's *seed* depends only on its label, never this ordering.
        """
        axis_names = sorted(self.axes)
        value_lists = [self.axes[a] for a in axis_names]
        points = []
        index = 0
        for scenario_name in self.scenarios:
            for combo in itertools.product(*value_lists):
                params = dict(zip(axis_names, combo))
                for repeat in range(self.repeats):
                    label = run_label(self.name, scenario_name, params,
                                      repeat)
                    points.append(RunPoint(
                        spec=self.name, workload=self.workload,
                        index=index, scenario=scenario_name,
                        params=dict(params), repeat=repeat,
                        seed=derive_seed(self.master_seed, label),
                        settings=dict(self.settings)))
                    index += 1
        return points
