"""Contact-trace recording and mobility-free replay."""

import dataclasses

from repro.experiments import ExperimentSpec, aggregate, get_spec, run_spec
from repro.radio.technologies import WLAN
from repro.scenarios import (
    ContactTraceRecorder,
    load_trace,
    record_contact_trace,
    replay_trace,
    sparse_highway,
    trace_digest,
    write_trace,
)


def record_highway(count=10, seed=4, until=120.0, path=None):
    scenario = sparse_highway(count=count, seed=seed)
    rows = record_contact_trace(scenario, WLAN, until=until, path=path)
    return scenario, rows


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------
def test_recorded_trace_is_time_ordered_and_alternates_per_pair():
    scenario, rows = record_highway()
    assert rows, "highway produced no contacts"
    times = [row["t"] for row in rows]
    assert times == sorted(times)
    per_pair: dict = {}
    for row in rows:
        pair = (row["a"], row["b"])
        assert row["a"] < row["b"]
        previous = per_pair.get(pair)
        assert row["kind"] != previous, f"non-alternating stream for {pair}"
        per_pair[pair] = row["kind"]
    # Self-containment: every pair's stream opens with a link-up (pairs
    # in contact at t0 get a synthetic opening edge).
    first_kind: dict = {}
    for row in rows:
        first_kind.setdefault((row["a"], row["b"]), row["kind"])
    assert set(first_kind.values()) == {"link-up"}


def test_recording_is_deterministic_across_runs():
    _, first = record_highway()
    _, second = record_highway()
    assert first == second
    assert trace_digest(first) == trace_digest(second)


def test_recorder_requires_pair_budget():
    scenario = sparse_highway(count=10, seed=1)
    try:
        ContactTraceRecorder(scenario, WLAN, max_pairs=3)
    except ValueError as error:
        assert "max_pairs" in str(error)
    else:  # pragma: no cover - guard
        raise AssertionError("expected the pair budget to trip")


def test_recording_costs_no_polling_wakeups():
    """Kernel events during recording ~ crossings, not N x duration."""
    scenario = sparse_highway(count=10, seed=4)
    before = scenario.sim.events_processed
    rows = record_contact_trace(scenario, WLAN, until=120.0)
    consumed = scenario.sim.events_processed - before
    # A poller at 1 Hz would need 10 * 120 = 1200 wakeups minimum.
    assert consumed < 10 * 120
    # Synthetic opening edges for contacts underway at t0 cost nothing.
    initial = sum(1 for row in rows if row["t"] == 0.0)
    assert consumed >= len(rows) - initial


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def test_replay_reemits_stream_byte_identically(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    _, rows = record_highway(path=trace_path)
    result = replay_trace(load_trace(trace_path))
    assert result.rows == rows
    assert result.digest() == trace_digest(rows)
    replay_path = tmp_path / "replayed.jsonl"
    write_trace(result.rows, replay_path)
    assert replay_path.read_bytes() == trace_path.read_bytes()


def test_replay_delivers_events_in_order_at_recorded_times():
    _, rows = record_highway(count=8)
    seen = []
    result = replay_trace(rows, on_event=lambda e: seen.append(e))
    assert [e.time for e in seen] == [row["t"] for row in rows]
    assert result.final_time == rows[-1]["t"]


# ----------------------------------------------------------------------
# through the experiments runner (the acceptance assertion)
# ----------------------------------------------------------------------
def test_trace_replays_byte_identically_through_runner(tmp_path):
    trace_path = tmp_path / "recorded.jsonl"
    replay_path = tmp_path / "replayed.jsonl"
    _, rows = record_highway(path=trace_path)

    spec = ExperimentSpec(
        name="replay_gate", workload="trace_replay",
        scenarios=("replay_arena",),
        settings={"trace_path": str(trace_path),
                  "out_path": str(replay_path)})
    results = run_spec(spec)
    metrics = results[0].record["metrics"]
    assert metrics["events"] == len(rows)
    assert metrics["digest"] == trace_digest(rows)
    assert replay_path.read_bytes() == trace_path.read_bytes()


def test_contact_trace_workload_runs_through_bundled_spec():
    spec = get_spec("contact_sweep")
    small = dataclasses.replace(
        spec, name="contact_smoke", scenarios=("sparse_highway",),
        axes={"count": (8,), "technologies": (("wlan",),)}, repeats=1,
        settings={"duration_s": 60.0, "tech": "wlan"})
    results = run_spec(small)
    metrics = results[0].record["metrics"]
    assert metrics["nodes"] == 8
    assert metrics["events"] == metrics["link_ups"] + metrics["link_downs"]
    # Synthetic opening edges aren't bus firings; everything else is.
    assert 0 < metrics["bus_fired"] <= metrics["events"]
    assert len(metrics["digest"]) == 64
    # The report layer treats the digest as identity, not sample data.
    rows = aggregate([r.record for r in results])
    assert "digest" not in rows[0].metrics
    assert rows[0].metrics["events"].count == 1
