"""Configuration objects for the daemon, routing policy and handover.

Defaults reproduce the paper's constants: quality threshold 230
(Figs. 3.9/5.8), three consecutive low readings before handover (§5.2.1),
service-checking interval for energy saving (§3.5), and the route
preference order jump → mobility → quality (Fig. 3.13).  The ablation
benchmarks flip individual flags here.
"""

from __future__ import annotations

import dataclasses

from repro.radio.quality import PAPER_LOW_QUALITY_THRESHOLD


@dataclasses.dataclass
class RoutingPolicy:
    """Route-selection knobs used by ``AnalyzeNeighbourhoodDevices``.

    Attributes
    ----------
    quality_threshold:
        Minimum acceptable per-link quality (Fig. 3.9's 230).
    use_quality_threshold:
        Apply the per-link rule when breaking quality ties.  Off, the
        comparison uses raw sums only (the ablation of Fig. 3.9).
    use_mobility:
        Prefer routes whose first hop is less mobile (§3.4.3's
        static-backbone argument).  Off, mobility is ignored.
    quality_first:
        Ablation: rank routes by quality before jump count, instead of the
        paper's jump-first order.
    max_jump:
        Discard routes longer than this many jumps (§3.4.2 recommends a
        limit for mobile devices because notification delay grows with
        hops).
    prefer_static_bridges:
        §3.4.3: "we will always give preference to static terminals as a
        bridge" — when choosing the next hop for an outgoing bridge
        connection, static candidates win ties.
    """

    quality_threshold: int = PAPER_LOW_QUALITY_THRESHOLD
    use_quality_threshold: bool = True
    use_mobility: bool = True
    quality_first: bool = False
    max_jump: int = 8
    prefer_static_bridges: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.quality_threshold <= 255:
            raise ValueError(
                f"quality threshold out of range: {self.quality_threshold}")
        if self.max_jump < 0:
            raise ValueError(f"negative max jump: {self.max_jump}")


@dataclasses.dataclass
class HandoverConfig:
    """Knobs of the HandoverThread (§5.2.1, Fig. 5.5).

    Attributes
    ----------
    low_quality_threshold:
        "Once this value is smaller than threshold 230, the signallow
        account increased."
    low_count_limit:
        "And when this account is bigger than three, the HandoverThread
        will proceed to change the connection to the second route."
    monitor_interval_s:
        Link-quality sampling period (the paper decays 1 unit per second
        and counts per reading, implying a 1 s cadence).
    route_refresh_interval_s:
        How often state 0 re-derives the best alternative route.
    max_handover_attempts:
        After this many failed routing handovers the thread falls back to
        service reconnection (§5.2.2: "after various attempts").
    connect_retries:
        Establishment retries for the replacement connection (§4.3
        recommends attempt repetition).
    respect_sending_flag:
        §5.3: when the application has finished sending (``sending`` is
        False) the thread "will be aware about the no need for the
        reconnection and avoid the routing handover or service
        reconnection".
    event_driven:
        True (default): state-1 monitoring subscribes to predicted
        quality-threshold crossings on the connectivity bus and sleeps
        until low readings are possible — same decisions as polling,
        a small fraction of the wakeups.  False: the paper-faithful
        fixed-interval polling loop, kept as the oracle baseline the
        equivalence tests and ``bench_event_handover`` compare against.
    """

    low_quality_threshold: int = PAPER_LOW_QUALITY_THRESHOLD
    low_count_limit: int = 3
    monitor_interval_s: float = 1.0
    route_refresh_interval_s: float = 5.0
    max_handover_attempts: int = 2
    connect_retries: int = 1
    respect_sending_flag: bool = True
    event_driven: bool = True

    def __post_init__(self) -> None:
        if self.monitor_interval_s <= 0:
            raise ValueError("monitor interval must be positive")
        if self.low_count_limit < 1:
            raise ValueError("low count limit must be >= 1")
        if not 0 <= self.low_quality_threshold <= 255:
            raise ValueError(
                f"low quality threshold out of range: "
                f"{self.low_quality_threshold}")


@dataclasses.dataclass
class DaemonConfig:
    """Per-daemon settings (the thesis' system configuration parameters).

    Attributes
    ----------
    service_check_interval_loops:
        §3.5: stored devices are re-fetched only every N inquiry loops
        "to achieve the energy saving".
    stale_after_loops:
        §3.5: "If one device doesn't respond to the inquiry during certain
        loop ... the device information should be removed" — we allow a
        small number of missed loops before eviction because Bluetooth's
        asymmetric discovery produces random misses (§3.4.2).
    unified_fetch:
        §3.4.1: "we could unify these 4 short connections to an only one
        longer connection" — True models the unified fetch, False the four
        separate short connections of Fig. 3.7.
    bridge_enabled:
        Run the hidden bridge service (§4.0 discusses switching it off on
        battery-constrained mobiles).
    bridge_max_connections:
        Maximum simultaneous relayed pairs (§4.0's owner-adjusted cap);
        0 means unlimited.
    advertise_load_in_quality:
        §4.0's idea: reduce the advertised link quality proportionally to
        bridge occupancy to steer routes away from bottlenecks.
    connect_retries:
        Library-level establishment retries for outgoing connections.
    """

    service_check_interval_loops: int = 3
    stale_after_loops: int = 3
    unified_fetch: bool = True
    bridge_enabled: bool = True
    bridge_max_connections: int = 8
    advertise_load_in_quality: bool = False
    connect_retries: int = 1
    routing: RoutingPolicy = dataclasses.field(default_factory=RoutingPolicy)
    handover: HandoverConfig = dataclasses.field(
        default_factory=HandoverConfig)

    def __post_init__(self) -> None:
        if self.service_check_interval_loops < 1:
            raise ValueError("service check interval must be >= 1 loop")
        if self.stale_after_loops < 1:
            raise ValueError("stale-after must be >= 1 loop")
        if self.bridge_max_connections < 0:
            raise ValueError("bridge max connections must be >= 0")
