"""Smoke tests for the large-N scenario family (dense plaza, sparse
highway, flash crowd) and mid-run churn through the spatial index."""

import pytest

from repro.radio import BLUETOOTH, WLAN
from repro.scenarios import dense_plaza, flash_crowd, sparse_highway


def assert_grid_matches_brute_force(world, tech):
    for node_id in world.node_ids():
        assert (world.neighbors(node_id, tech)
                == world.neighbors_brute_force(node_id, tech)), node_id


# ----------------------------------------------------------------------
# dense plaza
# ----------------------------------------------------------------------
def test_dense_plaza_discovery_converges_locally():
    scenario = dense_plaza(24, area=40.0, seed=5)
    scenario.start_all()
    scenario.run(until=90.0)
    # In a 40 m square with 10 m radios every pedestrian has neighbors
    # and discovery has had several inquiry cycles: most nodes know
    # someone, and the world's grid agrees with the pairwise oracle.
    aware = sum(1 for name in scenario.nodes
                if scenario.awareness(name))
    assert aware >= len(scenario.nodes) // 2
    assert_grid_matches_brute_force(scenario.world, BLUETOOTH)


def test_dense_plaza_validation():
    with pytest.raises(ValueError):
        dense_plaza(0)
    with pytest.raises(ValueError):
        dense_plaza(5, area=-1.0)


# ----------------------------------------------------------------------
# sparse highway
# ----------------------------------------------------------------------
def test_sparse_highway_vehicles_move_and_match_oracle():
    scenario = sparse_highway(16, length_m=1200.0, seed=9)
    world = scenario.world
    before = {node_id: world.position(node_id)
              for node_id in world.node_ids()}
    scenario.sim.timeout(10.0)
    scenario.sim.run()
    after = {node_id: world.position(node_id)
             for node_id in world.node_ids()}
    moved = [node_id for node_id in before if before[node_id]
             != after[node_id]]
    assert len(moved) == 16  # every vehicle is in motion
    # Motorway speeds: >= 200 m covered in 10 s is impossible, >= 150 m
    # for the fastest draw (33 m/s) plausible; just check the scale.
    for node_id in moved:
        dx = abs(after[node_id][0] - before[node_id][0])
        assert 100.0 <= dx <= 400.0
    assert_grid_matches_brute_force(world, WLAN)


def test_sparse_highway_validation():
    with pytest.raises(ValueError):
        sparse_highway(0)
    with pytest.raises(ValueError):
        sparse_highway(4, length_m=0.0)


# ----------------------------------------------------------------------
# flash crowd churn
# ----------------------------------------------------------------------
def test_flash_crowd_churns_through_and_cleans_up():
    scenario = flash_crowd(base_count=4, crowd_count=8, area=30.0,
                           arrive_start_s=10.0, mean_interarrival_s=0.5,
                           dwell_range_s=(15.0, 30.0), seed=2)
    scenario.start_all()
    world = scenario.world

    # Mid-burst: crowd members are present and running.
    scenario.run(until=25.0)
    crowd_present = [name for name in scenario.nodes if
                     name.startswith("c")]
    assert crowd_present, "no crowd walker arrived during the burst"
    assert_grid_matches_brute_force(world, BLUETOOTH)

    # Long after the last dwell expires: only residents remain, and all
    # world-level state about the crowd is gone.
    scenario.run(until=120.0)
    assert sorted(scenario.nodes) == ["r0", "r1", "r2", "r3"]
    assert world.node_ids() == ["r0", "r1", "r2", "r3"]
    assert not [key for key in world._inquiry_history
                if key[0].startswith("c")]
    assert scenario.fabric.node("c0") is None
    assert_grid_matches_brute_force(world, BLUETOOTH)
    # Residents keep discovering each other after the crowd left.
    assert any(scenario.awareness(name) for name in scenario.nodes)


def test_flash_crowd_validation():
    with pytest.raises(ValueError):
        flash_crowd(base_count=-1)
    with pytest.raises(ValueError):
        flash_crowd(mean_interarrival_s=0.0)


# ----------------------------------------------------------------------
# scenario-level removal API
# ----------------------------------------------------------------------
def test_scenario_remove_node_unknown_name_raises():
    scenario = dense_plaza(2, area=20.0, seed=1)
    with pytest.raises(KeyError):
        scenario.remove_node("nope")


def test_scenario_remove_node_drops_device_everywhere():
    scenario = dense_plaza(3, area=20.0, seed=1)
    scenario.start_all()
    scenario.run(until=5.0)
    scenario.remove_node("p1")
    assert "p1" not in scenario.nodes
    assert not scenario.world.has_node("p1")
    assert scenario.fabric.node("p1") is None
    scenario.run(until=40.0)  # survivors keep running
    assert_grid_matches_brute_force(scenario.world, BLUETOOTH)
