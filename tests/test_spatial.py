"""Unit tests for the spatial grid and its World integration."""

import pytest

from repro.mobility import LinearMovement, StaticPosition
from repro.mobility.base import distance
from repro.radio import BLUETOOTH, QUALITY_MAX, WLAN, SpatialGrid, World
from repro.sim import Simulator


# ----------------------------------------------------------------------
# SpatialGrid: pure data-structure behaviour
# ----------------------------------------------------------------------
def test_grid_cell_of_floor_semantics():
    grid = SpatialGrid(cell_size=10.0)
    assert grid.cell_of((0.0, 0.0)) == (0, 0)
    assert grid.cell_of((9.99, 9.99)) == (0, 0)
    assert grid.cell_of((10.0, 0.0)) == (1, 0)
    assert grid.cell_of((-0.01, -10.0)) == (-1, -1)
    assert grid.cell_of((-10.0, -10.01)) == (-1, -2)


def test_grid_rejects_bad_construction_and_queries():
    with pytest.raises(ValueError):
        SpatialGrid(cell_size=0.0)
    grid = SpatialGrid(cell_size=5.0)
    with pytest.raises(ValueError):
        grid.candidates((0.0, 0.0), -1.0)


def test_grid_membership_bookkeeping():
    grid = SpatialGrid(cell_size=10.0)
    grid.insert("a", (1.0, 1.0), mobile=False)
    grid.insert("b", (25.0, 1.0))
    assert len(grid) == 2
    assert "a" in grid and "b" in grid
    assert grid.point("b") == (25.0, 1.0)
    assert grid.mobile_ids() == ("b",)
    with pytest.raises(ValueError):
        grid.insert("a", (2.0, 2.0))
    grid.remove("a")
    assert "a" not in grid and len(grid) == 1
    with pytest.raises(KeyError):
        grid.remove("a")
    with pytest.raises(KeyError):
        grid.point("a")
    with pytest.raises(KeyError):
        grid.move("ghost", (0.0, 0.0))


def test_grid_move_rebuckets_only_on_cell_change():
    grid = SpatialGrid(cell_size=10.0)
    grid.insert("a", (1.0, 1.0))
    grid.move("a", (8.0, 8.0))  # same cell
    assert grid.rebuckets == 0
    grid.move("a", (11.0, 8.0))  # crossed into cell (1, 0)
    assert grid.rebuckets == 1
    assert grid.point("a") == (11.0, 8.0)
    assert "a" in grid.candidates((12.0, 8.0), 5.0)


def test_grid_candidates_never_miss_points_within_radius():
    grid = SpatialGrid(cell_size=10.0)
    points = {}
    index = 0
    for x in range(-25, 26, 5):
        for y in range(-25, 26, 5):
            name = f"n{index}"
            points[name] = (float(x), float(y))
            grid.insert(name, points[name])
            index += 1
    for center in ((0.0, 0.0), (-17.0, 12.0), (9.99, -10.0)):
        candidates = set(grid.candidates(center, 10.0))
        for name, point in points.items():
            if distance(center, point) <= 10.0:
                assert name in candidates, (name, point, center)


def test_grid_empty_cells_are_dropped():
    grid = SpatialGrid(cell_size=10.0)
    grid.insert("a", (1.0, 1.0))
    grid.move("a", (101.0, 101.0))
    grid.remove("a")
    assert grid._cells == {}


# ----------------------------------------------------------------------
# World integration
# ----------------------------------------------------------------------
def make_world():
    sim = Simulator(seed=3)
    return sim, World(sim)


def test_world_neighbors_match_brute_force_static():
    _, world = make_world()
    for index, position in enumerate(
            [(0, 0), (5, 0), (9, 3), (20, 0), (0, 9.9), (-8, 0), (50, 50)]):
        world.add_node(f"n{index}", StaticPosition(*position), [BLUETOOTH])
    for node_id in world.node_ids():
        assert (world.neighbors(node_id, BLUETOOTH)
                == world.neighbors_brute_force(node_id, BLUETOOTH))


def test_world_neighbors_track_motion():
    sim, world = make_world()
    world.add_node("base", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("walker", LinearMovement((0, 0), (1.0, 0.0)), [BLUETOOTH])
    assert world.neighbors("base", BLUETOOTH) == ["walker"]
    sim.timeout(11.0)
    sim.run()
    assert world.neighbors("base", BLUETOOTH) == []
    assert world.neighbors_brute_force("base", BLUETOOTH) == []


def test_world_neighbors_respect_technology_partitions():
    _, world = make_world()
    world.add_node("both", StaticPosition(0, 0), [BLUETOOTH, WLAN])
    world.add_node("bt", StaticPosition(5, 0), [BLUETOOTH])
    world.add_node("wl", StaticPosition(5, 5), [WLAN])
    assert world.neighbors("both", BLUETOOTH) == ["bt"]
    assert world.neighbors("both", WLAN) == ["wl"]
    assert world.neighbors("bt", WLAN) == []


def test_world_neighbors_unknown_node_is_empty():
    _, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    assert world.neighbors("ghost", BLUETOOTH) == []
    assert world.neighbors_brute_force("ghost", BLUETOOTH) == []


def test_world_node_added_after_grid_build_is_indexed():
    _, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    assert world.neighbors("a", BLUETOOTH) == []  # builds the grid
    world.add_node("b", StaticPosition(3, 0), [BLUETOOTH])
    assert world.neighbors("a", BLUETOOTH) == ["b"]
    assert world.neighbors("b", BLUETOOTH) == ["a"]


def test_world_grid_refreshes_only_when_clock_advances():
    sim, world = make_world()
    world.add_node("base", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("walker", LinearMovement((5, 0), (1.0, 0.0)),
                   [BLUETOOTH])
    world.neighbors("base", BLUETOOTH)
    world.neighbors("walker", BLUETOOTH)
    assert world.stats.grid_refreshes == 0  # same instant: no re-sync
    sim.timeout(1.0)
    sim.run()
    world.neighbors("base", BLUETOOTH)
    world.neighbors("base", BLUETOOTH)
    assert world.stats.grid_refreshes == 1  # one re-sync per new instant


# ----------------------------------------------------------------------
# remove_node eviction (regression: ISSUE 1 satellite fix)
# ----------------------------------------------------------------------
def test_remove_node_evicts_from_spatial_grid():
    _, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(3, 0), [BLUETOOTH])
    assert world.neighbors("a", BLUETOOTH) == ["b"]  # grid now built
    world.remove_node("b")
    assert world.neighbors("a", BLUETOOTH) == []
    assert world.neighbors_brute_force("a", BLUETOOTH) == []


def test_remove_node_evicts_quality_overrides_referencing_it():
    """A re-added device must not resurrect a stale quality override."""
    _, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(1, 0), [BLUETOOTH])
    world.set_quality_override("a", "b", BLUETOOTH, lambda t: 17)
    assert world.link_quality("a", "b", BLUETOOTH) == 17
    world.remove_node("b")
    assert world._overrides == {}
    # The device comes back (same id, fresh battery): physics applies,
    # not the override installed against its previous incarnation.
    world.add_node("b", StaticPosition(1, 0), [BLUETOOTH])
    assert world.link_quality("a", "b", BLUETOOTH) == QUALITY_MAX


def test_remove_node_evicts_inquiry_state():
    _, world = make_world()
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", StaticPosition(1, 0), [BLUETOOTH])
    world.mark_inquiring("b", BLUETOOTH, True)
    world.remove_node("b")
    assert not world.is_inquiring("b", BLUETOOTH)
    assert ("b", "bluetooth") not in world._inquiry_history
    world.add_node("b", StaticPosition(1, 0), [BLUETOOTH])
    assert world.is_discoverable("b", BLUETOOTH)


def test_remove_node_keeps_overrides_of_other_pairs():
    _, world = make_world()
    for name in ("a", "b", "c"):
        world.add_node(name, StaticPosition(0, 0), [BLUETOOTH])
    world.set_quality_override("a", "b", BLUETOOTH, lambda t: 11)
    world.set_quality_override("a", "c", BLUETOOTH, lambda t: 22)
    world.remove_node("c")
    assert world.link_quality("a", "b", BLUETOOTH) == 11
