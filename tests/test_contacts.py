"""The crossing-time solver: closed form, piecewise, bisection, oracle.

The satellite acceptance: predicted LinkUp/LinkDown times must match a
fine-grained brute-force time-stepped oracle for random mobility-model
pairs across all technologies (hypothesis property at the bottom).
"""

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.mobility import (
    CorridorWalk,
    LinearMovement,
    PathMovement,
    RandomWaypoint,
    StaticPosition,
)
from repro.mobility.base import distance
from repro.radio import BLUETOOTH, GPRS, WLAN, World
from repro.radio.contacts import (
    ContactSolver,
    bisect_predicate_flip,
    distance_crossings,
    next_distance_crossing,
)
from repro.radio.quality import PathLossQuality, PiecewiseLinearQuality
from repro.sim import Simulator
from repro.sim.rng import RandomStream


# ----------------------------------------------------------------------
# closed-form cases
# ----------------------------------------------------------------------
def test_static_linear_pair_exact_crossing():
    """b recedes at 1 m/s from 5 m: leaves the 10 m ring at t = 5."""
    crossing = next_distance_crossing(
        StaticPosition(0, 0), LinearMovement((5.0, 0.0), (1.0, 0.0)),
        10.0, 0.0, 100.0)
    assert crossing is not None
    assert crossing.time == pytest.approx(5.0)
    assert crossing.inside is False


def test_approaching_pair_crosses_inward():
    crossing = next_distance_crossing(
        StaticPosition(0, 0), LinearMovement((20.0, 0.0), (-2.0, 0.0)),
        10.0, 0.0, 100.0)
    assert crossing is not None
    assert crossing.time == pytest.approx(5.0)
    assert crossing.inside is True


def test_static_pair_never_crosses():
    assert next_distance_crossing(
        StaticPosition(0, 0), StaticPosition(5, 0), 10.0, 0.0, 1e6) is None


def test_flyby_produces_up_then_down():
    """A node passing a static one: enter then leave, symmetric times."""
    mover = LinearMovement((-20.0, 6.0), (2.0, 0.0))
    crossings = distance_crossings(
        StaticPosition(0, 0), mover, 10.0, 0.0, 100.0)
    assert [c.inside for c in crossings] == [True, False]
    half_chord = math.sqrt(10.0 ** 2 - 6.0 ** 2)
    assert crossings[0].time == pytest.approx((20.0 - half_chord) / 2.0)
    assert crossings[1].time == pytest.approx((20.0 + half_chord) / 2.0)


def test_tangential_graze_is_not_a_crossing():
    """A path that only touches the ring never flips the link."""
    mover = LinearMovement((-30.0, 10.0), (1.0, 0.0))  # grazes at y=10
    assert next_distance_crossing(
        StaticPosition(0, 0), mover, 10.0, 0.0, 100.0) is None


def test_on_ring_start_moving_out_already_counts_as_outside():
    """Starting exactly on the ring and receding: the derivative
    tie-break judges the pair already departing — no flip is reported
    (the conventional ``<=`` in-range answer flips only at this single
    instant, and crossings are defined strictly after t0)."""
    assert next_distance_crossing(
        StaticPosition(0, 0), LinearMovement((10.0, 0.0), (1.0, 0.0)),
        10.0, 0.0, 100.0) is None
    # Approaching from the ring inward, the next flip is the *leave* on
    # the far side (enter never happens: we are already heading in).
    crossing = next_distance_crossing(
        StaticPosition(0, 0), LinearMovement((10.0, 0.0), (-1.0, 0.0)),
        10.0, 0.0, 100.0)
    assert crossing is not None
    assert crossing.inside is False
    assert crossing.time == pytest.approx(20.0)


def test_path_movement_round_trip():
    path = PathMovement([(0.0, (5.0, 0.0)), (10.0, (25.0, 0.0)),
                         (20.0, (5.0, 0.0))])
    crossings = distance_crossings(
        StaticPosition(0, 0), path, 10.0, 0.0, 30.0)
    assert [c.inside for c in crossings] == [False, True]
    assert crossings[0].time == pytest.approx(2.5)   # 5 + 2t = 10
    assert crossings[1].time == pytest.approx(17.5)  # 25 - 2(t-10) = 10


def test_corridor_walk_departure_delay_respected():
    walker = CorridorWalk((8.0, 0.0), heading_deg=0.0, depart_time=50.0)
    crossing = next_distance_crossing(
        StaticPosition(0, 0), walker, 10.0, 0.0, 200.0)
    assert crossing is not None
    # 2 m to cover at 1.4 m/s after departing at t=50.
    assert crossing.time == pytest.approx(50.0 + 2.0 / 1.4)
    assert crossing.inside is False


def test_window_clamps_prediction():
    mover = LinearMovement((5.0, 0.0), (1.0, 0.0))
    assert next_distance_crossing(
        StaticPosition(0, 0), mover, 10.0, 0.0, 3.0) is None
    late = next_distance_crossing(
        StaticPosition(0, 0), mover, 10.0, 3.0, 10.0)
    assert late is not None and late.time == pytest.approx(5.0)


# ----------------------------------------------------------------------
# guarded bisection fallback
# ----------------------------------------------------------------------
class _Orbit:
    """A model without segment support: circular motion (bisection path)."""

    def __init__(self, radius: float, period: float):
        self.radius = radius
        self.period = period

    def position(self, t):
        angle = 2.0 * math.pi * t / self.period
        return (self.radius * math.cos(angle), self.radius * math.sin(angle))

    def is_mobile(self):
        return True

    def linear_segments(self, t0, t1):
        return None

    def settled_after(self):
        return None


def test_bisection_fallback_on_unsupported_model():
    """An orbiting node drifts in and out of range of an offset point."""
    orbit = _Orbit(radius=12.0, period=40.0)
    static = StaticPosition(8.0, 0.0)
    # distance ranges [4, 20]; crossing of 10 m happens twice per orbit.
    first = next_distance_crossing(static, orbit, 10.0, 0.0, 40.0)
    assert first is not None
    assert first.inside is False
    gap = distance(static.position(first.time), orbit.position(first.time))
    assert gap == pytest.approx(10.0, abs=1e-3)


def test_bisect_predicate_flip_refines_to_tolerance():
    crossing = bisect_predicate_flip(
        lambda t: t < math.pi, 0.0, 10.0, step=0.5)
    assert crossing is not None
    assert crossing.time == pytest.approx(math.pi, abs=1e-6)
    assert crossing.time >= math.pi  # flipped side, so re-arms progress
    assert crossing.inside is False


def test_bisect_no_flip_returns_none():
    assert bisect_predicate_flip(lambda t: True, 0.0, 50.0) is None


# ----------------------------------------------------------------------
# world-level solver: quality rings and overrides
# ----------------------------------------------------------------------
def _world_with_pair(mobility_b, quality_model=None):
    sim = Simulator(seed=2)
    world = World(sim, quality_model=quality_model)
    world.add_node("a", StaticPosition(0, 0), [BLUETOOTH])
    world.add_node("b", mobility_b, [BLUETOOTH])
    return sim, world


def test_quality_threshold_ring_inversion_piecewise():
    model = PiecewiseLinearQuality()
    ring = model.threshold_distance(230, 10.0)
    # Quality >= 230 inside the ring, < 230 just outside (rounding-aware).
    assert model.quality(ring - 1e-6, 10.0) >= 230
    assert model.quality(ring + 1e-6, 10.0) < 230


def test_quality_threshold_ring_inversion_path_loss():
    model = PathLossQuality()
    ring = model.threshold_distance(200, 10.0)
    assert ring is not None and 0.0 < ring <= 10.0
    assert model.quality(max(0.0, ring - 1e-6), 10.0) >= 200
    if ring < 10.0:
        assert model.quality(ring + 1e-6, 10.0) < 200


def test_solver_predicts_quality_crossing_from_geometry():
    sim, world = _world_with_pair(LinearMovement((5.0, 0.0), (1.0, 0.0)))
    crossing = world.contacts.next_quality_crossing("a", "b", BLUETOOTH, 230)
    assert crossing is not None and crossing.inside is False
    # At the predicted instant quality flips below 230.
    assert world.link_quality_at(
        "a", "b", BLUETOOTH, crossing.time - 1e-4) >= 230
    assert world.link_quality_at(
        "a", "b", BLUETOOTH, crossing.time + 1e-4) < 230


def test_solver_bisects_quality_override():
    sim, world = _world_with_pair(StaticPosition(4.0, 0.0))
    world.install_linear_decay("a", "b", BLUETOOTH, initial_quality=240,
                               decay_per_second=1.0)
    crossing = world.contacts.next_quality_crossing("a", "b", BLUETOOTH, 230)
    assert crossing is not None and crossing.inside is False
    # round(240 - t) < 230 from t = 10.5 on.
    assert crossing.time == pytest.approx(10.5, abs=1e-6)
    assert world.contacts.bisections >= 1


def test_solver_final_for_settled_pairs():
    sim, world = _world_with_pair(StaticPosition(4.0, 0.0))
    assert world.contacts.next_link_crossing("a", "b", BLUETOOTH) is None
    assert world.contacts.pair_settled("a", "b", sim.now)
    sim2, world2 = _world_with_pair(LinearMovement((4.0, 0.0), (1.0, 0.0)))
    assert not world2.contacts.pair_settled("a", "b", sim2.now)


# ----------------------------------------------------------------------
# the hypothesis property: solver timeline == brute-force oracle
# ----------------------------------------------------------------------
_ORACLE_STEP_S = 0.05
_ORACLE_END_S = 40.0


def _mobility_strategy():
    points = st.tuples(
        st.floats(-60.0, 60.0, allow_nan=False, allow_infinity=False),
        st.floats(-60.0, 60.0, allow_nan=False, allow_infinity=False))
    velocities = st.tuples(
        st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
        st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False))
    static = st.builds(lambda p: StaticPosition(*p), points)
    linear = st.builds(
        lambda p, v, t0: LinearMovement(p, v, start_time=t0),
        points, velocities, st.floats(0.0, 20.0))
    path = st.builds(
        lambda origin, legs: PathMovement(
            [(0.0, origin)] + [
                (round(sum(dt for dt, _ in legs[:i + 1]), 3), p)
                for i, (_, p) in enumerate(legs)]),
        points,
        st.lists(st.tuples(st.floats(0.5, 15.0), points),
                 min_size=1, max_size=4))
    corridor = st.builds(
        lambda origin, heading, depart, stop: CorridorWalk(
            origin, heading_deg=heading, depart_time=depart,
            stop_distance=stop),
        points, st.floats(0.0, 360.0), st.floats(0.0, 25.0),
        st.one_of(st.none(), st.floats(1.0, 50.0)))
    waypoint = st.builds(
        lambda seed, start: RandomWaypoint(
            RandomStream(seed, "rwp-property"), area=(80.0, 80.0),
            speed_range=(0.5, 3.0), pause_range=(0.0, 8.0), start=start),
        st.integers(0, 2 ** 20), points)
    return st.one_of(static, linear, path, corridor, waypoint)


@given(mobility_a=_mobility_strategy(), mobility_b=_mobility_strategy(),
       tech=st.sampled_from([BLUETOOTH, WLAN, GPRS]))
@settings(max_examples=80, deadline=None)
def test_predicted_crossings_match_time_stepped_oracle(
        mobility_a, mobility_b, tech):
    """The predicted LinkUp/LinkDown timeline agrees with brute force.

    The oracle samples ``in-range`` every 50 ms.  At every sample that
    is not within one step of a predicted crossing, the state implied by
    the predictions (initial state + flips so far) must equal the
    sampled truth — a missed or spurious crossing desynchronises the
    timeline for all later samples and fails.
    """
    radius = tech.range_m
    crossings = distance_crossings(
        mobility_a, mobility_b, radius, 0.0, _ORACLE_END_S)
    times = [c.time for c in crossings]
    for earlier, later in zip(crossings, crossings[1:]):
        assert later.time >= earlier.time
        assert later.inside != earlier.inside  # flips must alternate

    def predicted_inside(t: float) -> bool:
        state = (distance(mobility_a.position(0.0),
                          mobility_b.position(0.0)) <= radius)
        for crossing in crossings:
            if crossing.time <= t:
                state = crossing.inside
        return state

    steps = int(_ORACLE_END_S / _ORACLE_STEP_S)
    for index in range(steps + 1):
        t = index * _ORACLE_STEP_S
        if any(abs(t - when) <= _ORACLE_STEP_S for when in times):
            continue  # within quantisation of a flip: either side is fine
        oracle = (distance(mobility_a.position(t),
                           mobility_b.position(t)) <= radius)
        assert predicted_inside(t) == oracle, (
            f"timeline diverged at t={t}: oracle={oracle}, "
            f"crossings={crossings}")
