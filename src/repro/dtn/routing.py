"""DTN routers: direct-delivery, epidemic, spray-and-wait, PRoPHET.

A router is the *policy* half of the store-carry-forward plane: given a
contact between a carrier and a peer, it decides which of the carrier's
bundles to transmit (and in what order — under bandwidth-limited
contacts the order *is* the ranked transmission queue) and what happens
to custody afterwards.  The *mechanics* — stores, contact events,
transfer scheduling, delivery bookkeeping — live in
:mod:`repro.dtn.forwarder` / :mod:`repro.dtn.capacity`.  One router
instance serves every node of a plane; the three classics are stateless
(all per-bundle state rides the bundle's ``copies`` field and the
stores' summary vectors), while :class:`Prophet` keeps the per-node
delivery-predictability tables that its control exchanges ship.

The baselines, in increasing overhead:

========================  ==========================================
``direct``                The source holds its bundle until it meets
                          the destination itself.  One transmission
                          per delivery; delivery ratio bounded by the
                          source–destination meeting probability.
``spray``                 Binary spray-and-wait (Spyropoulos et al.):
                          a bundle starts with ``copies`` tokens; a
                          custodian with ``c > 1`` tokens hands
                          ``floor(c/2)`` to a met peer; with one token
                          left it *waits* for the destination.
                          Bounded copies, most of epidemic's ratio.
``prophet``               Probabilistic routing using the history of
                          encounters and transitivity (Lindgren et
                          al.): relay only to peers whose delivery
                          predictability for the destination beats the
                          carrier's own; predictability ages over time
                          and propagates transitively.  Spends scarce
                          contact bytes only on *productive* copies.
``epidemic``              Flood with summary-vector dedup (Vahdat &
                          Becker): every contact sends everything the
                          peer has never seen.  Upper-bounds delivery
                          ratio under infinite bandwidth at maximal
                          overhead — and *wastes* tight byte budgets
                          on unproductive copies, which is exactly
                          what ``benchmarks/bench_contact_capacity.py``
                          measures against PRoPHET.
========================  ==========================================

Transmission order within one contact is deterministic.  The classics
share :func:`transmission_order` (bundles destined to the peer first,
then oldest — the same lexicographic-policy pattern as the service
plane's :func:`repro.core.routing.route_rank`); PRoPHET keeps the
destined-first rule but ranks relay traffic by *descending* peer
predictability, so the most deliverable copies cross the window first.
"""

from __future__ import annotations

import typing

from repro.dtn.bundle import Bundle

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dtn.store import MessageStore

#: Default spray-and-wait token budget per bundle.
DEFAULT_SPRAY_COPIES = 8


def transmission_order(bundles: typing.Iterable[Bundle],
                       peer_id: str) -> list[Bundle]:
    """Deterministic per-contact send order (shared by every router).

    Lexicographic, smaller first: destined-to-peer before relay traffic,
    then older creation instants, then bundle id — mirroring the route
    ranking's "most valuable first" shape (see
    :func:`repro.core.routing.route_rank`).  O(n log n).
    """
    return sorted(bundles, key=lambda b: (
        0 if b.destination == peer_id else 1, b.created_at, b.bundle_id))


class Router:
    """Base router: subclasses override the policy decisions.

    ``offers`` / ``eligible`` / ``after_transmit`` decide what moves
    and what custody becomes; ``on_contact`` / ``control_bytes`` let
    stateful routers (PRoPHET) observe encounters and charge their
    control traffic — the bandwidth-limited plane deducts those bytes
    from the contact's budget before any data flows.
    """

    #: Registry key (``settings["routers"]`` values in specs).
    name = "base"

    def offers(self, store: "MessageStore", peer_id: str,
               peer_seen: frozenset[str]) -> list[Bundle]:
        """The carrier's bundles to transmit to ``peer_id``, in order.

        ``peer_seen`` is the peer's summary vector; no router ever
        offers a bundle the peer has already seen (the dedup that keeps
        ``DtnCounters.duplicates`` at zero).  The returned order is the
        ranked transmission queue a bandwidth-limited contact drains
        front-first.  O(n log n) in stored bundles.
        """
        eligible = [bundle for bundle in store.bundles()
                    if bundle.bundle_id not in peer_seen
                    and self.eligible(bundle, peer_id)]
        return transmission_order(eligible, peer_id)

    def eligible(self, bundle: Bundle, peer_id: str) -> bool:
        """May ``bundle`` be transmitted to ``peer_id``?  Policy hook."""
        raise NotImplementedError

    def after_transmit(self, store: "MessageStore", bundle: Bundle,
                       peer_id: str, now: float) -> Bundle:
        """Settle custody after a copy went out; returns the peer's copy.

        Called once per transmission.  Default: delivery to the
        destination releases the carrier's custody (the contact is the
        acknowledgement); a relay leaves the carrier's copy untouched.
        """
        if bundle.destination == peer_id:
            store.remove(bundle.bundle_id)
        return bundle

    def on_contact(self, node_a: str, node_b: str, now: float) -> None:
        """Observe a contact opening between two plane nodes.

        Called by the forwarder once per contact-up, *before* any
        exchange, with ``now`` in sim-seconds.  Stateless routers
        ignore it; PRoPHET updates both nodes' predictability tables
        here (encounter + transitivity).
        """

    def control_bytes(self, sender: str, receiver: str) -> int:
        """Router control payload ``sender`` ships when a contact opens.

        Bytes *beyond* the summary vectors — e.g. PRoPHET's
        predictability vector.  Called once per direction.  The
        infinite-bandwidth plane meters them as ``dtn-control``; the
        bandwidth-limited plane additionally charges both directions
        against the contact's byte budget, so chatty routing protocols
        pay for their own gossip.  O(1) for the stateless baselines
        (0 bytes).
        """
        return 0

    def on_crash(self, node_id: str) -> None:
        """A plane node suffered full state loss (crash-reboot fault).

        Called by the forwarder's fault hook alongside the store wipe.
        Stateless routers have nothing to forget; PRoPHET drops the
        node's predictability table — a rebooted node relearns its
        environment from scratch.
        """


class DirectDelivery(Router):
    """Source-only custody: transmit only to the destination itself."""

    name = "direct"

    def eligible(self, bundle: Bundle, peer_id: str) -> bool:
        return bundle.destination == peer_id


class Epidemic(Router):
    """Flood every contact, deduplicated by summary vectors."""

    name = "epidemic"

    def eligible(self, bundle: Bundle, peer_id: str) -> bool:
        return True   # the summary vector already filtered seen ids


class SprayAndWait(Router):
    """Binary spray-and-wait with a fixed token budget per bundle.

    ``copies`` is the budget stamped on bundles at injection (the plane
    reads :attr:`initial_copies`); custody splits binarily on each
    relay.  Token conservation — the sum of tokens over all custodians
    of one bundle never exceeds the budget — is asserted by the tests.
    """

    name = "spray"

    def __init__(self, copies: int = DEFAULT_SPRAY_COPIES):
        if copies < 1:
            raise ValueError(f"spray copies must be >= 1: {copies}")
        self.initial_copies = copies

    def eligible(self, bundle: Bundle, peer_id: str) -> bool:
        # Delivery is always allowed; relaying needs spare tokens
        # (one-token custodians are in the wait phase).
        return bundle.destination == peer_id or bundle.copies > 1

    def after_transmit(self, store: "MessageStore", bundle: Bundle,
                       peer_id: str, now: float) -> Bundle:
        if bundle.destination == peer_id:
            store.remove(bundle.bundle_id)
            return bundle
        given = bundle.copies // 2
        kept = bundle.copies - given
        store.replace(bundle.with_copies(kept), now)
        return bundle.with_copies(given)


class Prophet(Router):
    """PRoPHET: probabilistic routing by encounter history (RFC 6693).

    Each node keeps a **delivery predictability** ``P(node, dest) ∈
    [0, 1)`` for every destination it has learned about.  Three update
    rules, applied at contact instants (all state changes are
    event-driven — nothing ages on a timer):

    * **encounter** — meeting ``b`` directly:
      ``P(a,b) ← P(a,b) + (1 − P(a,b)) · p_encounter``;
    * **aging** — before any read/update at time ``t``:
      ``P ← P · γ^(t − last_update)`` (lazy, per node);
    * **transitivity** — having just met ``b``:
      ``P(a,c) ← max(P(a,c), P(a,b) · P(b,c) · β)`` for every ``c`` in
      ``b``'s table (both directions — the tables were just exchanged).

    Forwarding is GRTR: relay a bundle to a peer only when the peer's
    predictability for its destination *strictly beats* the carrier's
    (delivery to the destination itself is always allowed); relays keep
    the carrier's copy, like epidemic.  Relay traffic ranks by
    descending peer predictability (destined bundles still first), so a
    tight contact window carries the most deliverable copies first.

    The tables are shipped at every contact as router control traffic
    — :meth:`control_bytes` charges ``CONTROL_ENTRY_BYTES`` per table
    entry in each direction, which the bandwidth-limited plane deducts
    from the contact's byte budget (PRoPHET pays for its gossip).

    One instance serves the whole plane (the tables live here, keyed by
    node id).  All updates are deterministic functions of the contact
    stream, so sweep output stays byte-identical across workers.
    """

    name = "prophet"

    #: Bytes per (destination id, predictability) control-vector entry.
    CONTROL_ENTRY_BYTES = 12

    def __init__(self, p_encounter: float = 0.75, beta: float = 0.25,
                 gamma: float = 0.98):
        if not 0.0 < p_encounter < 1.0:
            raise ValueError(
                f"p_encounter must be in (0,1): {p_encounter}")
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0,1]: {beta}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0,1]: {gamma}")
        self.p_encounter = p_encounter
        self.beta = beta
        self.gamma = gamma
        self._tables: dict[str, dict[str, float]] = {}
        self._aged_at: dict[str, float] = {}

    # -- table bookkeeping --------------------------------------------
    def _table(self, node_id: str) -> dict[str, float]:
        return self._tables.setdefault(node_id, {})

    def _age(self, node_id: str, now: float) -> None:
        """Lazy aging: decay the whole table to ``now``.  O(entries)."""
        last = self._aged_at.get(node_id)
        self._aged_at[node_id] = now
        if last is None or now <= last:
            return
        factor = self.gamma ** (now - last)
        table = self._table(node_id)
        for dest in table:
            table[dest] *= factor

    def predictability(self, node_id: str, dest: str) -> float:
        """``P(node, dest)`` as last aged; 0.0 for unknown pairs.  O(1)."""
        return self._tables.get(node_id, {}).get(dest, 0.0)

    def table_size(self, node_id: str) -> int:
        """Entries in a node's predictability table (control cost).  O(1)."""
        return len(self._tables.get(node_id, {}))

    # -- router hooks --------------------------------------------------
    def on_contact(self, node_a: str, node_b: str, now: float) -> None:
        """Encounter + transitivity updates for both endpoints.

        O(|table_a| + |table_b|).  Deterministic: tables iterate in
        insertion order, and updates commute per destination (max).
        """
        self._age(node_a, now)
        self._age(node_b, now)
        table_a, table_b = self._table(node_a), self._table(node_b)
        for table, peer in ((table_a, node_b), (table_b, node_a)):
            old = table.get(peer, 0.0)
            table[peer] = old + (1.0 - old) * self.p_encounter
        # Transitivity over the *post-encounter* tables, both ways.
        p_ab, p_ba = table_a[node_b], table_b[node_a]
        for mine, theirs, p_link, me, other in (
                (table_a, table_b, p_ab, node_a, node_b),
                (table_b, table_a, p_ba, node_b, node_a)):
            for dest, p_remote in list(theirs.items()):
                if dest == me:
                    continue
                relayed = p_link * p_remote * self.beta
                if relayed > mine.get(dest, 0.0):
                    mine[dest] = relayed

    def control_bytes(self, sender: str, receiver: str) -> int:
        """The sender's predictability vector, 12 B per entry.  O(1)."""
        return self.CONTROL_ENTRY_BYTES * self.table_size(sender)

    def on_crash(self, node_id: str) -> None:
        """Crash-reboot: the node's predictability table dies with it.

        Peers keep *their* predictabilities toward the crashed node —
        they have no way to know it rebooted amnesiac; those entries
        age out by γ as usual.  O(1).
        """
        self._tables.pop(node_id, None)
        self._aged_at.pop(node_id, None)

    # -- forwarding policy --------------------------------------------
    def offers(self, store: "MessageStore", peer_id: str,
               peer_seen: frozenset[str]) -> list[Bundle]:
        """GRTR-eligible bundles, ranked most-deliverable-first.

        Destined-to-peer bundles lead (oldest first); relays follow by
        descending ``P(peer, destination)``, ties broken by creation
        instant then bundle id.  O(n log n).
        """
        carrier = store.node_id
        ranked = []
        for bundle in store.bundles():
            if bundle.bundle_id in peer_seen:
                continue
            if bundle.destination == peer_id:
                ranked.append(((0, 0.0, bundle.created_at,
                                bundle.bundle_id), bundle))
                continue
            p_peer = self.predictability(peer_id, bundle.destination)
            if p_peer <= self.predictability(carrier, bundle.destination):
                continue
            ranked.append(((1, -p_peer, bundle.created_at,
                            bundle.bundle_id), bundle))
        ranked.sort(key=lambda pair: pair[0])
        return [bundle for _key, bundle in ranked]

    def eligible(self, bundle: Bundle, peer_id: str) -> bool:
        """Unused: PRoPHET needs the carrier, so it overrides offers."""
        raise NotImplementedError(
            "Prophet ranks via offers(); eligible() has no carrier")


def make_router(name: str, spray_copies: int = DEFAULT_SPRAY_COPIES
                ) -> Router:
    """Instantiate a router by registry name.

    ``spray_copies`` only affects ``"spray"``.  A fresh instance per
    plane — PRoPHET's tables must never be shared across planes.
    """
    if name == DirectDelivery.name:
        return DirectDelivery()
    if name == Epidemic.name:
        return Epidemic()
    if name == SprayAndWait.name:
        return SprayAndWait(copies=spray_copies)
    if name == Prophet.name:
        return Prophet()
    raise KeyError(f"unknown DTN router {name!r}; known: "
                   f"['direct', 'epidemic', 'prophet', 'spray']")
