"""Bandwidth-limited contacts: transfers scheduled *within* the window.

The PR 4 forwarder (:mod:`repro.dtn.forwarder`) moves every bundle the
instant a contact opens — the infinite-contact-bandwidth baseline.
Real mobile links exist only for the seconds two coverage disks
overlap, and carry ``window × data_rate`` bytes at most.  This module
replaces the instantaneous cascade with a **transfer schedule**:

* **byte budget** — at contact-up the plane asks the analytic
  :class:`~repro.radio.contacts.ContactSolver` for the predicted
  LinkDown instant and prices the whole contact in closed form:
  ``budget = ⌊(t_down − t_up) × data_rate⌋`` (the technology's
  :attr:`~repro.radio.technologies.Technology.data_rate_Bps`, or the
  plane's explicit override).  Settled in-range pairs get an unbounded
  budget (their contact never ends);
* **ranked transmission queue** — the router's ``offers`` order *is*
  the queue (PRoPHET ranks relays by peer predictability, the classics
  by destined-first/oldest-first); the link is serialised, one bundle
  in flight per contact, each leg costing
  ``base_latency + bytes / rate`` sim-seconds and completing via one
  scheduled kernel event (``Simulator.call_at`` — no polling);
* **control traffic costs capacity** — summary vectors and router
  control vectors (PRoPHET's predictability tables) are charged
  against the budget *first* and delay the first data leg by their
  airtime;
* **partial-transfer resume** — a transfer cut by the window edge (or
  pre-capped by the remaining budget) credits the bytes that made it
  onto the air to the *receiver's* fragment ledger
  (:meth:`~repro.dtn.store.MessageStore.record_partial`); any later
  contact — with any custodian of the bundle — resumes from that
  offset (counted ``transfers_truncated``);
* **per-link in-flight accounting** — a bundle already in flight to a
  receiver on one link is never started on a parallel link, so
  concurrent contacts spend their budgets on *distinct* copies;
* **churn safety** — an in-flight transfer whose endpoint is powered
  off / removed is cancelled, credits nothing, and is counted
  ``transfers_cancelled``; sessions naming the dead are closed before
  the base-class retirement runs.

Wakeup discipline is inherited: ``wakeups`` counts *contact-event*
callbacks only.  Transfer completions are self-scheduled kernel events
(the forwarder knows exactly when its own transmission ends), so a
fully settled world still shows ``wakeups == 0`` while bundles stream
over the seeded adjacency — asserted in ``tests/test_dtn_capacity.py``.

Modelling notes: links are pair-local (no shared-medium contention —
parallel contacts of one node each run at full rate, as with
per-pair-channel radios), and queues re-rank at contact and transfer
instants only (a predictability change elsewhere does not wake an idle
session).  The per-contact byte-budget invariant — *no contact ever
moves more than its window × rate* — is property-tested across all
technologies.

Units: metres / sim-seconds / bytes throughout.
"""

from __future__ import annotations

import math
import typing

from repro.core.buffering import EVICT_OLDEST
from repro.dtn.bundle import Bundle
from repro.dtn.forwarder import DEFAULT_MAX_PAIRS, DtnOverlay
from repro.dtn.routing import Router
from repro.metrics.counters import TrafficMeter
from repro.radio.technologies import Technology, get_technology

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.world import World
    from repro.sim.kernel import ScheduledCall


class Transfer:
    """One bundle leg in flight over an open contact.

    ``phy_tx`` is the leg's on-air registration when a lossy PHY plane
    is installed (:mod:`repro.radio.phy`); its fate is resolved at the
    completion instant.  A leg cancelled mid-air (churn, truncation,
    detach) abandons its registration unresolved — the air was occupied
    either way.
    """

    __slots__ = ("sender", "receiver", "bundle", "send_bytes",
                 "started_at", "done_at", "handle", "phy_tx")

    def __init__(self, sender: str, receiver: str, bundle: Bundle,
                 send_bytes: int, started_at: float, done_at: float,
                 handle: "ScheduledCall"):
        self.sender = sender
        self.receiver = receiver
        self.bundle = bundle
        self.send_bytes = send_bytes
        self.started_at = started_at
        self.done_at = done_at
        self.handle = handle
        self.phy_tx = None


class ContactSession:
    """One open contact's budget and serialised transfer state.

    ``closes_at`` is the predicted LinkDown instant (``inf`` for
    settled pairs); ``budget_bytes is None`` means unbounded.
    ``next_free`` is the link-serialisation cursor: the instant the
    air is free again (control vectors and every transfer leg advance
    it).
    """

    __slots__ = ("node_a", "node_b", "opened_at", "closes_at",
                 "budget_bytes", "used_bytes", "next_free", "transfer")

    def __init__(self, node_a: str, node_b: str, opened_at: float,
                 closes_at: float, budget_bytes: int | None):
        self.node_a = node_a
        self.node_b = node_b
        self.opened_at = opened_at
        self.closes_at = closes_at
        self.budget_bytes = budget_bytes
        self.used_bytes = 0
        self.next_free = opened_at
        self.transfer: Transfer | None = None

    def budget_left(self) -> float:
        """Unspent budget bytes (``inf`` when unbounded).  O(1)."""
        if self.budget_bytes is None:
            return math.inf
        return max(0, self.budget_bytes - self.used_bytes)


#: `_close_session` modes.
_CLOSE_DOWN = "down"        # link closed: truncate + credit airtime
_CLOSE_CHURN = "churn"      # endpoint died: cancel, credit nothing
_CLOSE_DETACH = "detach"    # measurement over: silent teardown


class BandwidthDtnOverlay(DtnOverlay):
    """The event-driven forwarder under finite contact bandwidth.

    Same watch wiring as :class:`~repro.dtn.forwarder.DtnOverlay`
    (one repeating link watch per pair; synthetic contact-up for pairs
    already in range at attach), but contacts open a
    :class:`ContactSession` instead of cascading instantaneously.
    ``data_rate_Bps`` overrides the technology's derived rate (tests
    and constrained-regime sweeps); the default prices contacts at
    :attr:`Technology.data_rate_Bps`.
    """

    def __init__(self, world: "World", router: Router,
                 tech: Technology | str = "bluetooth",
                 nodes: typing.Sequence[str] | None = None,
                 capacity_bytes: int | None = None,
                 policy: str = EVICT_OLDEST,
                 meter: TrafficMeter | None = None,
                 max_pairs: int = DEFAULT_MAX_PAIRS,
                 data_rate_Bps: float | None = None):
        tech_obj = get_technology(tech) if isinstance(tech, str) else tech
        if data_rate_Bps is None:
            data_rate_Bps = tech_obj.data_rate_Bps
        if data_rate_Bps <= 0:
            raise ValueError(f"data rate must be positive: {data_rate_Bps}")
        self.data_rate_Bps = float(data_rate_Bps)
        self._sessions: dict[tuple[str, str], ContactSession] = {}
        self._inbound: dict[str, set[str]] = {}
        # super().__init__ seeds contact_up for pairs already in range,
        # so every attribute above must exist first.
        super().__init__(world, router, tech=tech_obj, nodes=nodes,
                         capacity_bytes=capacity_bytes, policy=policy,
                         meter=meter, max_pairs=max_pairs)

    # ------------------------------------------------------------------
    # capacity model
    # ------------------------------------------------------------------
    def airtime_s(self, size_bytes: int) -> float:
        """Link time one ``size_bytes`` leg occupies: framing latency
        plus payload at the plane's data rate.  O(1)."""
        return self.tech.base_latency_s + size_bytes / self.data_rate_Bps

    def _window(self, a: str, b: str,
                now: float) -> tuple[float, int | None]:
        """Predicted ``(closes_at, budget_bytes)`` of a fresh contact.

        One closed-form solve (O(segments)): the next LinkDown crossing
        prices the window.  A settled in-range pair never closes —
        ``(inf, None)``.  No crossing before the solver horizon caps
        the budget at one horizon's worth of bytes (an *under*-estimate
        — the byte-budget invariant is preserved); the real LinkDown
        event still ends the session whenever it arrives.
        """
        solver = self.world.bus.solver
        crossing = solver.next_link_crossing(a, b, self.tech, t0=now)
        if crossing is not None and not crossing.inside:
            closes_at = crossing.time
        elif crossing is None and solver.pair_settled(a, b, now):
            return (math.inf, None)
        else:
            closes_at = now + solver.horizon_s
        return (closes_at,
                self.tech.contact_capacity_bytes(closes_at - now,
                                                 self.data_rate_Bps))

    # ------------------------------------------------------------------
    # contact lifecycle
    # ------------------------------------------------------------------
    def contact_up(self, a: str, b: str) -> None:
        """Open a session: price the window, charge control, pump."""
        if a in self._dead or b in self._dead:
            return
        if a not in self.stores or b not in self.stores:
            return
        pair = (a, b) if a < b else (b, a)
        if pair in self._sessions:
            return
        now = self.sim.now
        self._adjacent[a].add(b)
        self._adjacent[b].add(a)
        self.stores[a].expire(now)
        self.stores[b].expire(now)
        self.router.on_contact(a, b, now)
        control_ab = self.contact_control_bytes(a, b)
        control_ba = self.contact_control_bytes(b, a)
        if self.meter is not None:
            self.meter.count(a, "dtn-control", control_ab)
            self.meter.count(b, "dtn-control", control_ba)
        if self.phy is not None:
            # Control rides the lossy air too: a lost vector leaves the
            # receiver blind about the speaker for this whole contact
            # (it offers against the empty vector).  The budget and the
            # meter charged the bytes regardless — airtime was spent.
            for sender, receiver, size in ((a, b, control_ab),
                                           (b, a, control_ba)):
                if not self.phy.transmit(sender, receiver, size,
                                         kind="control", tech=self.tech,
                                         duration_s=self.airtime_s(size)):
                    self._blind.add((receiver, sender))
        closes_at, budget = self._window(pair[0], pair[1], now)
        session = ContactSession(pair[0], pair[1], now, closes_at, budget)
        control = control_ab + control_ba
        session.used_bytes = control
        session.next_free = now + self.airtime_s(control)
        self._sessions[pair] = session
        self.counters.bytes_offered += self._offered_bytes(session)
        self._pump(session)

    def contact_down(self, a: str, b: str) -> None:
        """The window closed: truncate any in-flight leg, credit the
        bytes that made it onto the air, drop the session.  O(1) plus
        the fragment credit."""
        self._close_session((a, b) if a < b else (b, a), _CLOSE_DOWN)
        super().contact_down(a, b)

    def retire_node(self, node_id: str) -> None:
        """Churn: cancel every session (and in-flight transfer) naming
        the node before the base class drops its custody."""
        if node_id in self._dead or node_id not in self.stores:
            return
        for pair in sorted(p for p in self._sessions if node_id in p):
            self._close_session(pair, _CLOSE_CHURN)
        super().retire_node(node_id)

    def on_crash(self, node_id: str) -> None:
        """Crash fault: kill every in-flight transfer naming the node
        (counted ``transfers_cancelled``, nothing credited — the
        receiver never got the bytes) before the base state loss."""
        if node_id not in self.stores or node_id in self._dead:
            return
        for pair in sorted(p for p in self._sessions if node_id in p):
            self._close_session(pair, _CLOSE_CHURN)
        super().on_crash(node_id)

    def detach(self) -> None:
        """Cancel watches, sessions and in-flight legs.  Idempotent."""
        for pair in sorted(self._sessions):
            self._close_session(pair, _CLOSE_DETACH)
        super().detach()

    def _close_session(self, pair: tuple[str, str], mode: str) -> None:
        session = self._sessions.pop(pair, None)
        if session is None:
            return
        transfer = session.transfer
        session.transfer = None
        if transfer is None:
            self._report_contact(session)
            return
        transfer.handle.cancel()
        self._inbound.get(transfer.receiver, set()).discard(
            transfer.bundle.bundle_id)
        if mode == _CLOSE_DETACH:
            self._report_contact(session)
            return
        if mode == _CLOSE_CHURN:
            self.counters.transfers_cancelled += 1
            self._report_contact(session)
            return
        # Link-down truncation: credit the airtime actually used.  A
        # leg still queued behind the control exchange (start in the
        # future) or cut inside the framing latency moved nothing —
        # that is not a truncated transfer, it simply never happened.
        elapsed = self.sim.now - transfer.started_at
        payload_s = elapsed - self.tech.base_latency_s
        credited = min(transfer.send_bytes,
                       max(0, int(payload_s * self.data_rate_Bps)))
        if credited <= 0:
            self._report_contact(session)
            return
        session.used_bytes += credited
        self.counters.bytes_transferred += credited
        if self.meter is not None:
            self.meter.count(transfer.sender, "dtn-data", credited)
        receiver_store = self.stores[transfer.receiver]
        if not receiver_store.has_seen(transfer.bundle.bundle_id):
            # A receiver that already holds/delivered the bundle (a
            # parallel contact won the race) has no use for the prefix
            # — recording it would leak a never-cleared ledger entry.
            receiver_store.record_partial(transfer.bundle.bundle_id,
                                          credited)
        self.counters.transfers_truncated += 1
        self._report_contact(session)

    def _report_contact(self, session: ContactSession) -> None:
        """Telemetry hook: one window's bytes-used vs budget.

        Called once per session close, after any truncation credit.
        The session is already popped, so bumping ``used_bytes`` here
        never feeds back into budget arithmetic.
        """
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.contact_bytes(session.node_a, session.node_b,
                                    self.tech.name, session.used_bytes,
                                    session.budget_bytes)

    # ------------------------------------------------------------------
    # the transfer schedule
    # ------------------------------------------------------------------
    def _cascade_from(self, origin: str) -> None:
        """Injections pump open sessions instead of cascading."""
        self._pump_node(origin)

    def _pump_node(self, node_id: str) -> None:
        """Re-evaluate every idle session touching ``node_id``."""
        for pair in sorted(p for p in self._sessions if node_id in p):
            session = self._sessions.get(pair)
            if session is not None:
                self._pump(session)

    def _offered_bytes(self, session: ContactSession) -> int:
        """Remaining bytes both directions want to ship right now."""
        total = 0
        for sender, receiver in ((session.node_a, session.node_b),
                                 (session.node_b, session.node_a)):
            receiver_store = self.stores[receiver]
            for bundle in self.router.offers(
                    self.stores[sender], receiver,
                    self._peer_vector(receiver, sender)):
                total += max(0, bundle.size_bytes
                             - receiver_store.partial_received(
                                 bundle.bundle_id))
        return total

    def _next_candidate(self, session: ContactSession
                        ) -> tuple[str, str, Bundle] | None:
        """Top-ranked startable leg across both directions, or None.

        Per direction the router's first offer not already in flight to
        that receiver; directions tie-break on (queue rank, sender).
        O(n log n) in the busier store.
        """
        best: tuple[tuple[int, str, str], str, str, Bundle] | None = None
        for sender, receiver in ((session.node_a, session.node_b),
                                 (session.node_b, session.node_a)):
            if sender in self._dead or receiver in self._dead:
                continue
            if (self.faults is not None
                    and not self.faults.can_transmit(sender, receiver)):
                continue  # deaf/mute/jammed direction: no leg starts
            inbound = self._inbound.get(receiver, ())
            offers = self.router.offers(
                self.stores[sender], receiver,
                self._peer_vector(receiver, sender))
            for rank, bundle in enumerate(offers):
                if bundle.bundle_id in inbound:
                    continue
                key = (rank, sender, bundle.bundle_id)
                if best is None or key < best[0]:
                    best = (key, sender, receiver, bundle)
                break   # only each direction's best matters
        if best is None:
            return None
        return best[1], best[2], best[3]

    def _pump(self, session: ContactSession) -> None:
        """Start the next transfer leg if the link is idle.  One kernel
        event per leg (the completion) — no polling.  A pick whose
        fragment is already complete (paid for on an earlier contact
        whose custody could not settle) settles at zero byte cost and
        the queue re-ranks."""
        while True:
            if session.transfer is not None:
                return
            if self._sessions.get((session.node_a, session.node_b)) \
                    is not session:
                return   # closed (or replaced) while queued for a pump
            pick = self._next_candidate(session)
            if pick is None:
                return
            sender, receiver, bundle = pick
            remaining = (bundle.size_bytes
                         - self.stores[receiver].partial_received(
                             bundle.bundle_id))
            if remaining <= 0:
                # The bytes already crossed: hand custody over now.
                self._settle_custody(sender, receiver, bundle)
                self._pump_node(receiver)
                self._pump_node(sender)
                continue   # re-rank; every settle outcome is progress
            send_bytes = int(min(remaining, session.budget_left()))
            if send_bytes <= 0:
                return   # budget exhausted: the session is saturated
            start = max(self.sim.now, session.next_free)
            done_at = start + self.airtime_s(send_bytes)
            pair = (session.node_a, session.node_b)
            handle = self.sim.call_at(
                done_at, lambda p=pair: self._complete(p),
                name=f"dtn-xfer:{sender}->{receiver}")
            transfer = Transfer(sender, receiver, bundle,
                                send_bytes, start, done_at, handle)
            if self.phy is not None:
                transfer.phy_tx = self.phy.begin(
                    sender, receiver, send_bytes, tech=self.tech,
                    started_at=start, ends_at=done_at)
            session.transfer = transfer
            session.next_free = done_at
            self._inbound.setdefault(receiver, set()).add(
                bundle.bundle_id)
            return

    def _settle_custody(self, sender: str, receiver: str,
                        bundle: Bundle) -> bool:
        """Hand over custody of a fully received bundle.

        Re-fetches the sender's *current* copy (spray token counts may
        have changed while this leg was in flight — settling from a
        stale snapshot would mint tokens) and re-checks the router
        still offers it (a concurrent leg may have spent the last
        spare spray token), then releases the receiver's fragment and
        applies the router's custody rules.  Returns False when the
        handoff cannot happen — sender no longer carries the bundle
        (TTL sweep or capacity eviction mid-flight) or the current
        copy is no longer eligible: the fragment then stays for a
        future resume from another custodian.  An *expired* current
        copy is removed from the sender (counted ``expired``) so a
        dead bundle can never be re-offered forever.  O(n log n) in
        the sender's store for the eligibility re-check.
        """
        now = self.sim.now
        current = self.stores[sender].get(bundle.bundle_id)
        if current is None:
            return False
        receiver_store = self.stores[receiver]
        if current.expired(now):
            receiver_store.clear_partial(bundle.bundle_id)
            self.stores[sender].remove(bundle.bundle_id)
            self.counters.expired += 1
            return True
        if receiver_store.has_seen(bundle.bundle_id):
            receiver_store.clear_partial(bundle.bundle_id)
            self.counters.duplicates += 1
            return True
        if not any(offer.bundle_id == bundle.bundle_id
                   for offer in self.router.offers(
                       self.stores[sender], receiver,
                       receiver_store.summary_vector())):
            return False
        receiver_store.clear_partial(bundle.bundle_id)
        self.counters.transmissions += 1
        peer_copy = self.router.after_transmit(
            self.stores[sender], current, receiver, now)
        if current.destination == receiver:
            self._deliver(current, sender, receiver)
        else:
            receiver_store.add(peer_copy, now)
        return True

    def _complete(self, pair: tuple[str, str]) -> None:
        """One leg finished: credit bytes, settle custody, pump on."""
        session = self._sessions.get(pair)
        if session is None or session.transfer is None:
            return   # cancelled race; handles are cancelled with sessions
        transfer = session.transfer
        session.transfer = None
        sender, receiver = transfer.sender, transfer.receiver
        bundle = transfer.bundle
        self._inbound.get(receiver, set()).discard(bundle.bundle_id)
        session.used_bytes += transfer.send_bytes
        self.counters.bytes_transferred += transfer.send_bytes
        if self.meter is not None:
            self.meter.count(sender, "dtn-data", transfer.send_bytes)
        if transfer.phy_tx is not None \
                and not self.phy.resolve(transfer.phy_tx):
            # The leg faded or collided at the receiver: airtime, budget
            # and meter were all spent, but nothing usable arrived — no
            # fragment credit, no custody movement.  Pumping again is
            # the natural retry: the bundle is still the top offer, and
            # each retry burns more of the finite window.
            self._pump(session)
            self._pump_node(receiver)
            self._pump_node(sender)
            return
        total = self.stores[receiver].record_partial(bundle.bundle_id,
                                                     transfer.send_bytes)
        if total < bundle.size_bytes:
            # The budget pre-capped this leg: a deliberate partial.
            self.counters.transfers_truncated += 1
        elif not self._settle_custody(sender, receiver, bundle):
            # The custodian lost the bundle mid-flight: no handoff.
            self.counters.transfers_cancelled += 1
        self._pump(session)
        # Fresh custody (or freed tokens) may unblock parallel contacts.
        self._pump_node(receiver)
        self._pump_node(sender)
