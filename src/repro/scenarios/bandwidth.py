"""Rate-constrained scenario family: contact *duration* is the budget.

The DTN family (:mod:`repro.scenarios.dtn`) makes delivery ride moving
custodians; this family additionally makes every useful contact
*short* or *contended*, so the bandwidth-limited plane
(:mod:`repro.dtn.capacity`) — not mere reachability — decides the
delivery ratio:

* :func:`drive_by_kiosk` — a static kiosk and a static depot beyond
  mutual range, bridged by cars lapping the road between them.  A car
  crosses the kiosk's 10 m Bluetooth disk in a couple of seconds: each
  pass is worth only ``window × rate`` bytes, so large bundles need
  partial-transfer resume across several laps.
* :func:`crowded_festival` — a static announcer amid a dense roaming
  crowd.  Contacts are plentiful and long but the broadcast load is
  heavy, so routers compete on how they spend each window (epidemic
  floods every peer; PRoPHET spends bytes on likelier deliverers).
* :func:`rural_bus_dtn` — villages far out of mutual range, served by
  one bus on a fixed dwell schedule.  The dwell prices the village's
  uplink: ``dwell × rate`` bytes per villager-bus pair per visit —
  the classic rural-connectivity DTN shape.

All builders return an unstarted :class:`~repro.scenarios.builder.
Scenario`; the DTN planes run on pure geometry, so no daemons need
starting.  Distances in metres, times in sim-seconds.
"""

from __future__ import annotations

import math
import typing

from repro.faults import install_scenario_faults
from repro.mobility.linear import PathMovement
from repro.mobility.waypoint import RandomWaypoint
from repro.radio.phy import install_scenario_phy
from repro.radio.technologies import get_technology
from repro.scenarios.builder import Scenario


def drive_by_kiosk(count: int = 6, road_length_m: float = 300.0,
                   lane_offset_m: float = 6.0, speed_mps: float = 12.0,
                   headway_s: float = 20.0, laps: int = 4,
                   crash_rate: float = 0.0,
                   crash_downtime_s: float = 45.0,
                   radio_fault_rate: float = 0.0,
                   byzantine_rate: float = 0.0,
                   jammer_count: int = 0,
                   fault_window_s: float = 480.0,
                   shadowing_sigma_db: float = 0.0,
                   phy_collisions: int = 0,
                   capture_margin_db: float = 6.0,
                   seed: int = 0,
                   technologies: typing.Sequence[str] = ("bluetooth",),
                   ) -> Scenario:
    """``count`` cars lapping between a kiosk and a depot.

    ``kiosk`` sits at the west end of the road, ``depot`` at the east
    end (``road_length_m`` apart — far beyond radio range), both at
    the roadside; cars ``c0`` … drive the lane ``lane_offset_m`` from
    them, so a pass spends ``2·√(R² − offset²) / speed`` seconds in
    range (≈ 1.3 s for Bluetooth at the defaults) — the shortest
    contact windows in the repo.  ``road_length_m`` should comfortably
    exceed the widest radio range so kiosk and depot stay mutually
    unreachable.  Car ``i`` enters from a staging spot beyond every
    radio's kiosk coverage at ``i × headway_s``, laps kiosk → depot →
    kiosk ``laps`` times, then parks back at the staging spot (its
    mobility settles, so the connectivity bus parks every watch
    afterwards).
    """
    if count < 1:
        raise ValueError(f"need at least one car, got {count}")
    if road_length_m <= 0 or speed_mps <= 0:
        raise ValueError("road needs positive length and speed")
    if lane_offset_m < 0:
        raise ValueError(f"negative lane offset: {lane_offset_m}")
    if laps < 1:
        raise ValueError(f"need at least one lap, got {laps}")
    scenario = Scenario(seed=seed)
    scenario.add_node("kiosk", position=(0.0, 0.0),
                      technologies=technologies, mobility_class="static")
    scenario.add_node("depot", position=(road_length_m, 0.0),
                      technologies=technologies, mobility_class="static")
    # Staging must sit outside kiosk coverage on every carried radio,
    # or parked/staged cars would hold a permanent kiosk contact.
    widest_m = max(get_technology(name).range_m for name in technologies)
    stage_x = -(2.0 * max(widest_m, lane_offset_m) + 10.0)
    leg_s = (road_length_m - stage_x) / speed_mps
    for index in range(count):
        start = index * headway_s
        waypoints = [(start, (stage_x, lane_offset_m))]
        clock = start
        for _lap in range(laps):
            clock += leg_s
            waypoints.append((clock, (road_length_m, lane_offset_m)))
            clock += leg_s
            waypoints.append((clock, (stage_x, lane_offset_m)))
        scenario.add_node(f"c{index}", mobility=PathMovement(waypoints),
                          technologies=technologies,
                          mobility_class="dynamic")
    install_scenario_faults(
        scenario, crash_rate=crash_rate,
        crash_downtime_s=crash_downtime_s,
        radio_fault_rate=radio_fault_rate,
        byzantine_rate=byzantine_rate, jammer_count=jammer_count,
        fault_window_s=fault_window_s,
        area=(road_length_m, 2 * lane_offset_m + 10.0))
    install_scenario_phy(
        scenario, shadowing_sigma_db=shadowing_sigma_db,
        phy_collisions=phy_collisions,
        capture_margin_db=capture_margin_db)
    return scenario


def crowded_festival(count: int = 18, area: float = 40.0,
                     speed_range: tuple[float, float] = (0.4, 1.5),
                     pause_range: tuple[float, float] = (0.0, 15.0),
                     crash_rate: float = 0.0,
                     crash_downtime_s: float = 45.0,
                     radio_fault_rate: float = 0.0,
                     byzantine_rate: float = 0.0,
                     jammer_count: int = 0,
                     fault_window_s: float = 480.0,
                     shadowing_sigma_db: float = 0.0,
                     phy_collisions: int = 0,
                     capture_margin_db: float = 6.0,
                     seed: int = 0,
                     technologies: typing.Sequence[str] = ("bluetooth",),
                     ) -> Scenario:
    """A static announcer amid a dense, slowly roaming crowd.

    The same shape as :func:`~repro.scenarios.dtn.
    flash_crowd_broadcast` but packed tighter (default 18 attendees on
    a 40 m square): most pairs are in range most of the time, so under
    the bandwidth-limited plane the constraint is *contention for
    window bytes* under a heavy broadcast load, not reachability.
    ``source`` stands at the centre; attendees are ``a0`` ….
    """
    if count < 1:
        raise ValueError(f"need at least one attendee, got {count}")
    if area <= 0:
        raise ValueError(f"area must be positive: {area}")
    scenario = Scenario(seed=seed)
    scenario.add_node("source", position=(area / 2.0, area / 2.0),
                      technologies=technologies, mobility_class="static")
    for index in range(count):
        mobility = RandomWaypoint(
            scenario.sim.rng(f"festival/{index}"), area=(area, area),
            speed_range=speed_range, pause_range=pause_range)
        scenario.add_node(f"a{index}", mobility=mobility,
                          technologies=technologies,
                          mobility_class="dynamic")
    install_scenario_faults(
        scenario, crash_rate=crash_rate,
        crash_downtime_s=crash_downtime_s,
        radio_fault_rate=radio_fault_rate,
        byzantine_rate=byzantine_rate, jammer_count=jammer_count,
        fault_window_s=fault_window_s, area=(area, area))
    install_scenario_phy(
        scenario, shadowing_sigma_db=shadowing_sigma_db,
        phy_collisions=phy_collisions,
        capture_margin_db=capture_margin_db)
    return scenario


def lossy_festival(count: int = 18, area: float = 40.0,
                   speed_range: tuple[float, float] = (0.4, 1.5),
                   pause_range: tuple[float, float] = (0.0, 15.0),
                   crash_rate: float = 0.0,
                   crash_downtime_s: float = 45.0,
                   radio_fault_rate: float = 0.0,
                   byzantine_rate: float = 0.0,
                   jammer_count: int = 0,
                   fault_window_s: float = 480.0,
                   shadowing_sigma_db: float = 6.0,
                   phy_collisions: int = 1,
                   capture_margin_db: float = 6.0,
                   seed: int = 0,
                   technologies: typing.Sequence[str] = ("bluetooth",),
                   ) -> Scenario:
    """:func:`crowded_festival` under a default lossy PHY profile.

    Pure delegation — the geometry, mobility streams and fault knobs
    are exactly the festival's, so a ``lossy_festival`` with
    ``shadowing_sigma_db=0, phy_collisions=0`` builds a byte-identical
    world to ``crowded_festival``.  The defaults turn both loss sources
    on (6 dB shadowing, collision/capture), which is the regime where
    epidemic's flooding starts costing it deliveries
    (``benchmarks/bench_phy.py`` gates on it).
    """
    return crowded_festival(
        count=count, area=area, speed_range=speed_range,
        pause_range=pause_range, crash_rate=crash_rate,
        crash_downtime_s=crash_downtime_s,
        radio_fault_rate=radio_fault_rate,
        byzantine_rate=byzantine_rate, jammer_count=jammer_count,
        fault_window_s=fault_window_s,
        shadowing_sigma_db=shadowing_sigma_db,
        phy_collisions=phy_collisions,
        capture_margin_db=capture_margin_db,
        seed=seed, technologies=technologies)


def rural_bus_dtn(count: int = 9, villages: int = 3,
                  village_radius_m: float = 5.0,
                  village_spacing_m: float = 80.0,
                  bus_speed_mps: float = 8.0, dwell_s: float = 25.0,
                  cycles: int = 4,
                  crash_rate: float = 0.0,
                  crash_downtime_s: float = 45.0,
                  radio_fault_rate: float = 0.0,
                  byzantine_rate: float = 0.0,
                  jammer_count: int = 0,
                  fault_window_s: float = 480.0,
                  shadowing_sigma_db: float = 0.0,
                  phy_collisions: int = 0,
                  capture_margin_db: float = 6.0,
                  seed: int = 0,
                  technologies: typing.Sequence[str] = ("bluetooth",),
                  ) -> Scenario:
    """``count`` villagers over ``villages`` clusters plus one bus.

    Village ``i``'s centre sits at ``(i × village_spacing_m, 0)`` —
    far beyond radio range of its neighbours.  Villagers
    (``v{village}n{slot}``, static) stand on a deterministic ring of
    ``village_radius_m`` around their centre.  The bus (``bus``) runs
    the fixed route village 0 → 1 → … → last → 0, dwelling ``dwell_s``
    at each stop, ``cycles`` times, then parks at village 0.  Each
    dwell prices the village's uplink: a villager-bus contact is worth
    about ``dwell × data_rate`` bytes per visit, which is what the
    ``bandwidth_sweep`` campaign constrains.
    """
    if count < 1:
        raise ValueError(f"need at least one villager, got {count}")
    if villages < 2:
        raise ValueError(f"need at least two villages, got {villages}")
    if cycles < 1:
        raise ValueError(f"need at least one bus cycle, got {cycles}")
    if bus_speed_mps <= 0 or dwell_s < 0:
        raise ValueError("bus needs positive speed, non-negative dwell")
    scenario = Scenario(seed=seed)
    centres = [(i * village_spacing_m, 0.0) for i in range(villages)]
    for index in range(count):
        village = index % villages
        slot = index // villages
        per_village = (count + villages - 1 - village) // villages
        angle = 2.0 * math.pi * slot / max(1, per_village)
        cx, cy = centres[village]
        scenario.add_node(
            f"v{village}n{slot}",
            position=(cx + village_radius_m * math.cos(angle),
                      cy + village_radius_m * math.sin(angle)),
            technologies=technologies, mobility_class="static")
    waypoints: list[tuple[float, tuple[float, float]]] = []
    clock = 0.0
    stop_sequence = list(range(villages)) + [0]
    for _cycle in range(cycles):
        for stop_index, village in enumerate(stop_sequence):
            target = centres[village]
            if waypoints:
                previous = waypoints[-1][1]
                travel = (abs(target[0] - previous[0])
                          + abs(target[1] - previous[1]))
                clock += travel / bus_speed_mps
            waypoints.append((clock, target))
            if stop_index < len(stop_sequence) - 1 or dwell_s > 0:
                clock += dwell_s
                waypoints.append((clock, target))
    scenario.add_node("bus", mobility=PathMovement(waypoints),
                      technologies=technologies, mobility_class="dynamic")
    install_scenario_faults(
        scenario, crash_rate=crash_rate,
        crash_downtime_s=crash_downtime_s,
        radio_fault_rate=radio_fault_rate,
        byzantine_rate=byzantine_rate, jammer_count=jammer_count,
        fault_window_s=fault_window_s,
        area=((villages - 1) * village_spacing_m + 2 * village_radius_m,
              4 * village_radius_m))
    install_scenario_phy(
        scenario, shadowing_sigma_db=shadowing_sigma_db,
        phy_collisions=phy_collisions,
        capture_margin_db=capture_margin_db)
    return scenario
