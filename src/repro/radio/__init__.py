"""Radio substrate: the simulated physical layer.

The thesis ran on real Bluetooth/WLAN/GPRS hardware.  This package replaces
those radios with a 2-D world model:

* :mod:`~repro.radio.technologies` — per-technology parameter sets
  (coverage radius, connect-time distribution, establishment fault
  probability, bitrate, inquiry behaviour), calibrated from the paper's own
  measurements (Bluetooth bridge connects in 3–18 s with ~30 % faults, §4.3);
* :mod:`~repro.radio.propagation` — log-distance path loss → RSSI;
* :mod:`~repro.radio.quality` — RSSI/distance → the PeerHood link-quality
  scale (0–255, "low" threshold 230, §3.4.1/Fig. 5.8);
* :mod:`~repro.radio.spatial` — the uniform spatial-grid index (one grid
  per technology, cell side = coverage radius) that makes neighbor
  enumeration O(neighbors) instead of O(N);
* :mod:`~repro.radio.world` — node positions (driven by mobility models),
  grid-backed range/neighbor queries and quality lookups, plus the paper's
  artificial quality decay fault injection (Fig. 5.8);
* :mod:`~repro.radio.channel` — physical link establishment and framed
  transmission with latency, loss on range exit, and teardown (scheduled
  at the predicted LinkDown instant);
* :mod:`~repro.radio.contacts` — the analytic crossing-time solver:
  closed-form LinkUp/LinkDown and quality-threshold instants over
  piecewise-linear mobility, with a guarded-bisection fallback;
* :mod:`~repro.radio.bus` — the connectivity-event bus that turns those
  predictions into scheduled (and cancellable) kernel events.
"""

from repro.radio.bus import ConnectivityBus, ConnectivityEvent, Watch
from repro.radio.channel import (
    ChannelClosed,
    ConnectFault,
    Link,
    LinkEstablisher,
    OutOfRange,
)
from repro.radio.contacts import ContactSolver, Crossing
from repro.radio.phy import (
    PhyPlane,
    PhyProfile,
    PhyTransmission,
    install_scenario_phy,
)
from repro.radio.propagation import LogDistancePathLoss, PathLossModel
from repro.radio.spatial import SpatialGrid, WorldStats
from repro.radio.quality import (
    PAPER_LOW_QUALITY_THRESHOLD,
    QUALITY_MAX,
    PathLossQuality,
    PiecewiseLinearQuality,
    QualityModel,
)
from repro.radio.technologies import (
    BLUETOOTH,
    GPRS,
    TECHNOLOGIES,
    WLAN,
    Technology,
)
from repro.radio.world import World

__all__ = [
    "BLUETOOTH",
    "ChannelClosed",
    "ConnectFault",
    "ConnectivityBus",
    "ConnectivityEvent",
    "ContactSolver",
    "Crossing",
    "GPRS",
    "Link",
    "Watch",
    "LinkEstablisher",
    "LogDistancePathLoss",
    "OutOfRange",
    "PAPER_LOW_QUALITY_THRESHOLD",
    "PathLossModel",
    "PathLossQuality",
    "PhyPlane",
    "PhyProfile",
    "PhyTransmission",
    "PiecewiseLinearQuality",
    "QUALITY_MAX",
    "QualityModel",
    "SpatialGrid",
    "TECHNOLOGIES",
    "Technology",
    "WLAN",
    "World",
    "WorldStats",
    "install_scenario_phy",
]
