"""DTN delivery gates: routing-baseline ordering + forwarder wakeups.

Backs the PR 4 store-carry-forward data plane (:mod:`repro.dtn`).  Two
gates, both written into ``BENCH_dtn_delivery.json`` at the repo root:

1. **Routing ordering** — the bundled ``dtn_sweep`` spec runs through
   the experiment runner (once with 1 worker, once with 2; the JSONL
   and CSV bytes must match — the determinism contract extends to DTN
   sweeps), and epidemic routing must beat direct-delivery on delivery
   ratio in *every* run of the grid.  The comparison is paired: each
   run replays identical mobility and identical injections under each
   router, so the ordering is structural, not statistical.
2. **Wakeup reduction** — an island-hopping ferry world at ``N``
   islanders (default 500, ``BENCH_DTN_N`` shrinks it in CI) runs the
   same epidemic workload under the event-driven
   :class:`~repro.dtn.forwarder.DtnOverlay` (wakes only at scheduled
   contact events) and under the 1 s
   :class:`~repro.dtn.forwarder.PollingDtnOverlay` oracle (every node's
   forwarder wakes every second).  The event-driven forwarder must take
   **≥ 5× fewer wakeups**, and it must deliver at least every bundle
   the polling oracle delivered (polling can only *miss* contacts
   shorter than its interval, never see extra ones).
"""

import os
import pathlib
import time

from repro.analysis.snapshots import write_bench_snapshot
from repro.dtn import DtnOverlay, PollingDtnOverlay, make_router
from repro.dtn.traffic import generate_traffic, schedule_traffic
from repro.experiments.report import aggregate
from repro.experiments.runner import run_spec, write_jsonl
from repro.experiments.report import write_csv
from repro.experiments.specs import get_spec
from repro.scenarios import island_hopping_ferry

from paperbench import print_table

SNAPSHOT_PATH = (pathlib.Path(__file__).resolve().parent.parent
                 / "BENCH_dtn_delivery.json")

#: Islander count for the wakeup gate; CI shrinks it via the environment.
FARM_N = int(os.environ.get("BENCH_DTN_N", "500"))
#: Simulated time per mode, seconds (covers ~4 ferry cycles).
DURATION_S = 480.0
#: Messages injected (uniform pattern over all islanders + ferry).
MESSAGE_COUNT = 40
#: Oracle poll period, seconds — the paper-era "check every second".
POLL_INTERVAL_S = 1.0


def run_sweep(tmp_dir: pathlib.Path):
    """Execute dtn_sweep at 1 and 2 workers; returns (records, rows)."""
    spec = get_spec("dtn_sweep")
    outputs = {}
    for workers in (1, 2):
        results = run_spec(spec, workers=workers)
        records = [result.record for result in results]
        out = tmp_dir / f"w{workers}"
        jsonl = write_jsonl(records, out / "runs.jsonl")
        csv = write_csv(aggregate(records), out / "summary.csv")
        outputs[workers] = (jsonl.read_bytes(), csv.read_bytes(), records)
    assert outputs[1][0] == outputs[2][0], (
        "dtn_sweep runs.jsonl differs between 1 and 2 workers")
    assert outputs[1][1] == outputs[2][1], (
        "dtn_sweep summary.csv differs between 1 and 2 workers")
    return outputs[1][2]


def run_farm(event_driven: bool, n_nodes: int):
    """One epidemic run over the ferry world; returns the figures."""
    started = time.perf_counter()
    scenario = island_hopping_ferry(count=n_nodes, seed=23)
    cls = DtnOverlay if event_driven else PollingDtnOverlay
    kwargs = {} if event_driven else {"poll_interval_s": POLL_INTERVAL_S}
    plane = cls(scenario.world, make_router("epidemic"),
                meter=scenario.meter, **kwargs)
    injections = generate_traffic(
        scenario.sim.rng("dtn/traffic"), plane.live_nodes(), "uniform",
        MESSAGE_COUNT, window=(10.0, DURATION_S / 2.0), ttl_s=300.0)
    schedule_traffic(plane, injections)
    scenario.run(until=DURATION_S)
    if event_driven:
        plane.detach()
    else:
        plane.stop()
    return {
        "mode": "event" if event_driven else "polling",
        "wakeups": plane.wakeups,
        "kernel_events": scenario.sim.events_processed,
        "delivered_ids": sorted(plane.delivered),
        "delivery_ratio": round(plane.delivery_ratio(), 4),
        "transmissions": plane.counters.transmissions,
        "bus": scenario.world.stats.bus.as_dict(),
        "wall_s": round(time.perf_counter() - started, 3),
    }


def write_snapshot(records, polling, event, path=SNAPSHOT_PATH):
    """Persist both gates for cross-PR perf tracking."""
    ratios = {
        "direct": [r["metrics"]["direct_delivery_ratio"]
                   for r in records],
        "epidemic": [r["metrics"]["epidemic_delivery_ratio"]
                     for r in records],
        "spray": [r["metrics"]["spray_delivery_ratio"]
                  for r in records],
    }
    payload = {
        "sweep": {
            "runs": len(records),
            "mean_delivery_ratio": {
                name: round(sum(values) / len(values), 4)
                for name, values in ratios.items()},
        },
        "farm_nodes": FARM_N,
        "duration_s": DURATION_S,
        "poll_interval_s": POLL_INTERVAL_S,
        "polling": {k: v for k, v in polling.items()
                    if k != "delivered_ids"},
        "event_driven": {k: v for k, v in event.items()
                         if k != "delivered_ids"},
        "wakeup_reduction": round(
            polling["wakeups"] / max(1, event["wakeups"]), 2),
    }
    return write_bench_snapshot(
        "dtn_delivery", payload, path, n=FARM_N,
        repeats=max(r["repeat"] for r in records) + 1)


def test_dtn_delivery_gates(tmp_path):
    records = run_sweep(tmp_path)

    # Gate 1: epidemic beats direct-delivery in every paired run.
    for record in records:
        metrics = record["metrics"]
        assert (metrics["epidemic_delivery_ratio"]
                > metrics["direct_delivery_ratio"]), (
            f"epidemic did not beat direct in {record['scenario']} "
            f"{record['params']} rep{record['repeat']}: {metrics}")
        # Spray's bounded copies must not exceed epidemic's flood.
        assert (metrics["spray_transmissions"]
                <= metrics["epidemic_transmissions"])

    polling = run_farm(event_driven=False, n_nodes=FARM_N)
    event = run_farm(event_driven=True, n_nodes=FARM_N)
    snapshot = write_snapshot(records, polling, event)

    print_table(
        f"DTN forwarder at N={FARM_N}: polling oracle vs event-driven",
        ["mode", "wakeups", "kernel events", "delivered",
         "transmissions", "wall s"],
        [[figures["mode"], figures["wakeups"], figures["kernel_events"],
          len(figures["delivered_ids"]), figures["transmissions"],
          figures["wall_s"]] for figures in (polling, event)])
    print_table(
        "dtn_sweep mean delivery ratio by router",
        ["router", "mean ratio"],
        [[name, value] for name, value in sorted(
            snapshot["sweep"]["mean_delivery_ratio"].items())])

    # Gate 2: >= 5x fewer forwarder wakeups, event-driven.
    assert snapshot["wakeup_reduction"] >= 5.0, (
        f"event-driven wakeup reduction below 5x: {snapshot}")
    # Sanity: the farm exercised real delivery, and the event-driven
    # forwarder saw at least every contact the 1 s oracle saw.
    assert event["delivery_ratio"] > 0.0
    assert set(event["delivered_ids"]) >= set(polling["delivered_ids"])
    assert SNAPSHOT_PATH.exists()
