"""The §5.3 picture-analysis task migration application.

"The server is simulating an image analyse server which receives a big
size photo from any client, the people from the photo will be recognized
and names are added in the same picture and sent back to the client."

The client uploads the photo as a package count followed by the packages
(exactly the paper's protocol: "First the client will send the size of
photo (package numbers) and then each data package"), flags the end of
sending (§5.3's ``sending`` flag) and waits for the result on either the
original connection (small/medium jobs) or its reply service (the server
reconnects through the mesh after a break — Fig. 5.10's right branch).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.connection import PeerHoodConnection
from repro.core.errors import PeerHoodError
from repro.core.node import PeerHoodNode
from repro.core.result_routing import (
    ResultDeliveryFailed,
    ResultWaiter,
    deliver_result,
)
from repro.radio.channel import ConnectFault, OutOfRange

#: Bytes per upload package (the paper sweeps the package *count*).
PACKAGE_SIZE_BYTES = 4_096

#: Result picture size (annotated photo sent back).
RESULT_SIZE_BYTES = 16_384


@dataclasses.dataclass
class PictureJobResult:
    """What one migration attempt produced, as the client saw it."""

    uploaded: bool
    packages_sent: int
    result_received: bool
    result_mode: str  # "direct", "reconnect" or ""
    upload_time_s: float
    total_time_s: float
    error: str = ""


class PictureAnalysisServer:
    """The Fig. 5.10 server: receive, process, send back (reconnecting
    through the routing table when the connection broke meanwhile)."""

    SERVICE_NAME = "picture.analyse"

    def __init__(self, node: PeerHoodNode,
                 processing_time_per_package_s: float = 0.5,
                 delivery_deadline_s: float = 240.0):
        self.node = node
        self.sim = node.sim
        self.processing_time_per_package_s = processing_time_per_package_s
        self.delivery_deadline_s = delivery_deadline_s
        self.jobs_received = 0
        self.jobs_completed = 0
        self.uploads_broken = 0
        self.delivery_modes: list[str] = []
        node.library.register_service(self.SERVICE_NAME, self._on_connection)

    #: Give up on a stalled upload after this long without completion.
    UPLOAD_DEADLINE_S = 180.0

    def _on_connection(self, connection: PeerHoodConnection):
        return self._serve(connection)

    def _read_upload(self,
                     connection: PeerHoodConnection) -> typing.Generator:
        package_count = yield from connection.read()
        packages = yield from connection.read_n(int(package_count))
        return packages

    def _serve(self, connection: PeerHoodConnection) -> typing.Generator:
        reader = self.sim.spawn(
            self._read_upload(connection),
            name=f"picture-upload:{self.node.node_id}")
        deadline = self.sim.timeout(self.UPLOAD_DEADLINE_S)
        try:
            outcome = yield self.sim.any_of([reader, deadline])
        except PeerHoodError:
            # "With a huge number of data packages the connection is
            # broken during the data packages transmission" — nothing to
            # process.
            self.uploads_broken += 1
            return
        if reader not in outcome:
            # Upload stalled past the deadline on a dead transport.
            self.uploads_broken += 1
            return
        packages = outcome[reader]
        self.jobs_received += 1
        yield self.sim.timeout(
            self.processing_time_per_package_s * len(packages))
        result = {"annotated": True, "packages": len(packages)}
        try:
            mode = yield from deliver_result(
                self.node.library, connection, result, RESULT_SIZE_BYTES,
                deadline_s=self.delivery_deadline_s)
        except ResultDeliveryFailed:
            self.delivery_modes.append("failed")
            return
        self.jobs_completed += 1
        self.delivery_modes.append(mode)


class PictureAnalysisClient:
    """Uploads a photo, then sleeps waiting for the analysed result."""

    def __init__(self, node: PeerHoodNode, package_count: int = 10,
                 reply_service: str | None = None):
        if package_count < 1:
            raise ValueError(f"package count must be >= 1: {package_count}")
        self.node = node
        self.sim = node.sim
        self.package_count = package_count
        self.reply_service = (reply_service
                              or f"picture.reply.{node.node_id}")

    def run(self, server: PictureAnalysisServer,
            result_deadline_s: float = 300.0,
            retries: int | None = None,
            with_handover: bool = False) -> typing.Generator:
        """Process generator: one full migration; returns the job result.

        ``with_handover`` attaches a HandoverThread for the upload phase
        (the paper's case 3: "Before the definitive connection loss
        Handover thread will try to restablish the connection though the
        neighbor node").
        """
        started = self.sim.now
        waiter = ResultWaiter(self.node.library, self.reply_service)
        try:
            connection = yield from self.node.library.connect(
                server.node.address, PictureAnalysisServer.SERVICE_NAME,
                reply_service=self.reply_service,
                retries=retries if retries is not None else
                self.node.config.connect_retries)
        except (ConnectFault, OutOfRange, PeerHoodError) as error:
            return PictureJobResult(
                uploaded=False, packages_sent=0, result_received=False,
                result_mode="", upload_time_s=0.0,
                total_time_s=self.sim.now - started, error=str(error))
        handover_thread = None
        if with_handover:
            from repro.core.handover import HandoverThread
            handover_thread = HandoverThread(
                self.node.library, connection).start()
        upload_start = self.sim.now
        connection.write(self.package_count, 8)
        # Blocking-write pacing: each package occupies the radio for its
        # transmit time, like the real stack's sequential socket writes.
        package_air_time = self.node.technologies[0].transmit_time(
            PACKAGE_SIZE_BYTES)
        for index in range(self.package_count):
            connection.write({"package": index}, PACKAGE_SIZE_BYTES)
            yield self.sim.timeout(package_air_time)
        # §5.3: flag the end of data sending so the HandoverThread knows
        # there is "no need for the reconnection" while we idle.
        connection.set_sending(False)
        upload_time = self.sim.now - upload_start
        result_payload = yield from self._await_result(
            connection, waiter, result_deadline_s)
        if handover_thread is not None:
            handover_thread.stop()
        received = result_payload is not None
        total = self.sim.now - started
        return PictureJobResult(
            uploaded=True,
            packages_sent=self.package_count,
            result_received=received,
            result_mode=self._delivery_mode(server) if received else "",
            upload_time_s=upload_time,
            total_time_s=total)

    def _await_result(self, connection: PeerHoodConnection,
                      waiter: ResultWaiter,
                      deadline_s: float) -> typing.Generator:
        """Wait on the original connection *and* the reply service.

        The paper's three §5.3 regimes appear here: small jobs answer on
        the original connection; medium jobs answer through a server
        reconnect; huge jobs lose the upload and nothing ever arrives.
        A dead original connection does not end the wait — the reconnect
        path may still deliver.
        """
        direct_read = self.sim.spawn(
            self._read_quietly(connection),
            name=f"picture-client-read:{self.node.node_id}")
        deadline = self.sim.timeout(deadline_s)
        waiting = [direct_read, waiter.result_event, deadline]
        while True:
            outcome = yield self.sim.any_of(waiting)
            if deadline in outcome:
                return None
            for event in list(waiting):
                if event not in outcome:
                    continue
                value = outcome[event]
                if value is not None:
                    return value
                waiting.remove(event)  # broke with nothing; keep waiting

    @staticmethod
    def _read_quietly(connection: PeerHoodConnection) -> typing.Generator:
        try:
            payload = yield from connection.read()
        except PeerHoodError:
            return None
        return payload

    @staticmethod
    def _delivery_mode(server: PictureAnalysisServer) -> str:
        return server.delivery_modes[-1] if server.delivery_modes else ""
