"""Unit tests for route metrics and the Fig. 3.13 selection rules."""

import pytest

from repro.core.config import RoutingPolicy
from repro.core.device import MobilityClass
from repro.core.routing import (
    RouteMetrics,
    best_route,
    direct_route,
    is_better_route,
)

S, H, D = MobilityClass.STATIC, MobilityClass.HYBRID, MobilityClass.DYNAMIC


def route(jump, mobility, quality_sum, min_quality=None):
    return RouteMetrics(jump=jump, first_hop_mobility=mobility,
                        quality_sum=quality_sum,
                        min_link_quality=(min_quality if min_quality
                                          is not None else quality_sum))


def test_direct_route_has_zero_jumps():
    metrics = direct_route(quality=240, mobility=S)
    assert metrics.jump == 0
    assert metrics.quality_sum == 240
    assert metrics.min_link_quality == 240
    assert metrics.first_hop_mobility is S


def test_route_metrics_validation():
    with pytest.raises(ValueError):
        route(-1, S, 100)
    with pytest.raises(ValueError):
        RouteMetrics(jump=0, first_hop_mobility=S, quality_sum=-5,
                     min_link_quality=0)


def test_extend_adds_jump_and_folds_quality():
    base = direct_route(quality=250, mobility=S)  # B's view of E
    extended = base.extend(link_quality=200, bridge_mobility=H)  # A via B
    assert extended.jump == 1
    assert extended.quality_sum == 450
    assert extended.min_link_quality == 200
    assert extended.first_hop_mobility is H


def test_fewer_jumps_always_wins_default_policy():
    policy = RoutingPolicy()
    shorter = route(1, D, 300, min_quality=150)
    longer = route(2, S, 900, min_quality=255)
    assert is_better_route(shorter, longer, policy)
    assert not is_better_route(longer, shorter, policy)


def test_equal_jumps_lower_mobility_wins():
    """§3.4.3: static bridges preferred at equal hop count."""
    policy = RoutingPolicy()
    via_static = route(1, S, 400, min_quality=200)
    via_dynamic = route(1, D, 500, min_quality=255)
    assert is_better_route(via_static, via_dynamic, policy)


def test_equal_jumps_equal_mobility_higher_quality_wins():
    policy = RoutingPolicy()
    strong = route(1, S, 480, min_quality=240)
    weak = route(1, S, 460, min_quality=230)
    assert is_better_route(strong, weak, policy)


def test_fig_3_9_equity_threshold_breaks_tie():
    """Equal sums (230+230 vs 210+250): the sub-threshold route loses."""
    policy = RoutingPolicy()  # threshold 230
    route_abd = route(1, S, 460, min_quality=230)
    route_acd = route(1, S, 460, min_quality=210)
    assert route_abd.meets_threshold(policy.quality_threshold)
    assert not route_acd.meets_threshold(policy.quality_threshold)
    assert is_better_route(route_abd, route_acd, policy)
    assert not is_better_route(route_acd, route_abd, policy)


def test_fig_3_9_without_threshold_equity_is_a_true_tie():
    """Ablation: with the rule off, equal sums keep the incumbent."""
    policy = RoutingPolicy(use_quality_threshold=False)
    route_abd = route(1, S, 460, min_quality=230)
    route_acd = route(1, S, 460, min_quality=210)
    assert not is_better_route(route_abd, route_acd, policy)
    assert not is_better_route(route_acd, route_abd, policy)


def test_threshold_satisfying_route_beats_higher_sum_below_threshold():
    policy = RoutingPolicy()
    clean = route(1, S, 470, min_quality=235)
    tainted = route(1, S, 500, min_quality=200)
    assert is_better_route(clean, tainted, policy)


def test_mobility_ignored_when_disabled():
    policy = RoutingPolicy(use_mobility=False)
    via_dynamic_strong = route(1, D, 500, min_quality=250)
    via_static_weak = route(1, S, 400, min_quality=250)
    assert is_better_route(via_dynamic_strong, via_static_weak, policy)


def test_quality_first_ablation_reorders():
    policy = RoutingPolicy(quality_first=True)
    long_strong = route(3, S, 900, min_quality=255)
    short_weak = route(1, S, 250, min_quality=250)
    assert is_better_route(long_strong, short_weak, policy)
    # Default policy prefers the short route.
    assert is_better_route(short_weak, long_strong, RoutingPolicy())


def test_equal_routes_do_not_replace():
    policy = RoutingPolicy()
    first = route(1, S, 400, min_quality=240)
    twin = route(1, S, 400, min_quality=240)
    assert not is_better_route(first, twin, policy)
    assert not is_better_route(twin, first, policy)


def test_best_route_picks_winner_and_handles_empty():
    policy = RoutingPolicy()
    routes = [
        route(2, S, 700, min_quality=235),
        route(1, D, 300, min_quality=150),
        route(1, S, 450, min_quality=231),
    ]
    winner = best_route(routes, policy)
    assert winner is routes[2]
    assert best_route([], policy) is None


def test_policy_validation():
    with pytest.raises(ValueError):
        RoutingPolicy(quality_threshold=300)
    with pytest.raises(ValueError):
        RoutingPolicy(max_jump=-1)
