"""Contact traces: record the connectivity-event stream, replay it later.

The event-driven core (PR 3) makes pairwise connectivity a first-class
*stream*: every LinkUp/LinkDown the solver predicts is a scheduled event.
This module taps that stream into the standard DTN/opportunistic-network
artifact — a **contact trace** — and replays it as a mobility-free
workload:

* :func:`record_contact_trace` installs one repeating link watch per
  node pair and runs the scenario; the result is a time-ordered list of
  rows (one JSON object per line when written), with *zero polling*:
  kernel wakeups occur only at actual contact changes.
* :func:`replay_trace` schedules a recorded stream on a fresh simulator
  and re-emits it through a callback — no world, no mobility models, no
  solver.  Replaying a recorded trace and re-serialising it reproduces
  the recorded file **byte for byte** (asserted in the tests), so traces
  are a portable workload: record once at mobility-simulation cost,
  re-run experiments against the contact stream at event-replay cost.

Trace format (JSONL, one object per event, canonical key order)::

    {"a": "v3", "b": "v7", "kind": "link-up", "t": 12.5, "tech": "wlan"}

``a`` < ``b`` (pairs are unordered), ``t`` in sim-seconds, ``kind`` one
of ``link-up`` / ``link-down``.  Quality events carry ``threshold``.
Pairs already in contact when recording starts get a synthetic
``link-up`` row at the recording start time, so a trace is
self-contained: per-pair kinds strictly alternate and every contact
interval has an opening edge.

:func:`replay_arena` is the registered mobility-free scenario the
experiment registry exposes for replay runs.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import typing

from repro.radio.bus import ConnectivityEvent
from repro.radio.technologies import Technology, get_technology
from repro.scenarios.builder import Scenario
from repro.sim.kernel import Simulator


# ----------------------------------------------------------------------
# serialisation
# ----------------------------------------------------------------------
def trace_row(event: ConnectivityEvent) -> dict:
    """JSON-safe canonical row for one connectivity event.  O(1).

    ``t`` is sim-seconds, ``a`` < ``b``; ``threshold`` (0–255) appears
    only on quality events.  Inverse of :func:`row_event`.
    """
    row = {
        "t": event.time,
        "kind": event.kind,
        "a": event.node_a,
        "b": event.node_b,
        "tech": event.tech,
    }
    if event.threshold is not None:
        row["threshold"] = event.threshold
    return row


def row_event(row: typing.Mapping) -> ConnectivityEvent:
    """Inverse of :func:`trace_row`; tolerant of JSON-parsed types.  O(1)."""
    return ConnectivityEvent(
        time=float(row["t"]), kind=str(row["kind"]),
        node_a=str(row["a"]), node_b=str(row["b"]),
        tech=str(row["tech"]),
        threshold=row.get("threshold"))


def trace_line(row: typing.Mapping) -> str:
    """Canonical single-line rendering (sorted keys, no spaces)."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def trace_digest(rows: typing.Iterable[typing.Mapping]) -> str:
    """SHA-256 over the canonical line rendering of the stream.

    O(rows).  Two streams digest equal iff their canonical JSONL bytes
    are equal — the identity the record-vs-replay tests compare, cheap
    enough to ship in run records (the ``contact_trace`` workload).
    """
    hasher = hashlib.sha256()
    for row in rows:
        hasher.update(trace_line(row).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def write_trace(rows: typing.Iterable[typing.Mapping],
                path: str | pathlib.Path) -> pathlib.Path:
    """Write a trace as JSONL, deterministically.

    Canonical line rendering, ``\\n`` endings, parent directories
    created; same rows ⇒ same bytes on any platform.  O(rows).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as sink:
        for row in rows:
            sink.write(trace_line(row) + "\n")
    return path


def load_trace(path: str | pathlib.Path) -> list[dict]:
    """Read a JSONL trace back into rows (file order preserved).

    Blank lines are skipped; no validation beyond JSON parsing —
    :func:`replay_trace` re-canonicalises through
    :func:`row_event`/:func:`trace_row`.  O(rows).
    """
    rows = []
    with open(path, encoding="utf-8") as source:
        for line in source:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------
class ContactTraceRecorder:
    """Collects the connectivity events of the watches it installs.

    One repeating link watch per unordered node pair carrying the
    technology — O(pairs) watches, each dormant between crossings, so
    the recording itself costs kernel wakeups only when contacts change.
    """

    def __init__(self, scenario: Scenario, tech: Technology | str,
                 nodes: typing.Sequence[str] | None = None,
                 max_pairs: int = 2000):
        self.scenario = scenario
        self.tech = get_technology(tech) if isinstance(tech, str) else tech
        self.events: list[ConnectivityEvent] = []
        world = scenario.world
        names = sorted(nodes if nodes is not None else scenario.nodes)
        eligible = [name for name in names
                    if world.has_node(name)
                    and self.tech.name in world.node(name).technologies]
        pair_count = len(eligible) * (len(eligible) - 1) // 2
        if pair_count > max_pairs:
            raise ValueError(
                f"{pair_count} pairs exceed max_pairs={max_pairs}; "
                "contact traces are meant for small/medium N")
        self.pairs: list[tuple[str, str]] = []
        self._watches = []
        now = scenario.sim.now
        for i, first in enumerate(eligible):
            for second in eligible[i + 1:]:
                self.pairs.append((first, second))
                if world.in_range(first, second, self.tech):
                    # Opening edge for a contact already underway, so
                    # the stream reconstructs full contact intervals.
                    self.events.append(ConnectivityEvent(
                        now, "link-up", first, second, self.tech.name))
                self._watches.append(world.bus.watch_link(
                    first, second, self.tech, callback=self.events.append))

    def detach(self) -> None:
        """Cancel all recorder watches (recording finished)."""
        for watch in self._watches:
            if watch.active:
                watch.cancel()
        self._watches.clear()

    def rows(self) -> list[dict]:
        """The recorded stream as serialisable rows, in firing order."""
        return [trace_row(event) for event in self.events]


def record_contact_trace(scenario: Scenario, tech: Technology | str,
                         until: float,
                         path: str | pathlib.Path | None = None,
                         nodes: typing.Sequence[str] | None = None,
                         ) -> list[dict]:
    """Record the pairwise contact stream of ``scenario`` up to ``until``.

    Installs the recorder, advances the simulation to ``until``
    (absolute sim-seconds), detaches, and returns the rows — written to
    ``path`` as JSONL when given.  The scenario's daemons need not be
    started: contacts are pure geometry.  Setup is O(pairs) watch
    installations (guarded by the recorder's ``max_pairs``); the run
    itself wakes the kernel only at actual contact changes, so a
    static world records in O(pairs) total.  Nodes removed mid-run
    simply stop producing events (their watches are cancelled by the
    bus); rows already recorded for them are kept.
    """
    recorder = ContactTraceRecorder(scenario, tech, nodes=nodes)
    scenario.run(until=until)
    recorder.detach()
    rows = recorder.rows()
    if path is not None:
        write_trace(rows, path)
    return rows


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
class ReplayResult:
    """Outcome of one trace replay."""

    def __init__(self, rows: list[dict], final_time: float,
                 events_processed: int):
        self.rows = rows
        self.final_time = final_time
        self.events_processed = events_processed

    def digest(self) -> str:
        return trace_digest(self.rows)


def replay_trace(rows: typing.Sequence[typing.Mapping],
                 on_event: typing.Callable[[ConnectivityEvent], None]
                 | None = None) -> ReplayResult:
    """Re-run a recorded stream as scheduled events, mobility-free.

    Every row becomes one ``call_at`` on a fresh simulator; the kernel
    pops them in (time, insertion) order — identical to the recorded
    order — and re-emits each through ``on_event`` (when given).  The
    returned rows re-serialise byte-identically to the recording.
    O(rows log rows) kernel work, independent of the node count and
    mobility complexity that produced the trace — the point of
    replaying.  Rows must carry non-negative ``t`` in sim-seconds;
    ``on_event`` exceptions propagate (the replay is synchronous).
    """
    sim = Simulator(seed=0)
    replayed: list[dict] = []

    def emit(row: typing.Mapping) -> None:
        event = row_event(row)
        replayed.append(trace_row(event))
        if on_event is not None:
            on_event(event)

    for row in rows:
        sim.call_at(float(row["t"]), lambda row=row: emit(row),
                    name="trace-replay")
    sim.run()
    return ReplayResult(replayed, sim.now, sim.events_processed)


# ----------------------------------------------------------------------
# the registered mobility-free scenario
# ----------------------------------------------------------------------
def replay_arena(seed: int = 0, config=None) -> Scenario:
    """An empty world: the scenario under which traces are replayed.

    Replay needs no geometry — the contact stream *is* the environment —
    so the arena exists to give replay runs a registered scenario name
    in the experiments registry (specs are pure data and must name one).
    """
    return Scenario(seed=seed)
