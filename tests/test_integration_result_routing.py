"""Integration tests: §5.3 result routing and the picture-analysis app."""

import pytest

from repro.apps.picture_analysis import (
    PictureAnalysisClient,
    PictureAnalysisServer,
)
from repro.core.errors import ConnectionClosedError
from repro.core.result_routing import (
    ResultDeliveryFailed,
    ResultWaiter,
    deliver_result,
)
from repro.mobility import CorridorWalk
from repro.scenarios import Scenario

SETTLE_S = 180.0


def test_direct_delivery_on_live_connection():
    scenario = Scenario(seed=31)
    server = scenario.add_node("server", position=(0, 0),
                               mobility_class="static")
    client = scenario.add_node("client", position=(5, 0))
    outcomes = []

    def handler(connection):
        def serve(connection=connection):
            yield from connection.read()
            mode = yield from deliver_result(
                server.library, connection, "result", 1000)
            outcomes.append(mode)
        return serve()

    server.library.register_service("work", handler)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "work", retries=6)
        connection.write("job", 500)
        result = yield from connection.read()
        return result

    result = scenario.run_process(run(scenario.sim))
    assert result == "result"
    assert outcomes == ["direct"]


def test_reconnect_delivery_after_walkaway():
    """The server reconnects through a bridge to the departed client."""
    scenario = Scenario(seed=32)
    server = scenario.add_node("server", position=(0, 0),
                               mobility_class="static")
    scenario.add_node("relay1", position=(8, 0), mobility_class="static")
    scenario.add_node("relay2", position=(16, 0), mobility_class="static")
    client = scenario.add_node(
        "client",
        mobility=CorridorWalk((6.0, 0.0), heading_deg=0.0, speed=1.4,
                              depart_time=SETTLE_S + 15.0,
                              stop_distance=14.0),
        mobility_class="dynamic")
    outcomes = []

    def handler(connection):
        def serve(connection=connection):
            yield from connection.read()
            yield scenario.sim.timeout(60.0)  # client walks away meanwhile
            try:
                mode = yield from deliver_result(
                    server.library, connection, "late-result", 1000,
                    deadline_s=300.0)
            except ResultDeliveryFailed as error:
                outcomes.append(("failed", str(error)))
                return
            outcomes.append(mode)
        return serve()

    server.library.register_service("work", handler)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")
    received = []

    def run(sim):
        waiter = ResultWaiter(client.library, "client.reply")
        connection = yield from client.library.connect(
            server.address, "work", reply_service="client.reply",
            retries=6)
        connection.write("job", 500)
        connection.set_sending(False)
        result = yield waiter.result_event
        received.append((result, sim.now))

    scenario.sim.spawn(run(scenario.sim))
    scenario.run(until=SETTLE_S + 500)
    assert outcomes == ["reconnect"]
    assert received and received[0][0] == "late-result"


def test_delivery_fails_without_reply_service():
    """§5.3: without the method-2 parameters the server cannot call back."""
    scenario = Scenario(seed=33)
    server = scenario.add_node("server", position=(0, 0),
                               mobility_class="static")
    client = scenario.add_node("client", position=(5, 0))
    failures = []

    def handler(connection):
        def serve(connection=connection):
            yield from connection.read()
            connection.link.close()  # simulate the transport dying
            try:
                yield from deliver_result(
                    server.library, connection, "r", 100, deadline_s=30.0)
            except ResultDeliveryFailed as error:
                failures.append(str(error))
        return serve()

    server.library.register_service("work", handler)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "work", retries=6)  # no reply_service
        connection.write("job", 100)
        yield sim.timeout(40.0)

    scenario.run_process(run(scenario.sim))
    assert failures and "reply-service" in failures[0]


def test_delivery_fails_when_client_unreachable():
    scenario = Scenario(seed=34)
    server = scenario.add_node("server", position=(0, 0),
                               mobility_class="static")
    client = scenario.add_node(
        "client",
        mobility=CorridorWalk((5.0, 0.0), depart_time=SETTLE_S + 10.0,
                              speed=3.0),
        mobility_class="dynamic")
    failures = []

    def handler(connection):
        def serve(connection=connection):
            yield from connection.read()
            yield scenario.sim.timeout(60.0)
            try:
                yield from deliver_result(
                    server.library, connection, "r", 100, deadline_s=60.0)
            except ResultDeliveryFailed as error:
                failures.append(str(error))
        return serve()

    server.library.register_service("work", handler)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "work", reply_service="client.reply", retries=6)
        connection.write("job", 100)
        connection.set_sending(False)

    scenario.sim.spawn(run(scenario.sim))
    scenario.run(until=SETTLE_S + 400)
    # The client ran off at 3 m/s with no relays anywhere: undeliverable.
    assert failures


def test_picture_app_small_job_direct_regime():
    """§5.3 case 1: small jobs finish inside coverage."""
    scenario = Scenario(seed=35)
    server_node = scenario.add_node("server", position=(0, 0),
                                    mobility_class="static")
    client_node = scenario.add_node("client", position=(5, 0))
    server = PictureAnalysisServer(server_node,
                                   processing_time_per_package_s=0.2)
    client = PictureAnalysisClient(client_node, package_count=5)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")
    result = scenario.run_process(client.run(server))
    assert result.uploaded
    assert result.result_received
    assert result.result_mode == "direct"
    assert server.jobs_completed == 1


def test_picture_app_medium_job_reconnect_regime():
    """§5.3 case 2: the break happens during processing; the result is
    routed back through the neighbourhood."""
    scenario = Scenario(seed=36)
    server_node = scenario.add_node("server", position=(0, 0),
                                    mobility_class="static")
    scenario.add_node("relay1", position=(8, 0), mobility_class="static")
    scenario.add_node("relay2", position=(16, 0), mobility_class="static")
    client_node = scenario.add_node(
        "client",
        mobility=CorridorWalk((6.0, 0.0), heading_deg=0.0, speed=1.4,
                              depart_time=SETTLE_S + 12.0,
                              stop_distance=14.0),
        mobility_class="dynamic")
    server = PictureAnalysisServer(server_node,
                                   processing_time_per_package_s=6.0,
                                   delivery_deadline_s=300.0)
    client = PictureAnalysisClient(client_node, package_count=10)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")
    result = scenario.run_process(
        client.run(server, result_deadline_s=500.0))
    assert result.uploaded
    assert result.result_received
    assert result.result_mode == "reconnect"
    assert server.delivery_modes == ["reconnect"]


def test_result_waiter_single_shot():
    scenario = Scenario(seed=37)
    node = scenario.add_node("n", position=(0, 0))
    waiter = ResultWaiter(node.library, "one.shot")
    assert not waiter.result_event.triggered
    # The service is registered and visible in the registry.
    assert node.daemon.registry.lookup("one.shot") is not None
