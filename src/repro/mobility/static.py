"""Fixed-position model for servers, PCs and laptops on desks."""

from __future__ import annotations

import math

from repro.mobility.base import MobilityModel, Point


class StaticPosition(MobilityModel):
    """A node that never moves."""

    def __init__(self, x: float, y: float):
        self._point: Point = (float(x), float(y))

    def position(self, t: float) -> Point:
        return self._point

    def is_mobile(self) -> bool:
        return False

    def linear_segments(self, t0: float, t1: float):
        return [(t0, t1, self._point, (0.0, 0.0))]

    def settled_after(self) -> float:
        return 0.0

    def active_piece(self, t: float, horizon_s: float = 600.0):
        return (t, math.inf, self._point, (0.0, 0.0))

    def __repr__(self) -> str:
        return f"StaticPosition{self._point}"
