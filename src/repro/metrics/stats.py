"""Distribution summaries for benchmark tables."""

from __future__ import annotations

import dataclasses
import math
import statistics
import typing


@dataclasses.dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    stdev: float

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.3f} "
                f"median={self.median:.3f} min={self.minimum:.3f} "
                f"max={self.maximum:.3f} sd={self.stdev:.3f}")


def summarize(values: typing.Sequence[float]) -> Summary:
    """Summarise a non-empty sample."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarise an empty sample")
    return Summary(
        count=len(data),
        mean=statistics.fmean(data),
        median=statistics.median(data),
        minimum=min(data),
        maximum=max(data),
        stdev=statistics.stdev(data) if len(data) > 1 else 0.0,
    )


def percentile(values: typing.Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile, ``fraction`` in [0, 1]."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of [0,1]: {fraction}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    # a + w*(b - a) is exact when a == b, unlike a*(1-w) + b*w.
    return ordered[low] + weight * (ordered[high] - ordered[low])
