"""Discrete-event simulation kernel.

This package provides the substrate on which the PeerHood middleware runs.
The thesis' implementation used POSIX threads on real devices; here every
"thread" (inquiry loop, advertise loop, monitor loop, bridge main loop) is a
:class:`~repro.sim.process.Process` driven by a deterministic event heap, so
experiments are reproducible and can be run thousands of times per second.

Public surface::

    from repro.sim import Simulator

    sim = Simulator(seed=7)

    def worker(sim):
        yield sim.timeout(5.0)
        return "done"

    proc = sim.spawn(worker(sim), name="worker")
    sim.run()
    assert proc.value == "done"
"""

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventAlreadyTriggered,
    Interrupt,
    SimulationError,
    Timeout,
)
from repro.sim.kernel import ScheduledCall, Simulator, StopSimulation
from repro.sim.process import Process
from repro.sim.resources import Lock, Resource, Store
from repro.sim.rng import RandomStream

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "Lock",
    "Process",
    "RandomStream",
    "Resource",
    "ScheduledCall",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "Timeout",
]
