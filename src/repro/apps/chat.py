"""A small mesh chat: the §6.2 social-networking application.

Every participant registers a ``chat.inbox`` service and sends messages to
any device in its DeviceStorage — direct neighbours or multi-hop contacts
reached through bridges, transparently.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.connection import PeerHoodConnection
from repro.core.errors import PeerHoodError
from repro.core.node import PeerHoodNode
from repro.radio.channel import ConnectFault, OutOfRange

#: Approximate size of one chat message on the wire.
CHAT_MESSAGE_SIZE_BYTES = 160


@dataclasses.dataclass(frozen=True)
class ChatMessage:
    """One delivered chat message."""

    sender: str
    text: str
    received_at: float


class ChatPeer:
    """A chat participant: inbox service + send helper."""

    SERVICE_NAME = "chat.inbox"

    def __init__(self, node: PeerHoodNode):
        self.node = node
        self.sim = node.sim
        self.inbox: list[ChatMessage] = []
        node.library.register_service(self.SERVICE_NAME, self._on_connection)

    def _on_connection(self, connection: PeerHoodConnection):
        def serve(connection=connection):
            while True:
                try:
                    payload = yield from connection.read()
                except PeerHoodError:
                    return
                self.inbox.append(ChatMessage(
                    sender=payload["from"],
                    text=payload["text"],
                    received_at=self.sim.now))
        return serve()

    def reachable_peers(self) -> list[str]:
        """Addresses of devices currently advertising a chat inbox."""
        return [device.address
                for device, service in
                self.node.library.get_service_list(self.SERVICE_NAME)]

    def send(self, peer_address: str, text: str,
             retries: int | None = None) -> typing.Generator:
        """Process generator: deliver one message; returns True on success.

        Opens a connection per message (chat sessions in the thesis' demo
        apps are short-lived) and closes it after sending.
        """
        try:
            connection = yield from self.node.library.connect(
                peer_address, self.SERVICE_NAME,
                retries=retries if retries is not None else
                self.node.config.connect_retries)
        except (ConnectFault, OutOfRange, PeerHoodError):
            return False
        connection.write({"from": self.node.node_id, "text": text},
                         CHAT_MESSAGE_SIZE_BYTES)
        # Let the frame clear the chain before closing.
        yield self.sim.timeout(1.0)
        connection.close("chat message sent")
        return True
