"""Unit tests for counters, traces and statistics."""

import math

import pytest

from repro.metrics import EventTrace, TrafficMeter, summarize
from repro.metrics.stats import percentile, t_critical_95
from repro.metrics.tables import format_table, render_csv


# ----------------------------------------------------------------------
# TrafficMeter
# ----------------------------------------------------------------------
def test_meter_counts_messages_and_bytes():
    meter = TrafficMeter()
    meter.count("a", "data", 100)
    meter.count("a", "data", 50)
    meter.count("b", "discovery", 10)
    assert meter.messages() == 3
    assert meter.bytes() == 160
    assert meter.messages(node="a") == 2
    assert meter.bytes(node="a", category="data") == 150
    assert meter.messages(category="discovery") == 1


def test_meter_multi_message_count():
    meter = TrafficMeter()
    meter.count("a", "discovery", 96, messages=4)
    assert meter.messages() == 4
    assert meter.bytes() == 96


def test_meter_rejects_negative_bytes():
    meter = TrafficMeter()
    with pytest.raises(ValueError):
        meter.count("a", "data", -1)


def test_meter_nodes_categories_and_per_node():
    meter = TrafficMeter()
    meter.count("b", "data", 10)
    meter.count("a", "control", 5)
    assert meter.nodes() == ["a", "b"]
    assert meter.categories() == ["control", "data"]
    assert meter.per_node() == {"a": 1, "b": 1}


def test_meter_reset():
    meter = TrafficMeter()
    meter.count("a", "data", 10)
    meter.reset()
    assert meter.messages() == 0


# ----------------------------------------------------------------------
# EventTrace
# ----------------------------------------------------------------------
def test_trace_record_and_filter():
    trace = EventTrace()
    trace.record(1.0, "a", "connected", peer="b")
    trace.record(2.0, "b", "connected", peer="a")
    trace.record(3.0, "a", "handover")
    assert len(trace) == 3
    assert len(trace.events(kind="connected")) == 2
    assert len(trace.events(node="a")) == 2
    assert len(trace.events(kind="connected", node="a")) == 1


def test_trace_first_last_count_times():
    trace = EventTrace()
    for t in (1.0, 5.0, 9.0):
        trace.record(t, "x", "tick")
    assert trace.first("tick").time == 1.0
    assert trace.last("tick").time == 9.0
    assert trace.count("tick") == 3
    assert trace.times("tick") == [1.0, 5.0, 9.0]
    assert trace.first("missing") is None
    assert trace.last("missing") is None


def test_trace_detail_is_captured():
    trace = EventTrace()
    event = trace.record(1.0, "n", "kind", value=42)
    assert event.detail == {"value": 42}


def test_trace_clear_and_iter():
    trace = EventTrace()
    trace.record(1.0, "a", "x")
    assert len(list(trace)) == 1
    trace.clear()
    assert len(trace) == 0


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
def test_summarize_basic():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == 2.5
    assert summary.median == 2.5
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0
    assert summary.stdev > 0


def test_summarize_single_value_has_zero_stdev():
    summary = summarize([5.0])
    assert summary.stdev == 0.0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_summary_str_is_readable():
    text = str(summarize([1.0, 2.0]))
    assert "mean=" in text and "n=2" in text


def test_percentile_interpolates():
    values = [0.0, 10.0]
    assert percentile(values, 0.0) == 0.0
    assert percentile(values, 1.0) == 10.0
    assert percentile(values, 0.5) == 5.0


def test_percentile_median_of_odd_sample():
    assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


# ----------------------------------------------------------------------
# ci95
# ----------------------------------------------------------------------
def test_ci95_known_sample():
    # sd([1..5]) = sqrt(2.5), t(4, 95%) = 2.776
    summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    expected = 2.776 * math.sqrt(2.5) / math.sqrt(5)
    assert summary.ci95 == pytest.approx(expected, rel=1e-9)
    assert 0 < summary.ci95 < summary.maximum - summary.minimum


def test_ci95_single_observation_is_zero():
    assert summarize([7.0]).ci95 == 0.0


def test_ci95_constant_sample_is_zero():
    assert summarize([3.0, 3.0, 3.0, 3.0]).ci95 == 0.0


def test_ci95_shrinks_with_sample_size():
    narrow = summarize([1.0, 2.0] * 20)
    wide = summarize([1.0, 2.0] * 2)
    assert narrow.ci95 < wide.ci95


def test_t_critical_table_and_tail():
    assert t_critical_95(1) == pytest.approx(12.706)
    assert t_critical_95(30) == pytest.approx(2.042)
    # beyond the table: monotone toward the 1.96 normal quantile
    assert 1.96 < t_critical_95(120) < t_critical_95(40) < 2.042
    with pytest.raises(ValueError):
        t_critical_95(0)


def test_ci95_in_str():
    assert "ci95=" in str(summarize([1.0, 2.0]))


# ----------------------------------------------------------------------
# tables
# ----------------------------------------------------------------------
def test_format_table_aligns_columns():
    text = format_table("T", ["name", "v"], [["a", 1], ["long-name", 22]])
    lines = text.strip().split("\n")
    assert lines[0] == "== T =="
    # The name column is padded to its widest cell ("long-name"), and
    # the numeric v column right-aligns: both value cells END at the
    # same column.
    row_a, row_long = lines[-2], lines[-1]
    assert len(row_a) == len(row_long)
    assert row_a.endswith(" 1")
    assert row_long.endswith("22")
    assert row_a.index("1") > len("long-name")


def test_format_table_right_aligns_numeric_columns_only():
    text = format_table("T", ["metric", "n"],
                        [["delivery", 7], ["latency_mean", 123]])
    rows = text.strip().split("\n")[-2:]
    # Numeric header + cells are right-justified against the widest.
    header = text.strip().split("\n")[1]
    assert header.endswith("  n")
    assert rows[0].endswith("    7")
    assert rows[1].endswith("  123")
    # The text column stays left-aligned.
    assert rows[0].startswith("delivery ")


def test_format_table_renders_none_as_em_dash():
    text = format_table("T", ["metric", "value"],
                        [["latency", None], ["ratio", 0.5]])
    assert "None" not in text
    assert "—" in text
    # A None-bearing column with at least one number still counts as
    # numeric and right-aligns.
    rows = text.strip().split("\n")[-2:]
    assert rows[0].endswith("    —")
    assert rows[1].endswith("  0.5")


def test_format_table_mixed_column_stays_left_aligned():
    text = format_table("T", ["k", "v"], [["a", "fast"], ["b", 3]])
    rows = text.strip().split("\n")[-2:]
    # One string cell makes the column textual: left alignment.
    assert rows[1].startswith("b  3")


def test_format_table_tolerates_short_rows():
    # A row narrower than the header list renders ragged, as it
    # always did — the alignment pass must not index past its end.
    text = format_table("T", ["a", "b"], [["x"], ["y", 2]])
    assert "x" in text and "2" in text


def test_render_csv_quotes_and_none():
    text = render_csv(["a", "b"], [["x,y", None], [1, 2.5]])
    assert text == 'a,b\n"x,y",\n1,2.5\n'
