"""Bundled experiment specs: the campaigns shipped with the repo.

``demo_sweep`` is the reference campaign (the CLI quickstart and the
``make sweep`` target); the others back the refactored ``bench_e*``
scripts, which execute them through the runner instead of hand-rolled
loops.  Specs are plain data — copy one and edit the axes to make a
new campaign, or register your own via :func:`register_spec`.
"""

from __future__ import annotations

from repro.experiments.spec import ExperimentSpec

_SPECS: dict[str, ExperimentSpec] = {}


def register_spec(spec: ExperimentSpec) -> ExperimentSpec:
    """Register a spec under its own name; duplicates are an error."""
    if spec.name in _SPECS:
        raise ValueError(f"spec {spec.name!r} already registered")
    _SPECS[spec.name] = spec
    return spec


def spec_names() -> list[str]:
    """Registered spec names, sorted."""
    return sorted(_SPECS)


def get_spec(name: str) -> ExperimentSpec:
    """Look up a bundled spec; ``KeyError`` with the valid names."""
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(f"unknown spec {name!r}; "
                       f"bundled: {spec_names()}") from None


#: The E2/E8-style discovery-and-handover sweep at multiple N:
#: 2 scenarios × 2 node counts × 2 radio mixes × 3 repeats = 24 runs.
register_spec(ExperimentSpec(
    name="demo_sweep",
    workload="discovery_handover",
    scenarios=("random_disc", "dense_plaza"),
    axes={
        "count": (16, 28),
        "technologies": (("bluetooth",), ("bluetooth", "wlan")),
    },
    repeats=3,
    master_seed=7,
    settings={"settle_s": 180.0, "messages": 20},
    description=("discovery convergence + a monitored stream, swept "
                 "over topology, N and radio mix")))

#: E4 (Fig. 3.10): change-notification delay vs jump count.
register_spec(ExperimentSpec(
    name="delay_sweep",
    workload="line_delay",
    scenarios=("line_topology",),
    axes={"count": (2, 3, 4)},
    repeats=3,
    master_seed=40,
    settings={"settle_s": 240.0},
    description="max change-notification delay along settled chains"))

#: E5b: discovery-scheme awareness on random discs.
register_spec(ExperimentSpec(
    name="coverage_sweep",
    workload="awareness_schemes",
    scenarios=("random_disc",),
    axes={"count": (10,), "mobility_class": ("static",)},
    repeats=3,
    master_seed=50,
    settings={"settle_s": 300.0},
    description="awareness fraction per discovery scheme (§3.1)"))

#: E8 (Fig. 5.8): the quality-decay handover campaign.
register_spec(ExperimentSpec(
    name="handover_decay",
    workload="handover_decay",
    scenarios=("fig_5_8_handover",),
    repeats=8,
    master_seed=80,
    settings={"settle_s": 200.0, "messages": 50},
    description="decay-driven routing handover, repeated Fig. 5.8 runs"))

#: The contact-trace scenario family: record pairwise LinkUp/LinkDown
#: streams across density regimes, purely event-driven (zero polling).
register_spec(ExperimentSpec(
    name="contact_sweep",
    workload="contact_trace",
    scenarios=("sparse_highway", "dense_plaza"),
    axes={"count": (12, 24), "technologies": (("wlan",),)},
    repeats=2,
    master_seed=90,
    settings={"duration_s": 120.0, "tech": "wlan"},
    description=("pairwise contact traces from the analytic crossing "
                 "solver, recorded without polling")))

#: The store-carry-forward campaign: every routing baseline on the DTN
#: scenario family, paired per run (same seed = same mobility and the
#: same injection schedule for each router).  The bench gates "epidemic
#: beats direct-delivery on delivery ratio" on this spec.
register_spec(ExperimentSpec(
    name="dtn_sweep",
    workload="dtn",
    scenarios=("commuter_corridor", "island_hopping_ferry"),
    axes={"count": (8, 14)},
    repeats=2,
    master_seed=130,
    settings={"duration_s": 480.0, "messages": 14, "ttl_s": 300.0,
              "routers": ("direct", "epidemic", "spray"),
              "spray_copies": 6},
    description=("DTN delivery ratio/latency/overhead: direct vs "
                 "epidemic vs spray-and-wait on partitioned worlds")))

#: The bandwidth-limited campaign: routers compared where contact
#: *duration* prices the byte budget.  Contacts run at a constrained
#: 24 kB/s effective rate moving 200 kB bundles (the §6 picture
#: payload), so each bus dwell carries only a handful of bundles per
#: villager — the regime where epidemic flooding wastes window bytes
#: and PRoPHET's predictability ranking pays.  The capacity bench
#: gates "PRoPHET ≥ epidemic on delivery ratio" on every run of this
#: grid.
register_spec(ExperimentSpec(
    name="bandwidth_sweep",
    workload="dtn_bandwidth",
    scenarios=("rural_bus_dtn",),
    axes={"count": (9, 12), "dwell_s": (20.0, 30.0)},
    repeats=2,
    master_seed=170,
    settings={"duration_s": 600.0, "messages": 24, "ttl_s": 480.0,
              "size_bytes": 200_000, "rate_Bps": 24_000.0,
              "routers": ("epidemic", "spray", "prophet"),
              "spray_copies": 6},
    description=("bandwidth-limited DTN delivery: epidemic vs spray vs "
                 "PRoPHET under per-contact byte budgets")))

#: The fault-tolerance campaign: the hostile corridor swept over the
#: crash-reboot rate with the remaining fault models at their hostile
#: defaults.  Traffic is uniform (the spared terminals would understate
#: the damage), so the axis measures how gracefully each routing
#: policy's delivery degrades as custodians die mid-carry.  The fault
#: bench gates zero-rate equivalence, monotone degradation and
#: "redundancy beats direct under crashes" on this spec.
register_spec(ExperimentSpec(
    name="fault_sweep",
    workload="dtn_faults",
    scenarios=("hostile_corridor",),
    axes={"crash_rate": (0.0, 0.2, 0.5)},
    repeats=3,
    master_seed=210,
    settings={"duration_s": 480.0, "messages": 14, "ttl_s": 300.0,
              "routers": ("direct", "spray", "prophet"),
              "spray_copies": 6, "pattern": "uniform"},
    description=("fault-injected DTN delivery: direct vs spray vs "
                 "PRoPHET as the crash-reboot rate rises")))

#: The lossy-PHY campaign: the crowded festival swept over the
#: shadowing sigma with collision/capture on.  The sigma axis measures
#: how epidemic's flooding advantage erodes when fading eats copies
#: and its own parallel sessions contend at shared receivers (the
#: zero-sigma column isolates pure collision loss).  The PHY params
#: flow through ``cache_key`` like any other scenario axis, so the
#: campaign cache distinguishes sigma values; the PHY bench's
#: zero-rate identity leg instead runs ``dtn_phy`` with *all* knobs at
#: zero (no plane installed) and byte-compares it to ``dtn_bandwidth``.
register_spec(ExperimentSpec(
    name="phy_sweep",
    workload="dtn_phy",
    scenarios=("crowded_festival",),
    axes={"shadowing_sigma_db": (0.0, 4.0, 8.0),
          "phy_collisions": (1,)},
    repeats=2,
    master_seed=250,
    settings={"duration_s": 480.0, "messages": 10, "ttl_s": 300.0,
              "size_bytes": 60_000, "rate_Bps": 24_000.0,
              "routers": ("epidemic", "spray"), "spray_copies": 6},
    description=("lossy-PHY DTN delivery: epidemic vs spray as "
                 "shadowing and collisions erode the radio channel")))

#: The production-scale gate: grid vs pairwise discovery at growing N.
register_spec(ExperimentSpec(
    name="scale_sweep",
    workload="scale_neighbors",
    scenarios=("dense_plaza",),
    axes={"count": (100, 300, 500)},
    repeats=1,
    master_seed=11,
    settings={"rounds": 3, "step_s": 15.0},
    description="spatial-grid vs O(N²) discovery rounds, constant density"))

#: The vectorized-kernel gate: batch engine vs scalar grid at large N.
register_spec(ExperimentSpec(
    name="vector_sweep",
    workload="vectorized_neighbors",
    scenarios=("dense_plaza",),
    axes={"count": (500, 2000)},
    repeats=1,
    master_seed=23,
    settings={"rounds": 3, "step_s": 15.0},
    description=("numpy batch geometry vs per-node grid queries, "
                 "constant density, with batched crossing solves")))
