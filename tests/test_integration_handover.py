"""Integration tests: the HandoverThread on the paper's Ch. 5 scenarios."""

import pytest

from repro.core.config import HandoverConfig
from repro.core.errors import ConnectionClosedError
from repro.core.handover import HandoverState, HandoverThread
from repro.mobility import CorridorWalk
from repro.radio.technologies import BLUETOOTH
from repro.scenarios import Scenario, fig_5_8_handover

SETTLE_S = 180.0


def print_service(node):
    """The Fig. 5.8 'print to screen' server; returns the printed list."""
    printed = []

    def handler(connection):
        def serve(connection=connection):
            while True:
                try:
                    message = yield from connection.read()
                except ConnectionClosedError:
                    return
                printed.append((node.sim.now, message))
        return serve()

    node.library.register_service("print", handler)
    return printed


def run_fig_5_8(seed, message_count=50, decay_initial=240,
                config=None, sending=True):
    """The paper's handover simulation; returns rich results."""
    scenario = fig_5_8_handover(seed=seed)
    server, client, bridge = (scenario.node("A"), scenario.node("B"),
                              scenario.node("C"))
    printed = print_service(server)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("B", "A")

    def client_run(sim):
        connection = yield from client.library.connect(
            server.address, "print", retries=6)
        # The paper's fault injection: decay the A-B quality by 1 per
        # second from the initial value.
        scenario.world.install_linear_decay(
            "A", "B", BLUETOOTH, initial_quality=decay_initial)
        connection.set_sending(sending)
        thread = HandoverThread(client.library, connection,
                                config=config).start()
        for index in range(message_count):
            connection.write(f"good morning! {index}", 64)
            yield sim.timeout(1.0)
        yield sim.timeout(5.0)
        thread.stop()
        return connection, thread

    connection, thread = scenario.run_process(client_run(scenario.sim))
    return scenario, connection, thread, printed


def test_fig_5_8_handover_fires_and_messages_survive():
    scenario, connection, thread, printed = run_fig_5_8(seed=21)
    assert thread.handovers_done >= 1
    assert connection.handovers >= 1
    # All 50 messages reached the server's screen despite the decay.
    assert len(printed) == 50
    handover = scenario.trace.first("routing-handover")
    assert handover is not None
    assert handover.detail["duration"] > 0


def test_fig_5_8_low_count_rule():
    """Quality crosses 230 and the 4th consecutive low reading triggers."""
    scenario, connection, thread, printed = run_fig_5_8(seed=22)
    handover = scenario.trace.first("routing-handover")
    lows = [e for e in scenario.trace.events("signal-low")
            if e.time <= handover.time]
    assert len(lows) >= 4  # low_count must exceed 3 (paper: "bigger than 3")
    assert lows[0].detail["quality"] < 230


def test_fig_5_8_handover_goes_through_bridge_c():
    scenario, connection, thread, printed = run_fig_5_8(seed=23)
    handover = scenario.trace.first("routing-handover")
    bridge_address = scenario.node("C").address
    assert handover.detail["via"] == bridge_address
    # And the relay is actually active on C afterwards.
    assert scenario.node("C").daemon.bridge_service.relayed_frames > 0


def test_fig_5_8_server_sees_reestablishment_not_new_connection():
    """PH_RECONNECT substitutes the server-side transport (§2.3)."""
    scenario, connection, thread, printed = run_fig_5_8(seed=24)
    assert scenario.trace.count("connection-reestablished", node="A") >= 1
    # Only ONE connection was ever accepted for the print service.
    accepted = [e for e in scenario.trace.events("connection-accepted",
                                                 node="A")
                if e.detail["service"] == "print"]
    assert len(accepted) == 1


def test_sending_flag_suppresses_handover():
    """§5.3: no handover while the application is idle (sending False)."""
    scenario, connection, thread, printed = run_fig_5_8(
        seed=25, sending=False)
    assert thread.handovers_done == 0
    assert scenario.trace.count("routing-handover") == 0


def test_handover_threshold_config_is_respected():
    """A lower threshold fires later (more decay needed)."""
    default = run_fig_5_8(seed=26, message_count=90)
    lower = run_fig_5_8(
        seed=26, message_count=90,
        config=HandoverConfig(low_quality_threshold=200))
    default_handover = default[0].trace.first("routing-handover")
    lower_handover = lower[0].trace.first("routing-handover")
    assert default_handover is not None and lower_handover is not None
    # Both scenarios share the seed; the decay start differs only by the
    # connect timing, so compare offsets from the decay installation.
    assert lower_handover.time > default_handover.time


def test_handover_without_alternative_route_reports_unavailable():
    """No bridge knows the server: routing handover is impossible and no
    other provider exists, so reconnection is unavailable (§5.2.2)."""
    scenario = Scenario(seed=27)
    server = scenario.add_node("server", position=(0, 0),
                               mobility_class="static")
    client = scenario.add_node("client", position=(5, 0))
    print_service(server)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server")

    def run(sim):
        connection = yield from client.library.connect(
            server.address, "print", retries=6)
        scenario.world.install_linear_decay(
            "client", "server", BLUETOOTH, initial_quality=235)
        thread = HandoverThread(client.library, connection).start()
        yield sim.timeout(40.0)
        thread.stop()
        return thread

    thread = scenario.run_process(run(scenario.sim))
    assert thread.handovers_done == 0
    assert scenario.trace.count("reconnection-unavailable") >= 1


def test_service_reconnection_falls_back_to_second_provider():
    """§5.2.2: connect to another device offering the same service.

    Geometry forces the fallback: server2 is never adjacent to server1,
    so no routing handover can keep the original connection alive.
    """
    scenario = Scenario(seed=28)
    server1 = scenario.add_node("server1", position=(0, 0),
                                mobility_class="static")
    client = scenario.add_node("client", position=(8, 0))
    server2 = scenario.add_node("server2", position=(16, 0),
                                mobility_class="static")
    print_service(server1)
    printed2 = print_service(server2)
    scenario.start_all()
    scenario.run(until=SETTLE_S)
    assert scenario.wait_for_route("client", "server1")
    assert scenario.wait_for_route("client", "server2")
    reconnected = []

    def on_reconnected(new_connection):
        reconnected.append(new_connection)
        new_connection.write("restarted-task", 64)
        return None

    def run(sim):
        connection = yield from client.library.connect(
            server1.address, "print", retries=6)
        # Drive the client-server1 quality to the floor; server2 cannot
        # bridge (16 m from server1), so only §5.2.2 remains.
        scenario.world.install_linear_decay(
            "client", "server1", BLUETOOTH, initial_quality=229,
            decay_per_second=5.0)
        thread = HandoverThread(
            client.library, connection,
            config=HandoverConfig(max_handover_attempts=0),
            on_service_reconnected=on_reconnected).start()
        yield sim.timeout(90.0)
        thread.stop()
        return connection

    old_connection = scenario.run_process(run(scenario.sim))
    scenario.run(until=scenario.sim.now + 10)
    assert scenario.trace.count("service-reconnection") >= 1
    assert reconnected, "application never got the replacement connection"
    assert not old_connection.is_open
    assert any(m == "restarted-task" for _, m in printed2)


def test_walking_speed_race_paper_conclusion():
    """§5.2.1: at walking speed, Bluetooth's connect time usually loses
    the race — the connection dies before the second route is up."""
    losses = 0
    trials = 8
    for seed in range(trials):
        scenario = Scenario(seed=100 + seed)
        server = scenario.add_node("A", position=(0, 0),
                                   mobility_class="static")
        bridge = scenario.add_node("C", position=(0, 6),
                                   mobility_class="static")
        walker = scenario.add_node(
            "B",
            mobility=CorridorWalk((6.0, 0.0), heading_deg=0.0,
                                  depart_time=SETTLE_S + 20.0),
            mobility_class="dynamic")
        printed = print_service(server)
        scenario.start_all()
        scenario.run(until=SETTLE_S)
        if not scenario.wait_for_route("B", "A"):
            continue

        def run(sim):
            connection = yield from walker.library.connect(
                server.address, "print", retries=4)
            thread = HandoverThread(walker.library, connection).start()
            for index in range(60):
                if not connection.is_open:
                    break
                connection.write(f"msg {index}", 64)
                yield sim.timeout(1.0)
            thread.stop()
            return connection

        connection = scenario.run_process(run(scenario.sim))
        # Walking at 1.4 m/s, B leaves A's 10 m radius ~7 s after depart
        # while a Bluetooth handover needs ~1.5-9 s establishment plus
        # monitor lag: the handover usually fails or arrives too late.
        survived = connection.is_open and connection.handovers >= 1
        if not survived:
            losses += 1
    assert losses >= trials // 2, (
        f"expected the walking-speed race to be mostly lost, "
        f"lost only {losses}/{trials}")


def test_handover_thread_states_progress():
    scenario, connection, thread, printed = run_fig_5_8(seed=29)
    assert thread.state is HandoverState.STOPPED
    assert thread.handovers_done >= 1
