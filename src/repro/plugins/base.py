"""AbstractPlugin: the inquiry thread shared by every technology.

The loop implements Fig. 3.12 with the §3.5 redesign: all information
fetching happens first into a local list, and the shared DeviceStorage is
updated in one atomic phase afterwards.

One inquiry cycle:

1. mark ourselves inquiring (Bluetooth becomes undiscoverable, §3.4.2) and
   scan for ``inquiry_duration_s``, sampling the neighbourhood at several
   instants during the scan;
2. SDP-check each response for the PeerHood tag (§2.3);
3. for each PeerHood-capable response: fetch device / prototype / service /
   neighbourhood information (Fig. 3.7) if it is new or due a re-check
   (§3.5's service-checking interval), otherwise just refresh its
   timestamp and measured link quality;
4. update phase: fold fetches into the DeviceStorage and run
   AnalyzeNeighbourhoodDevices (Fig. 3.13) on each snapshot;
5. age the silent devices ("make older") and evict the stale;
6. idle for ``inquiry_interval_s`` and repeat.

A per-node random phase offset desynchronises the loops — without it every
Bluetooth device would scan in lockstep and, being mutually undiscoverable
while scanning, never find each other (the paper's random discovery misses,
§3.4.2, fall out of this naturally).
"""

from __future__ import annotations

import typing

from repro.core.protocol import DiscoveryResponse
from repro.radio.technologies import Technology

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import PeerHoodNode

#: Approximate size of one fetch request message, bytes.
_FETCH_REQUEST_BYTES = 24


class AbstractPlugin:
    """Discovery loop for one technology on one node."""

    #: Overridden by subclasses.
    tech: Technology

    def __init__(self, node: "PeerHoodNode", tech: Technology):
        self.node = node
        self.tech = tech
        self.sim = node.sim
        self.world = node.fabric.world
        self.fabric = node.fabric
        self.rng = node.sim.rng(f"plugin/{node.node_id}/{tech.name}")
        self.loops_completed = 0
        self.fetches_attempted = 0
        self.fetches_failed = 0
        self._process = None

    @property
    def node_id(self) -> str:
        return self.node.node_id

    @property
    def storage(self):
        return self.node.daemon.storage

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the inquiry thread (idempotent while running)."""
        if self._process is not None and self._process.is_alive:
            return
        self._process = self.sim.spawn(
            self._run(), name=f"inquiry:{self.node_id}:{self.tech.name}")

    def _run(self) -> typing.Generator:
        # Random phase offset to desynchronise the fleet's scan windows.
        yield self.sim.timeout(
            self.rng.uniform(0.0, self.tech.search_cycle_s))
        while self.node.daemon.running:
            yield from self._one_loop()
            self.loops_completed += 1
            # Jittered idle: real inquiry timing is randomised, which keeps
            # two devices' scan windows from colliding forever (§3.4.2's
            # random misses stay random instead of becoming systematic).
            yield self.sim.timeout(
                self.tech.inquiry_interval_s * self.rng.uniform(0.7, 1.3))

    # ------------------------------------------------------------------
    # one Fig. 3.12 cycle
    # ------------------------------------------------------------------
    def _one_loop(self) -> typing.Generator:
        responses = yield from self._scan()
        fetched: list[tuple[str, DiscoveryResponse, int]] = []
        refreshed: list[tuple[str, int]] = []
        responded_addresses: list[str] = []
        for other_id in responses:
            if not self.fabric.is_peerhood(other_id):
                continue  # SDP query found no PeerHood tag (§2.3)
            other_node = self.fabric.node(other_id)
            assert other_node is not None
            address = other_node.address
            quality = self.world.link_quality(
                self.node_id, other_id, self.tech)
            if quality <= 0:
                continue  # drifted out of range since the scan sample
            responded_addresses.append(address)
            interval = self.node.config.service_check_interval_loops
            if self.storage.needs_refetch(address, interval):
                response = yield from self._fetch_information(other_id)
                if response is not None:
                    measured = self.world.link_quality(
                        self.node_id, other_id, self.tech)
                    measured = round(measured * response.load_factor)
                    fetched.append((address, response, measured,
                                    response.load_factor))
                # A failed fetch still counts as a response: the device is
                # there, we just could not talk to it this loop.
            else:
                refreshed.append((address, quality))
        self._update_storage(fetched, refreshed, responded_addresses)

    def _scan(self) -> typing.Generator:
        """Run one inquiry scan; returns the node ids that responded.

        A peer is heard when it is in range at the end of the scan and it
        had a long-enough discoverable gap during the scan window —
        Bluetooth's asymmetric discovery means a peer that spent our whole
        scan running its own inquiry is missed (§3.4.2).
        """
        scan_start = self.sim.now
        self.world.mark_inquiring(self.node_id, self.tech, True)
        try:
            yield self.sim.timeout(self.tech.inquiry_duration_s)
        finally:
            self.world.mark_inquiring(self.node_id, self.tech, False)
        scan_end = self.sim.now
        # Grid-backed neighbor enumeration: only the nodes in the 3x3
        # cells around us are examined, not the whole world (O(neighbors)
        # per scan instead of O(N); see radio/spatial.py).
        return [other_id
                for other_id in self.world.neighbors(self.node_id, self.tech)
                if self.world.heard_during_scan(other_id, self.tech,
                                                scan_start, scan_end)]

    def _fetch_information(
            self, other_id: str,
    ) -> typing.Generator:
        """Fetch the Fig. 3.7 information bundle over short connections.

        Returns the :class:`DiscoveryResponse` or None on failure (fault,
        peer out of range, or peer daemon down).
        """
        self.fetches_attempted += 1
        fetch_count = 1 if self.node.config.unified_fetch else 4
        for _ in range(fetch_count):
            yield self.sim.timeout(self.tech.fetch_time_s)
            if not self.world.in_range(self.node_id, other_id, self.tech):
                self.fetches_failed += 1
                return None
            if self.rng.bernoulli(self.tech.connect_fault_probability):
                self.fetches_failed += 1
                return None
        other_node = self.fabric.node(other_id)
        if other_node is None:
            self.fetches_failed += 1
            return None
        response = other_node.daemon.handle_discovery_fetch(self.tech)
        if response is None:
            self.fetches_failed += 1
            return None
        self.fabric.meter.count(self.node_id, "discovery",
                                _FETCH_REQUEST_BYTES * fetch_count,
                                messages=fetch_count)
        self.fabric.meter.count(other_id, "discovery", response.wire_size(),
                                messages=fetch_count)
        return response

    def _update_storage(
            self,
            fetched: list[tuple[str, DiscoveryResponse, int, float]],
            refreshed: list[tuple[str, int]],
            responded_addresses: list[str],
    ) -> None:
        """Atomic update phase (§3.5's recommended design)."""
        now = self.sim.now
        for address, response, quality, load_factor in fetched:
            reporter = self.storage.update_direct(
                identity=response.identity,
                prototype=response.prototype,
                quality=quality,
                services=response.services,
                now=now,
                neighbourhood=response.neighbourhood,
                load_factor=load_factor,
            )
            self.storage.analyze_neighbourhood(
                reporter, response.neighbourhood, now)
        for address, quality in refreshed:
            self.storage.mark_responded(address, quality, now)
        evicted = self.storage.make_older(responded_addresses)
        self.fabric.trace.record(
            now, self.node_id, "discovery-loop",
            tech=self.tech.name,
            responses=len(responded_addresses),
            fetched=len(fetched),
            evicted=evicted,
            known=len(self.storage))
