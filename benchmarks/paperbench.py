"""Shared helpers for the paper-reproduction benchmarks.

Each ``bench_e*.py`` file regenerates one evaluation artifact of the
thesis (see DESIGN.md's experiment index).  The pattern: a pure
``run_*`` function produces the figures, ``benchmark.pedantic`` times one
full run, the test asserts the paper's *shape*, and the reproduced rows
are printed (visible with ``pytest benchmarks/ --benchmark-only -s``) and
attached to ``benchmark.extra_info``.
"""

from __future__ import annotations

import typing


def print_table(title: str, headers: typing.Sequence[str],
                rows: typing.Sequence[typing.Sequence[object]]) -> None:
    """Print an aligned reproduction table."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(cell.ljust(widths[i])
                        for i, cell in enumerate(row)))


def fraction(numerator: int, denominator: int) -> float:
    """Safe ratio."""
    if denominator == 0:
        return 0.0
    return numerator / denominator
