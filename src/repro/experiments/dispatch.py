"""Dispatch backends: *where* grid cells execute, behind one interface.

The runner and the campaign layer never talk to executors directly;
they hand a picklable function + payload list to a
:class:`DispatchBackend` and consume results lazily, **in submission
order**.  That single contract carries every determinism guarantee —
output depends only on the payloads, never on the backend — and sizes
the seam for remote fan-out (an SSH/cluster backend slots in by
implementing one generator method; nothing above the seam changes).

Two backends ship today:

* :class:`SerialBackend` — inline, zero processes, easiest to debug;
  results stream one cell at a time so a campaign can journal each
  commit before the next cell starts (what makes a SIGTERM mid-sweep
  recoverable at cell granularity).
* :class:`ProcessPoolBackend` — ``ProcessPoolExecutor`` fan-out for
  CPU-bound pure-Python simulation; ``Executor.map`` preserves input
  order, so results stream back in grid order at any worker count.

Both stream lazily: consuming k results then abandoning the iterator
(crash, test harness) leaves exactly the consumed cells observable.
"""

from __future__ import annotations

import concurrent.futures
import typing


class DispatchBackend:
    """How cells run.  Subclasses implement :meth:`dispatch` only.

    Contract: ``dispatch(fn, payloads)`` lazily yields
    ``fn(payload)`` for each payload **in input order**.  ``fn`` and
    the payloads must be picklable for out-of-process backends
    (module-level functions and plain dicts — what the runner ships).
    Exceptions raised by ``fn`` propagate to the consumer; backends
    never swallow or reorder.
    """

    name = "abstract"

    def dispatch(self, fn: typing.Callable[[dict], typing.Any],
                 payloads: typing.Sequence[dict]
                 ) -> typing.Iterator[typing.Any]:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable form for CLI banners."""
        return self.name


class SerialBackend(DispatchBackend):
    """Run every cell inline in the calling process."""

    name = "serial"

    def dispatch(self, fn, payloads):
        for payload in payloads:
            yield fn(payload)


class ProcessPoolBackend(DispatchBackend):
    """Fan cells out over a local ``ProcessPoolExecutor``."""

    name = "process"

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def dispatch(self, fn, payloads):
        if not payloads:
            return
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers) as pool:
            yield from pool.map(fn, payloads)

    def describe(self) -> str:
        return f"{self.name}({self.workers} workers)"


#: name → factory taking the worker count (serial ignores it).
BACKENDS: dict[str, typing.Callable[[int], DispatchBackend]] = {
    "serial": lambda workers: SerialBackend(),
    "process": lambda workers: ProcessPoolBackend(workers),
}


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(BACKENDS)


def make_backend(name: str | None = None,
                 workers: int = 1) -> DispatchBackend:
    """Build a backend by name; ``None`` picks by worker count.

    ``workers == 1`` defaults to :class:`SerialBackend` (no pool
    overhead, same bytes), anything above to
    :class:`ProcessPoolBackend`.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if name is None:
        name = "serial" if workers == 1 else "process"
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise KeyError(f"unknown backend {name!r}; "
                       f"registered: {backend_names()}") from None
    return factory(workers)
