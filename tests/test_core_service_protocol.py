"""Unit tests for service records/registry and the wire protocol."""

import pytest

from repro.core.device import DeviceIdentity, MobilityClass
from repro.core.protocol import (
    Ack,
    BridgeRequest,
    ClientParams,
    Command,
    ConnectRequest,
    DataFrame,
    DisconnectFrame,
    DiscoveryResponse,
    NeighbourEntry,
    ReconnectRequest,
)
from repro.core.service import (
    BRIDGE_SERVICE_NAME,
    ServiceRecord,
    ServiceRegistry,
)


# ----------------------------------------------------------------------
# services
# ----------------------------------------------------------------------
def test_service_record_validation():
    with pytest.raises(ValueError):
        ServiceRecord(name="")
    with pytest.raises(ValueError):
        ServiceRecord(name="x", port=-1)


def test_registry_register_and_lookup():
    registry = ServiceRegistry()
    record = registry.register(ServiceRecord(name="echo", port=5000))
    assert registry.lookup("echo") is record
    assert "echo" in registry
    assert len(registry) == 1


def test_registry_auto_assigns_ports():
    registry = ServiceRegistry()
    first = registry.register(ServiceRecord(name="a"))
    second = registry.register(ServiceRecord(name="b"))
    assert first.port != 0
    assert second.port != 0
    assert first.port != second.port


def test_registry_rejects_duplicates():
    registry = ServiceRegistry()
    registry.register(ServiceRecord(name="echo"))
    with pytest.raises(ValueError):
        registry.register(ServiceRecord(name="echo"))


def test_registry_unregister():
    registry = ServiceRegistry()
    registry.register(ServiceRecord(name="echo"))
    registry.unregister("echo")
    assert registry.lookup("echo") is None
    with pytest.raises(KeyError):
        registry.unregister("echo")


def test_registry_hidden_services_not_visible():
    """The bridge service is registered but not advertised (§4.0)."""
    registry = ServiceRegistry()
    registry.register(ServiceRecord(name=BRIDGE_SERVICE_NAME, port=1,
                                    hidden=True))
    registry.register(ServiceRecord(name="public"))
    visible_names = [s.name for s in registry.visible_services()]
    assert visible_names == ["public"]
    all_names = sorted(s.name for s in registry.all_services())
    assert all_names == sorted([BRIDGE_SERVICE_NAME, "public"])


# ----------------------------------------------------------------------
# protocol frames
# ----------------------------------------------------------------------
def make_params():
    return ClientParams(address="aa:bb:cc:dd:ee:ff", name="phone",
                        prototype="bluetooth", reply_service="reply",
                        mobility=MobilityClass.DYNAMIC, pid=7)


def test_connect_request_command_and_size():
    request = ConnectRequest(service_name="echo", connection_id=3,
                             client_params=make_params())
    assert request.command is Command.PH_CONNECT
    assert request.wire_size() > 0


def test_bridge_request_defaults():
    request = BridgeRequest(destination="11:22:33:44:55:66",
                            service_name="echo", connection_id=3,
                            client_params=make_params())
    assert request.command is Command.PH_BRIDGE
    assert request.hop_budget == 8
    assert request.reconnect is False


def test_reconnect_request_command():
    request = ReconnectRequest(connection_id=9, client_params=make_params())
    assert request.command is Command.PH_RECONNECT


def test_ack_command_follows_ok_flag():
    assert Ack(ok=True).command is Command.PH_OK
    assert Ack(ok=False, reason="nope").command is Command.PH_ERROR


def test_data_frame_wire_size_tracks_declared_size():
    small = DataFrame(payload="x", declared_size=10)
    large = DataFrame(payload="x", declared_size=10_000)
    assert large.wire_size() - small.wire_size() == 9_990


def test_data_frame_negative_size_rejected():
    frame = DataFrame(payload="x", declared_size=-1)
    with pytest.raises(ValueError):
        frame.wire_size()


def test_disconnect_frame_command():
    assert DisconnectFrame().command is Command.PH_DISCONNECT


def test_neighbour_entry_wire_size_includes_services():
    bare = NeighbourEntry(address="a", name="n", prototype="bluetooth",
                          mobility=MobilityClass.STATIC, jump=0,
                          route_quality_sum=255, route_min_quality=255)
    with_services = NeighbourEntry(
        address="a", name="n", prototype="bluetooth",
        mobility=MobilityClass.STATIC, jump=0,
        route_quality_sum=255, route_min_quality=255,
        services=(ServiceRecord(name="echo", port=1),))
    assert with_services.wire_size() > bare.wire_size()


def test_discovery_response_wire_size_grows_with_neighbourhood():
    identity = DeviceIdentity.create("pc")
    entry = NeighbourEntry(address="a", name="n", prototype="bluetooth",
                           mobility=MobilityClass.STATIC, jump=0,
                           route_quality_sum=255, route_min_quality=255)
    empty = DiscoveryResponse(identity=identity, prototype="bluetooth",
                              services=(), neighbourhood=())
    full = DiscoveryResponse(identity=identity, prototype="bluetooth",
                             services=(), neighbourhood=(entry,) * 5)
    assert full.wire_size() > empty.wire_size()
    assert full.wire_size() - empty.wire_size() == 5 * entry.wire_size()


def test_client_params_wire_size():
    params = make_params()
    assert params.wire_size() > 17
