"""PeerHood-level exceptions.

These sit above the radio-level errors (:class:`~repro.radio.channel.
ConnectFault`, :class:`~repro.radio.channel.OutOfRange`,
:class:`~repro.radio.channel.ChannelClosed`): the library maps physical
failures into these application-visible ones.
"""

from __future__ import annotations


class PeerHoodError(Exception):
    """Base class for PeerHood middleware errors."""


class NoRouteError(PeerHoodError):
    """The destination device is not in the DeviceStorage at all."""


class TargetNotAvailableError(PeerHoodError):
    """The peer exists in the world but no daemon/engine answers there."""


class ServiceNotFoundError(PeerHoodError):
    """The remote daemon does not expose the requested service."""


class BridgeRefusedError(PeerHoodError):
    """A bridge node declined to relay (chain failure or at capacity)."""


class ConnectionClosedError(PeerHoodError):
    """Read or write on a PeerHood connection that has been torn down."""


class HandoverFailedError(PeerHoodError):
    """Routing handover exhausted its attempts without a new route."""
