"""Mobility models: a node's position as a function of virtual time.

Positions are *functions of time*, not stepped state, so the radio world can
evaluate any instant deterministically and cheaply.  The thesis classifies
devices as static / hybrid / dynamic (§3.4.3); these models realise the
physical side of that classification:

* :class:`StaticPosition` — fixed servers and PCs;
* :class:`LinearMovement` — constant-velocity motion (the Fig. 5.4 drift);
* :class:`PathMovement` — scripted waypoints with times (test scenarios);
* :class:`RandomWaypoint` — the classic ad-hoc evaluation model;
* :class:`CorridorWalk` — the paper's §5.2.1 office-to-corridor walk: hold
  position, then depart at walking speed.
"""

from repro.mobility.base import MobilityModel, Point, distance
from repro.mobility.linear import LinearMovement, PathMovement
from repro.mobility.static import StaticPosition
from repro.mobility.walker import CorridorWalk
from repro.mobility.waypoint import RandomWaypoint

__all__ = [
    "CorridorWalk",
    "LinearMovement",
    "MobilityModel",
    "PathMovement",
    "Point",
    "RandomWaypoint",
    "StaticPosition",
    "distance",
]
