"""DTN routing baselines: direct-delivery, epidemic, spray-and-wait.

A router is the *policy* half of the store-carry-forward plane: given a
contact between a carrier and a peer, it decides which of the carrier's
bundles to transmit and what happens to custody afterwards.  The
*mechanics* — stores, contact events, delivery bookkeeping — live in
:mod:`repro.dtn.forwarder`; routers are stateless (all per-bundle state
rides the bundle's ``copies`` field and the stores' summary vectors),
so one router instance serves every node of a plane.

The three classics, in increasing overhead:

========================  ==========================================
``direct``                The source holds its bundle until it meets
                          the destination itself.  One transmission
                          per delivery; delivery ratio bounded by the
                          source–destination meeting probability.
``spray``                 Binary spray-and-wait (Spyropoulos et al.):
                          a bundle starts with ``copies`` tokens; a
                          custodian with ``c > 1`` tokens hands
                          ``floor(c/2)`` to a met peer; with one token
                          left it *waits* for the destination.
                          Bounded copies, most of epidemic's ratio.
``epidemic``              Flood with summary-vector dedup (Vahdat &
                          Becker): every contact sends everything the
                          peer has never seen.  Upper-bounds delivery
                          ratio and latency at maximal overhead.
========================  ==========================================

Transmission order within one contact is deterministic and shared by
all routers (:func:`transmission_order`): bundles destined to the peer
first, then oldest-first — the same lexicographic-policy pattern as the
service plane's :func:`repro.core.routing.route_rank`.
"""

from __future__ import annotations

import typing

from repro.dtn.bundle import Bundle

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dtn.store import MessageStore

#: Default spray-and-wait token budget per bundle.
DEFAULT_SPRAY_COPIES = 8


def transmission_order(bundles: typing.Iterable[Bundle],
                       peer_id: str) -> list[Bundle]:
    """Deterministic per-contact send order (shared by every router).

    Lexicographic, smaller first: destined-to-peer before relay traffic,
    then older creation instants, then bundle id — mirroring the route
    ranking's "most valuable first" shape (see
    :func:`repro.core.routing.route_rank`).  O(n log n).
    """
    return sorted(bundles, key=lambda b: (
        0 if b.destination == peer_id else 1, b.created_at, b.bundle_id))


class Router:
    """Base router: subclasses override the two policy decisions."""

    #: Registry key (``settings["routers"]`` values in specs).
    name = "base"

    def offers(self, store: "MessageStore", peer_id: str,
               peer_seen: frozenset[str]) -> list[Bundle]:
        """The carrier's bundles to transmit to ``peer_id``, in order.

        ``peer_seen`` is the peer's summary vector; no router ever
        offers a bundle the peer has already seen (the dedup that keeps
        ``DtnCounters.duplicates`` at zero).
        """
        eligible = [bundle for bundle in store.bundles()
                    if bundle.bundle_id not in peer_seen
                    and self.eligible(bundle, peer_id)]
        return transmission_order(eligible, peer_id)

    def eligible(self, bundle: Bundle, peer_id: str) -> bool:
        """May ``bundle`` be transmitted to ``peer_id``?  Policy hook."""
        raise NotImplementedError

    def after_transmit(self, store: "MessageStore", bundle: Bundle,
                       peer_id: str, now: float) -> Bundle:
        """Settle custody after a copy went out; returns the peer's copy.

        Called once per transmission.  Default: delivery to the
        destination releases the carrier's custody (the contact is the
        acknowledgement); a relay leaves the carrier's copy untouched.
        """
        if bundle.destination == peer_id:
            store.remove(bundle.bundle_id)
        return bundle


class DirectDelivery(Router):
    """Source-only custody: transmit only to the destination itself."""

    name = "direct"

    def eligible(self, bundle: Bundle, peer_id: str) -> bool:
        return bundle.destination == peer_id


class Epidemic(Router):
    """Flood every contact, deduplicated by summary vectors."""

    name = "epidemic"

    def eligible(self, bundle: Bundle, peer_id: str) -> bool:
        return True   # the summary vector already filtered seen ids


class SprayAndWait(Router):
    """Binary spray-and-wait with a fixed token budget per bundle.

    ``copies`` is the budget stamped on bundles at injection (the plane
    reads :attr:`initial_copies`); custody splits binarily on each
    relay.  Token conservation — the sum of tokens over all custodians
    of one bundle never exceeds the budget — is asserted by the tests.
    """

    name = "spray"

    def __init__(self, copies: int = DEFAULT_SPRAY_COPIES):
        if copies < 1:
            raise ValueError(f"spray copies must be >= 1: {copies}")
        self.initial_copies = copies

    def eligible(self, bundle: Bundle, peer_id: str) -> bool:
        # Delivery is always allowed; relaying needs spare tokens
        # (one-token custodians are in the wait phase).
        return bundle.destination == peer_id or bundle.copies > 1

    def after_transmit(self, store: "MessageStore", bundle: Bundle,
                       peer_id: str, now: float) -> Bundle:
        if bundle.destination == peer_id:
            store.remove(bundle.bundle_id)
            return bundle
        given = bundle.copies // 2
        kept = bundle.copies - given
        store.replace(bundle.with_copies(kept), now)
        return bundle.with_copies(given)


def make_router(name: str, spray_copies: int = DEFAULT_SPRAY_COPIES
                ) -> Router:
    """Instantiate a baseline router by registry name."""
    if name == DirectDelivery.name:
        return DirectDelivery()
    if name == Epidemic.name:
        return Epidemic()
    if name == SprayAndWait.name:
        return SprayAndWait(copies=spray_copies)
    raise KeyError(f"unknown DTN router {name!r}; known: "
                   f"['direct', 'epidemic', 'spray']")
