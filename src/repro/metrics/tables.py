"""Aligned-table and CSV rendering shared by benchmarks and reports.

One implementation serves both consumers: the paper-reproduction
benchmarks (via :mod:`benchmarks.paperbench`, which re-exports
:func:`print_table`) and ``python -m repro.experiments report``.

Alignment: a column whose cells are all numbers (``int``/``float``,
``None`` allowed) is right-aligned, as numeric tables should be; text
columns stay left-aligned.  ``None`` cells render as ``—`` in tables
(a missing measurement is not the string ``"None"``) and as the empty
field in CSV.
"""

from __future__ import annotations

import csv
import io
import typing

Rows = typing.Sequence[typing.Sequence[object]]

#: Table rendering of a missing (``None``) measurement.
MISSING_CELL = "—"


def _is_numeric(cell: object) -> bool:
    return isinstance(cell, (int, float)) and not isinstance(cell, bool)


def _numeric_columns(headers: typing.Sequence[str],
                     rows: Rows) -> list[bool]:
    """Per column: every cell is a number or None, with ≥ 1 number.

    Rows shorter than the header list simply have no cell in the
    trailing columns (rendered ragged, as before).
    """
    numeric = [False] * len(headers)
    for index in range(len(headers)):
        seen_number = False
        for row in rows:
            if index >= len(row):
                continue
            cell = row[index]
            if cell is None:
                continue
            if not _is_numeric(cell):
                break
            seen_number = True
        else:
            numeric[index] = seen_number
    return numeric


def format_table(title: str, headers: typing.Sequence[str],
                 rows: Rows) -> str:
    """Render an aligned text table (the benchmark-table format).

    Numeric columns (see module docstring) right-align, header
    included; ``None`` renders as ``—``.  O(rows × columns).
    """
    numeric = _numeric_columns(headers, rows)
    rendered = [[MISSING_CELL if cell is None else str(cell)
                 for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def align(text: str, index: int) -> str:
        if numeric[index]:
            return text.rjust(widths[index])
        return text.ljust(widths[index])

    line = "  ".join(align(h, i) for i, h in enumerate(headers))
    parts = [f"\n== {title} ==", line, "-" * len(line)]
    for row in rendered:
        parts.append("  ".join(align(cell, i)
                               for i, cell in enumerate(row)))
    return "\n".join(parts)


def print_table(title: str, headers: typing.Sequence[str],
                rows: Rows) -> None:
    """Print an aligned reproduction table."""
    print(format_table(title, headers, rows))


def render_csv(headers: typing.Sequence[str], rows: Rows) -> str:
    """Render rows as CSV text, deterministically (``\\n`` line ends)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow(["" if cell is None else cell for cell in row])
    return buffer.getvalue()
